"""Graph statistics for the cost-based planner (paper Section 2).

Neo4j's planner uses a cost model over store statistics [21]; we compute
the equivalent counters from the in-memory store: label cardinalities,
relationship-type cardinalities, and average degrees by (label, type,
direction), which drive Expand cost estimates.

Stores that maintain inverted indexes expose
``label_cardinalities()`` / ``type_cardinalities()`` (see
:class:`~repro.graph.store.MemoryGraph`); building a snapshot from those
hooks is O(#labels + #types) instead of a full O(N + R) rescan, which
keeps planning cheap even though the snapshot cache in
:mod:`repro.planner.cost` is invalidated by every store mutation.

Stores with property indexes additionally expose
``index_statistics()`` — ``{(label, keys): (ndv, entries)}`` — whose
NDV (number of distinct values) and entry counters are maintained
incrementally by the index itself.  They power the cost model's
equality selectivity (``1/NDV`` instead of the hard-coded default) and
the index-vs-label-scan access-path choice.  Composite indexes also
surface per-prefix NDVs (so correlated key columns don't multiply
per-column selectivities into nonsense — the functional-dependency
point of "Computing Join Queries with Functional Dependencies") and
lazily-built equi-depth :class:`ColumnHistogram`\\ s per indexed column,
replacing the flat ``RANGE_SELECTIVITY`` constant for literal-bounded
range estimates.
"""

from __future__ import annotations

import weakref
from bisect import bisect_left, bisect_right


class ColumnHistogram:
    """Equi-depth histogram over one indexed column.

    Built from the index's per-column value distribution
    (``{segment: [(value, entry count), …] sorted}``).  Segments with at
    most :data:`BUCKETS` distinct values keep the exact distribution
    (bisect over it answers any range precisely); larger ones compress
    to ~``BUCKETS`` equi-depth boundaries with exact cumulative counts
    at each boundary, and numeric probes interpolate linearly inside a
    bucket — sub-bucket resolution is what keeps ~1%-selectivity range
    estimates within 2x instead of the flat constant's >10x.

    Fractions are relative to **all** entries of the column (every
    entry's column is non-null by the index contract), so
    ``entries × fraction`` is directly the row estimate.
    """

    BUCKETS = 64

    def __init__(self, distribution):
        self.total = sum(
            count
            for pairs in distribution.values()
            for _value, count in pairs
        )
        self._segments = {}
        for segment, pairs in distribution.items():
            if not pairs:
                continue
            values = [value for value, _count in pairs]
            cums = []
            running = 0
            for _value, count in pairs:
                running += count
                cums.append(running)
            if len(values) > self.BUCKETS:
                step = max(1, len(values) // self.BUCKETS)
                picks = list(range(0, len(values), step))
                if picks[-1] != len(values) - 1:
                    picks.append(len(values) - 1)
                values = [values[i] for i in picks]
                cums = [cums[i] for i in picks]
            self._segments[segment] = (values, cums, running)

    @staticmethod
    def _segment_for(value):
        if isinstance(value, bool):
            return "bool"
        if isinstance(value, (int, float)):
            return None if value != value else "num"
        if isinstance(value, str):
            return "str"
        return None

    def _cumulative(self, segment, value, inclusive):
        """Estimated entries whose column value is <= (or <) ``value``."""
        values, cums, seg_total = self._segments[segment]
        position = (
            bisect_right(values, value)
            if inclusive
            else bisect_left(values, value)
        )
        if position == 0:
            return 0.0
        if position >= len(values):
            # Above (or at, inclusive) the last kept boundary.
            if not inclusive and values[-1] == value:
                return float(cums[-2]) if len(cums) > 1 else 0.0
            return float(seg_total)
        below = float(cums[position - 1])
        if segment == "num" and values[position] != values[position - 1]:
            span = values[position] - values[position - 1]
            into = (value - values[position - 1]) / span
            if 0.0 < into < 1.0:
                below += into * (cums[position] - cums[position - 1])
        return below

    def fraction(self, low, low_inclusive, high, high_inclusive):
        """Estimated fraction of entries inside the bounds, or None.

        None means the bounds fall outside the comparable scalar
        segments (the caller keeps its flat default); disjoint-segment
        or NaN bounds estimate zero, mirroring the index probes.
        """
        bound = low if low is not None else high
        segment = self._segment_for(bound)
        if segment is None:
            return None
        if (
            low is not None and high is not None
            and self._segment_for(high) != segment
        ):
            return 0.0
        if self.total == 0 or segment not in self._segments:
            return 0.0
        seg_total = self._segments[segment][2]
        lo = (
            self._cumulative(segment, low, not low_inclusive)
            if low is not None else 0.0
        )
        hi = (
            self._cumulative(segment, high, high_inclusive)
            if high is not None else float(seg_total)
        )
        return max(hi - lo, 0.0) / float(self.total)

    def prefix_fraction(self, prefix):
        """Estimated fraction of entries whose string starts with ``prefix``."""
        if not isinstance(prefix, str):
            return None
        if self.total == 0 or "str" not in self._segments:
            return 0.0
        # Strings sharing the prefix are exactly the range
        # [prefix, prefix + U+10FFFF…): the sentinel bounds every
        # realistic continuation.
        sentinel = prefix + "\U0010ffff" * 4
        lo = self._cumulative("str", prefix, False)
        hi = self._cumulative("str", sentinel, True)
        return max(hi - lo, 0.0) / float(self.total)


class GraphStatistics:
    """Immutable snapshot of the counters the cost model consumes.

    Histograms are the one lazy part: they are built on first use from
    the live graph (held by weakref so the snapshot cache never keeps a
    graph alive) and only while the graph still sits at the version the
    snapshot was taken at — any mutation makes the snapshot itself
    stale, and the planner's cache replaces it wholesale.
    """

    def __init__(self, graph):
        self.node_count = graph.node_count()
        self.relationship_count = graph.relationship_count()
        label_hook = getattr(graph, "label_cardinalities", None)
        type_hook = getattr(graph, "type_cardinalities", None)
        if label_hook is not None and type_hook is not None:
            self.label_counts = dict(label_hook())
            self.type_counts = dict(type_hook())
        else:
            self.label_counts = {}
            self.type_counts = {}
            for node in graph.nodes():
                for label in graph.labels(node):
                    self.label_counts[label] = (
                        self.label_counts.get(label, 0) + 1
                    )
            for rel in graph.relationships():
                rel_type = graph.rel_type(rel)
                self.type_counts[rel_type] = (
                    self.type_counts.get(rel_type, 0) + 1
                )
        # Each relationship contributes one outgoing and one incoming end,
        # so per-type degree totals coincide with the type cardinalities.
        self._out_degree_totals = dict(self.type_counts)
        self._in_degree_totals = dict(self.type_counts)
        index_hook = getattr(graph, "index_statistics", None)
        self.property_indexes = dict(index_hook()) if index_hook else {}
        prefix_hook = getattr(graph, "index_prefix_ndvs", None)
        self.index_prefix_ndv = {}
        if prefix_hook is not None:
            for label, keys in self.property_indexes:
                key_tuple = self._key_tuple(keys)
                self.index_prefix_ndv[(label, key_tuple)] = tuple(
                    prefix_hook(label, key_tuple)
                )
        reach_hook = getattr(graph, "reachability_statistics", None)
        self.reachability_indexes = dict(reach_hook()) if reach_hook else {}
        try:
            self._graph_ref = weakref.ref(graph)
        except TypeError:
            self._graph_ref = None
        self._graph_version = getattr(graph, "version", None)
        self._histograms = {}

    # -- cardinalities -------------------------------------------------------

    def nodes_with_label(self, label):
        """Estimated |{n : label ∈ λ(n)}| (exact, from the index)."""
        return self.label_counts.get(label, 0)

    def label_selectivity(self, label):
        """Fraction of nodes carrying ``label``; 1.0 on an empty graph."""
        if self.node_count == 0:
            return 1.0
        return self.nodes_with_label(label) / float(self.node_count)

    def relationships_with_type(self, rel_type):
        return self.type_counts.get(rel_type, 0)

    # -- property indexes ----------------------------------------------------

    @staticmethod
    def _key_tuple(keys):
        """Normalise a public index key (str or tuple) to a tuple."""
        if isinstance(keys, str):
            return (keys,)
        return tuple(keys)

    @staticmethod
    def _public_key(keys):
        """The public rendering the store uses: str for single keys."""
        if isinstance(keys, str):
            return keys
        keys = tuple(keys)
        return keys[0] if len(keys) == 1 else keys

    def has_property_index(self, label, keys):
        return (label, self._public_key(keys)) in self.property_indexes

    def property_ndv(self, label, keys):
        """Distinct indexed (full-tuple) values of an index, or None."""
        entry = self.property_indexes.get((label, self._public_key(keys)))
        return entry[0] if entry is not None else None

    def indexed_entries(self, label, keys):
        """Indexed entries of ``(label, keys)``, or None.

        This is the number of ``label`` nodes that *have* every key
        column — the population an index scan draws from, which is what
        equality and range estimates should start from (nodes missing a
        column can never satisfy either predicate).
        """
        entry = self.property_indexes.get((label, self._public_key(keys)))
        return entry[1] if entry is not None else None

    def composite_indexes(self, label):
        """Key tuples of every index on ``label``, single keys included.

        Sorted for deterministic candidate enumeration in the planner.
        """
        return sorted(
            self._key_tuple(keys)
            for indexed_label, keys in self.property_indexes
            if indexed_label == label
        )

    def prefix_ndv(self, label, keys, length):
        """Distinct canonical prefixes of the given length, or None.

        Direct per-prefix counts subsume per-column independence
        assumptions: functionally dependent columns show up as a prefix
        NDV that barely grows with depth.
        """
        ndvs = self.index_prefix_ndv.get((label, self._key_tuple(keys)))
        if ndvs is None or not 1 <= length <= len(ndvs):
            return None
        return ndvs[length - 1]

    # -- histograms ----------------------------------------------------------

    def column_histogram(self, label, keys, column):
        """The equi-depth histogram of one indexed column, or None.

        Built lazily from the live graph on first use; returns None
        once the graph moved past this snapshot's version (the planner
        cache replaces stale snapshots — and their histograms — wholesale).
        """
        keys = self._key_tuple(keys)
        cache_key = (label, keys, column)
        histogram = self._histograms.get(cache_key)
        if histogram is None:
            graph = self._graph_ref() if self._graph_ref is not None else None
            if (
                graph is None
                or getattr(graph, "version", None) != self._graph_version
            ):
                return None
            hook = getattr(graph, "index_column_distribution", None)
            if hook is None:
                return None
            histogram = ColumnHistogram(hook(label, keys, column))
            self._histograms[cache_key] = histogram
        return histogram

    def range_fraction(
        self, label, keys, column, low, low_inclusive, high, high_inclusive,
    ):
        """Histogram-backed range selectivity for one column, or None."""
        histogram = self.column_histogram(label, keys, column)
        if histogram is None:
            return None
        return histogram.fraction(low, low_inclusive, high, high_inclusive)

    def starts_with_fraction(self, label, keys, column, prefix):
        """Histogram-backed STARTS WITH selectivity, or None."""
        histogram = self.column_histogram(label, keys, column)
        if histogram is None:
            return None
        return histogram.prefix_fraction(prefix)

    # -- reachability indexes ------------------------------------------------

    def reachability_index_types(self):
        """Declared reachability type sets (tuples, or None = all types)."""
        return self.reachability_indexes.keys()

    def has_reachability_index(self, types=None):
        key = tuple(sorted(types)) if types else None
        return key in self.reachability_indexes

    # -- degrees ---------------------------------------------------------------

    def average_degree(self, types=None, direction="out"):
        """Mean number of relationships per node, optionally by type.

        ``direction`` is "out", "in" or "both"; "both" counts each
        relationship at both of its endpoints.
        """
        if self.node_count == 0:
            return 0.0
        if types is None:
            total = self.relationship_count
        else:
            total = sum(self.type_counts.get(t, 0) for t in types)
        if direction == "both":
            total *= 2
        return total / float(self.node_count)

    def expand_fanout(self, types=None, direction="out"):
        """Expected output rows per input row of an Expand step.

        A floor of a small epsilon keeps plan costs strictly positive so
        the planner never treats a traversal as free.
        """
        return max(self.average_degree(types, direction), 0.001)

    def __repr__(self):
        return (
            "GraphStatistics(nodes={}, relationships={}, labels={}, "
            "types={})".format(
                self.node_count,
                self.relationship_count,
                dict(sorted(self.label_counts.items())),
                dict(sorted(self.type_counts.items())),
            )
        )
