"""Graph statistics for the cost-based planner (paper Section 2).

Neo4j's planner uses a cost model over store statistics [21]; we compute
the equivalent counters from the in-memory store: label cardinalities,
relationship-type cardinalities, and average degrees by (label, type,
direction), which drive Expand cost estimates.

Stores that maintain inverted indexes expose
``label_cardinalities()`` / ``type_cardinalities()`` (see
:class:`~repro.graph.store.MemoryGraph`); building a snapshot from those
hooks is O(#labels + #types) instead of a full O(N + R) rescan, which
keeps planning cheap even though the snapshot cache in
:mod:`repro.planner.cost` is invalidated by every store mutation.

Stores with property indexes additionally expose
``index_statistics()`` — ``{(label, key): (ndv, entries)}`` — whose
NDV (number of distinct values) and entry counters are maintained
incrementally by the index itself.  They power the cost model's
equality selectivity (``1/NDV`` instead of the hard-coded default) and
the index-vs-label-scan access-path choice.
"""

from __future__ import annotations


class GraphStatistics:
    """Immutable snapshot of the counters the cost model consumes."""

    def __init__(self, graph):
        self.node_count = graph.node_count()
        self.relationship_count = graph.relationship_count()
        label_hook = getattr(graph, "label_cardinalities", None)
        type_hook = getattr(graph, "type_cardinalities", None)
        if label_hook is not None and type_hook is not None:
            self.label_counts = dict(label_hook())
            self.type_counts = dict(type_hook())
        else:
            self.label_counts = {}
            self.type_counts = {}
            for node in graph.nodes():
                for label in graph.labels(node):
                    self.label_counts[label] = (
                        self.label_counts.get(label, 0) + 1
                    )
            for rel in graph.relationships():
                rel_type = graph.rel_type(rel)
                self.type_counts[rel_type] = (
                    self.type_counts.get(rel_type, 0) + 1
                )
        # Each relationship contributes one outgoing and one incoming end,
        # so per-type degree totals coincide with the type cardinalities.
        self._out_degree_totals = dict(self.type_counts)
        self._in_degree_totals = dict(self.type_counts)
        index_hook = getattr(graph, "index_statistics", None)
        self.property_indexes = dict(index_hook()) if index_hook else {}
        reach_hook = getattr(graph, "reachability_statistics", None)
        self.reachability_indexes = dict(reach_hook()) if reach_hook else {}

    # -- cardinalities -------------------------------------------------------

    def nodes_with_label(self, label):
        """Estimated |{n : label ∈ λ(n)}| (exact, from the index)."""
        return self.label_counts.get(label, 0)

    def label_selectivity(self, label):
        """Fraction of nodes carrying ``label``; 1.0 on an empty graph."""
        if self.node_count == 0:
            return 1.0
        return self.nodes_with_label(label) / float(self.node_count)

    def relationships_with_type(self, rel_type):
        return self.type_counts.get(rel_type, 0)

    # -- property indexes ----------------------------------------------------

    def has_property_index(self, label, key):
        return (label, key) in self.property_indexes

    def property_ndv(self, label, key):
        """Distinct indexed values of ``(label, key)``, or None."""
        entry = self.property_indexes.get((label, key))
        return entry[0] if entry is not None else None

    def indexed_entries(self, label, key):
        """Indexed (node, value) entries of ``(label, key)``, or None.

        This is the number of ``label`` nodes that *have* the property —
        the population an index scan draws from, which is what equality
        and range estimates should start from (nodes missing the key can
        never satisfy either predicate).
        """
        entry = self.property_indexes.get((label, key))
        return entry[1] if entry is not None else None

    # -- reachability indexes ------------------------------------------------

    def reachability_index_types(self):
        """Declared reachability type sets (tuples, or None = all types)."""
        return self.reachability_indexes.keys()

    def has_reachability_index(self, types=None):
        key = tuple(sorted(types)) if types else None
        return key in self.reachability_indexes

    # -- degrees ---------------------------------------------------------------

    def average_degree(self, types=None, direction="out"):
        """Mean number of relationships per node, optionally by type.

        ``direction`` is "out", "in" or "both"; "both" counts each
        relationship at both of its endpoints.
        """
        if self.node_count == 0:
            return 0.0
        if types is None:
            total = self.relationship_count
        else:
            total = sum(self.type_counts.get(t, 0) for t in types)
        if direction == "both":
            total *= 2
        return total / float(self.node_count)

    def expand_fanout(self, types=None, direction="out"):
        """Expected output rows per input row of an Expand step.

        A floor of a small epsilon keeps plan costs strictly positive so
        the planner never treats a traversal as free.
        """
        return max(self.average_degree(types, direction), 0.001)

    def __repr__(self):
        return (
            "GraphStatistics(nodes={}, relationships={}, labels={}, "
            "types={})".format(
                self.node_count,
                self.relationship_count,
                dict(sorted(self.label_counts.items())),
                dict(sorted(self.type_counts.items())),
            )
        )
