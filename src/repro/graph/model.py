"""The abstract read interface of a property graph, plus entity views.

Everything downstream of the store — pattern matching, expression
evaluation, planning — programs against :class:`PropertyGraph`, so the
semantics is store-agnostic (the paper's point that different
implementations should agree on the language, not the storage).
"""

from __future__ import annotations

from repro.exceptions import EntityNotFound
from repro.values.base import NodeId, RelId


class PropertyGraph:
    """Read-only view of ``G = ⟨N, R, src, tgt, ι, λ, τ⟩``."""

    # -- the formal tuple ---------------------------------------------------

    def nodes(self):
        """Iterate over N (all node ids)."""
        raise NotImplementedError

    def relationships(self):
        """Iterate over R (all relationship ids)."""
        raise NotImplementedError

    def src(self, rel_id):
        """The source node of a relationship (the function ``src``)."""
        raise NotImplementedError

    def tgt(self, rel_id):
        """The target node of a relationship (the function ``tgt``)."""
        raise NotImplementedError

    def property_value(self, entity_id, key):
        """``ι(entity, key)``; returns None where ι is undefined."""
        raise NotImplementedError

    def properties(self, entity_id):
        """All defined properties of an entity as a dict (a map value)."""
        raise NotImplementedError

    def labels(self, node_id):
        """``λ(n)`` — the (possibly empty) set of labels of a node."""
        raise NotImplementedError

    def has_label(self, node_id, label):
        """``label ∈ λ(n)``; stores override with an O(1) membership test."""
        return label in self.labels(node_id)

    def node_property(self, node_id, key):
        """``ι(node, key)`` for a node; stores may shortcut the dispatch."""
        return self.property_value(node_id, key)

    def rel_type(self, rel_id):
        """``τ(r)`` — the single type of a relationship."""
        raise NotImplementedError

    # -- membership ----------------------------------------------------------

    def has_node(self, node_id):
        raise NotImplementedError

    def has_relationship(self, rel_id):
        raise NotImplementedError

    # -- index-backed accessors (defaults scan; stores override) -------------

    def nodes_with_label(self, label):
        """All nodes n with ``label ∈ λ(n)``."""
        return (n for n in self.nodes() if label in self.labels(n))

    def outgoing(self, node_id, types=None):
        """Relationship ids whose source is ``node_id``.

        ``types`` optionally restricts to a set of relationship types.
        This is the access path the paper's Expand operator relies on.
        """
        for rel in self.relationships():
            if self.src(rel) == node_id:
                if types is None or self.rel_type(rel) in types:
                    yield rel

    def incoming(self, node_id, types=None):
        """Relationship ids whose target is ``node_id``."""
        for rel in self.relationships():
            if self.tgt(rel) == node_id:
                if types is None or self.rel_type(rel) in types:
                    yield rel

    def touching(self, node_id, types=None):
        """Relationships incident to the node in either direction.

        Self-loops are yielded once.
        """
        seen = set()
        for rel in self.outgoing(node_id, types):
            seen.add(rel)
            yield rel
        for rel in self.incoming(node_id, types):
            if rel not in seen:
                yield rel

    def relationships_with_type(self, rel_type):
        return (
            r for r in self.relationships() if self.rel_type(r) == rel_type
        )

    # -- counting (planner statistics hooks) ---------------------------------

    def node_count(self):
        return sum(1 for _ in self.nodes())

    def relationship_count(self):
        return sum(1 for _ in self.relationships())

    def other_end(self, rel_id, node_id):
        """The endpoint of ``rel_id`` that is not ``node_id``.

        For a self-loop both ends coincide and ``node_id`` is returned.
        """
        source, target = self.src(rel_id), self.tgt(rel_id)
        if source == node_id:
            return target
        if target == node_id:
            return source
        raise EntityNotFound(
            "relationship %r does not touch node %r" % (rel_id, node_id)
        )

    # -- user-facing views ----------------------------------------------------

    def node(self, node_id):
        """A convenience :class:`NodeView` over a node id."""
        if not self.has_node(node_id):
            raise EntityNotFound("no node %r in graph" % (node_id,))
        return NodeView(self, node_id)

    def relationship(self, rel_id):
        """A convenience :class:`RelationshipView` over a relationship id."""
        if not self.has_relationship(rel_id):
            raise EntityNotFound("no relationship %r in graph" % (rel_id,))
        return RelationshipView(self, rel_id)


class NodeView:
    """A lightweight, user-friendly handle on a node in a specific graph."""

    __slots__ = ("graph", "id")

    def __init__(self, graph, node_id):
        self.graph = graph
        self.id = node_id

    @property
    def labels(self):
        return frozenset(self.graph.labels(self.id))

    @property
    def properties(self):
        return dict(self.graph.properties(self.id))

    def __getitem__(self, key):
        return self.graph.property_value(self.id, key)

    def __eq__(self, other):
        return (
            isinstance(other, NodeView)
            and other.id == self.id
            and other.graph is self.graph
        )

    def __hash__(self):
        return hash((id(self.graph), self.id))

    def __repr__(self):
        labels = "".join(":" + label for label in sorted(self.labels))
        return "({}{} {})".format(self.id, labels, self.properties)


class RelationshipView:
    """A lightweight, user-friendly handle on a relationship."""

    __slots__ = ("graph", "id")

    def __init__(self, graph, rel_id):
        self.graph = graph
        self.id = rel_id

    @property
    def type(self):
        return self.graph.rel_type(self.id)

    @property
    def source(self):
        return self.graph.src(self.id)

    @property
    def target(self):
        return self.graph.tgt(self.id)

    @property
    def properties(self):
        return dict(self.graph.properties(self.id))

    def __getitem__(self, key):
        return self.graph.property_value(self.id, key)

    def __eq__(self, other):
        return (
            isinstance(other, RelationshipView)
            and other.id == self.id
            and other.graph is self.graph
        )

    def __hash__(self):
        return hash((id(self.graph), self.id))

    def __repr__(self):
        return "({})-[{}:{} {}]->({})".format(
            self.source, self.id, self.type, self.properties, self.target
        )


def _require_node_id(value):
    if not isinstance(value, NodeId):
        raise TypeError("expected a NodeId, got %r" % (value,))
    return value


def _require_rel_id(value):
    if not isinstance(value, RelId):
        raise TypeError("expected a RelId, got %r" % (value,))
    return value
