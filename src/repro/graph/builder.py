"""A fluent builder for constructing graphs in tests, datasets and examples.

Nodes are given symbolic names so relationships can refer to them before
ids exist; ``build()`` returns the graph and the name→id mapping.

    g, ids = (GraphBuilder()
              .node("nils", "Researcher", name="Nils")
              .node("p1", "Publication", acmid=220)
              .rel("nils", "AUTHORS", "p1")
              .build())
"""

from __future__ import annotations

from repro.graph.store import MemoryGraph


class GraphBuilder:
    """Accumulates node/relationship specs and materializes a MemoryGraph."""

    def __init__(self):
        self._nodes = []  # (name, labels, properties)
        self._rels = []   # (src_name, type, tgt_name, properties, rel_name)
        self._names = set()

    def node(self, handle, *labels, **properties):
        """Declare a node with a unique symbolic ``handle``.

        ``labels`` are positional strings; ``properties`` are keyword
        arguments (so common keys like ``name`` stay usable).  Returns
        ``self`` for chaining.
        """
        if handle in self._names:
            raise ValueError("duplicate node handle %r" % (handle,))
        self._names.add(handle)
        self._nodes.append((handle, labels, properties))
        return self

    def rel(self, start, rel_type, end, handle=None, **properties):
        """Declare a relationship between two previously declared nodes."""
        self._rels.append((start, rel_type, end, properties, handle))
        return self

    def build(self):
        """Materialize the graph; returns ``(MemoryGraph, {name: id})``.

        The mapping contains node names and, for relationships declared
        with ``rel_name``, relationship names too.
        """
        graph = MemoryGraph()
        ids = {}
        for name, labels, properties in self._nodes:
            ids[name] = graph.create_node(labels, properties)
        for src_name, rel_type, tgt_name, properties, rel_name in self._rels:
            if src_name not in ids:
                raise ValueError("unknown source node %r" % (src_name,))
            if tgt_name not in ids:
                raise ValueError("unknown target node %r" % (tgt_name,))
            rel_id = graph.create_relationship(
                ids[src_name], ids[tgt_name], rel_type, properties
            )
            if rel_name is not None:
                if rel_name in ids:
                    raise ValueError("duplicate name %r" % (rel_name,))
                ids[rel_name] = rel_id
        return graph, ids
