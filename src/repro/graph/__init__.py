"""The property graph data model (paper Section 4.1).

A property graph is the tuple ``G = ⟨N, R, src, tgt, ι, λ, τ⟩``:

* ``N`` — finite set of node ids, ``R`` — finite set of relationship ids;
* ``src``/``tgt`` — map each relationship to its source/target node;
* ``ι`` — partial map from (id, property key) to values;
* ``λ`` — maps each node to a finite set of labels;
* ``τ`` — maps each relationship to its single type.

:class:`PropertyGraph` is the read interface consumed by the matcher, the
expression evaluator and the planner; :class:`MemoryGraph` is the mutable
in-memory implementation with adjacency and label/type indexes (our
substitute for Neo4j's native store — see DESIGN.md §5).
"""

from repro.graph.model import NodeView, PropertyGraph, RelationshipView
from repro.graph.store import MemoryGraph
from repro.graph.builder import GraphBuilder
from repro.graph.statistics import GraphStatistics
from repro.graph.catalog import GraphCatalog

__all__ = [
    "PropertyGraph",
    "MemoryGraph",
    "GraphBuilder",
    "GraphStatistics",
    "GraphCatalog",
    "NodeView",
    "RelationshipView",
]
