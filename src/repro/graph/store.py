"""The in-memory mutable property graph store.

This is the substrate standing in for Neo4j's native store (DESIGN.md §5).
It keeps:

* per-entity property dictionaries (the partial function ι);
* per-node label sets (λ) with an inverted label index;
* per-relationship type (τ) with an inverted type index;
* adjacency lists in both directions, so that Expand can go from a node to
  its relationships to the neighbouring nodes without any index lookup —
  the property the paper highlights ("Expand never needs to read any
  unnecessary data, or proceed via an indirection such as an index").
"""

from __future__ import annotations

from repro.exceptions import ConstraintViolation, EntityNotFound
from repro.graph.model import PropertyGraph
from repro.values.base import NodeId, RelId
from repro.values.base import is_cypher_value


class MemoryGraph(PropertyGraph):
    """A mutable property graph with O(1) id lookups and adjacency lists."""

    def __init__(self):
        self._version = 0  # bumped on every mutation; invalidates cached statistics
        self._next_node_id = 1
        self._next_rel_id = 1
        self._node_labels = {}        # NodeId -> set[str]
        self._node_properties = {}    # NodeId -> dict[str, value]
        self._rel_endpoints = {}      # RelId -> (NodeId src, NodeId tgt)
        self._rel_types = {}          # RelId -> str
        self._rel_properties = {}     # RelId -> dict[str, value]
        self._outgoing = {}           # NodeId -> list[RelId]
        self._incoming = {}           # NodeId -> list[RelId]
        self._label_index = {}        # str -> set[NodeId]
        self._type_index = {}         # str -> set[RelId]

    # ------------------------------------------------------------------
    # PropertyGraph read interface
    # ------------------------------------------------------------------

    def nodes(self):
        return iter(list(self._node_labels.keys()))

    def relationships(self):
        return iter(list(self._rel_endpoints.keys()))

    def src(self, rel_id):
        return self._endpoints(rel_id)[0]

    def tgt(self, rel_id):
        return self._endpoints(rel_id)[1]

    def property_value(self, entity_id, key):
        return self._property_map(entity_id).get(key)

    def properties(self, entity_id):
        return dict(self._property_map(entity_id))

    def labels(self, node_id):
        try:
            return frozenset(self._node_labels[node_id])
        except KeyError:
            raise EntityNotFound("no node %r in graph" % (node_id,))

    def rel_type(self, rel_id):
        try:
            return self._rel_types[rel_id]
        except KeyError:
            raise EntityNotFound("no relationship %r in graph" % (rel_id,))

    def has_node(self, node_id):
        return node_id in self._node_labels

    def has_relationship(self, rel_id):
        return rel_id in self._rel_endpoints

    def nodes_with_label(self, label):
        return iter(sorted(self._label_index.get(label, ()), key=lambda n: n.value))

    def outgoing(self, node_id, types=None):
        for rel in self._outgoing.get(node_id, ()):
            if types is None or self._rel_types[rel] in types:
                yield rel

    def incoming(self, node_id, types=None):
        for rel in self._incoming.get(node_id, ()):
            if types is None or self._rel_types[rel] in types:
                yield rel

    def relationships_with_type(self, rel_type):
        return iter(sorted(self._type_index.get(rel_type, ()), key=lambda r: r.value))

    def node_count(self):
        return len(self._node_labels)

    def relationship_count(self):
        return len(self._rel_endpoints)

    def degree(self, node_id, direction="both", rel_type=None):
        """Number of incident relationships; the cost model's raw input."""
        count = 0
        if direction in ("out", "both"):
            for rel in self._outgoing.get(node_id, ()):
                if rel_type is None or self._rel_types[rel] == rel_type:
                    count += 1
        if direction in ("in", "both"):
            for rel in self._incoming.get(node_id, ()):
                if rel_type is None or self._rel_types[rel] == rel_type:
                    count += 1
        return count

    def all_labels(self):
        return sorted(self._label_index.keys())

    def all_types(self):
        return sorted(self._type_index.keys())

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def create_node(self, labels=(), properties=None):
        """Add a node; returns its fresh :class:`NodeId`."""
        self._version += 1
        node_id = NodeId(self._next_node_id)
        self._next_node_id += 1
        label_set = set(labels)
        self._node_labels[node_id] = label_set
        self._node_properties[node_id] = _validated_properties(properties)
        self._outgoing[node_id] = []
        self._incoming[node_id] = []
        for label in label_set:
            self._label_index.setdefault(label, set()).add(node_id)
        return node_id

    def create_relationship(self, src, tgt, rel_type, properties=None):
        """Add a relationship from ``src`` to ``tgt``; returns its id."""
        self._version += 1
        if src not in self._node_labels:
            raise EntityNotFound("source node %r not in graph" % (src,))
        if tgt not in self._node_labels:
            raise EntityNotFound("target node %r not in graph" % (tgt,))
        if not isinstance(rel_type, str) or not rel_type:
            raise ValueError("relationship type must be a non-empty string")
        rel_id = RelId(self._next_rel_id)
        self._next_rel_id += 1
        self._rel_endpoints[rel_id] = (src, tgt)
        self._rel_types[rel_id] = rel_type
        self._rel_properties[rel_id] = _validated_properties(properties)
        self._outgoing[src].append(rel_id)
        self._incoming[tgt].append(rel_id)
        self._type_index.setdefault(rel_type, set()).add(rel_id)
        return rel_id

    def adopt_node(self, node_id, labels=(), properties=None):
        """Insert a node under a *caller-chosen* id.

        Used by Cypher 10 graph projections, which must preserve node
        identity across graphs so composed queries can re-match the same
        nodes in another graph (paper Section 6).  The internal id
        counter is bumped past the adopted id, so later ``create_node``
        calls never collide.
        """
        self._version += 1
        if not isinstance(node_id, NodeId):
            raise TypeError("adopt_node expects a NodeId, got %r" % (node_id,))
        if node_id in self._node_labels:
            raise ValueError("node %r already exists" % (node_id,))
        label_set = set(labels)
        self._node_labels[node_id] = label_set
        self._node_properties[node_id] = _validated_properties(properties)
        self._outgoing[node_id] = []
        self._incoming[node_id] = []
        for label in label_set:
            self._label_index.setdefault(label, set()).add(node_id)
        self._next_node_id = max(self._next_node_id, node_id.value + 1)
        return node_id

    def delete_node(self, node_id, detach=False):
        """Remove a node; with ``detach`` also removes incident edges.

        Without ``detach``, deleting a node that still has relationships
        raises :class:`ConstraintViolation` (dangling edges would break the
        well-formedness of src/tgt).
        """
        self._version += 1
        if node_id not in self._node_labels:
            raise EntityNotFound("no node %r in graph" % (node_id,))
        incident = list(self._outgoing[node_id]) + [
            rel for rel in self._incoming[node_id]
            if rel not in self._outgoing[node_id]
        ]
        if incident and not detach:
            raise ConstraintViolation(
                "cannot delete node %r: it still has %d relationship(s); "
                "use DETACH DELETE" % (node_id, len(incident))
            )
        for rel in incident:
            if rel in self._rel_endpoints:
                self.delete_relationship(rel)
        for label in self._node_labels[node_id]:
            self._label_index[label].discard(node_id)
        del self._node_labels[node_id]
        del self._node_properties[node_id]
        del self._outgoing[node_id]
        del self._incoming[node_id]

    def delete_relationship(self, rel_id):
        self._version += 1
        if rel_id not in self._rel_endpoints:
            raise EntityNotFound("no relationship %r in graph" % (rel_id,))
        source, target = self._rel_endpoints[rel_id]
        self._outgoing[source].remove(rel_id)
        self._incoming[target].remove(rel_id)
        self._type_index[self._rel_types[rel_id]].discard(rel_id)
        del self._rel_endpoints[rel_id]
        del self._rel_types[rel_id]
        del self._rel_properties[rel_id]

    def set_property(self, entity_id, key, value):
        """Set ι(entity, key); setting to null removes the property."""
        self._version += 1
        props = self._property_map(entity_id)
        if value is None:
            props.pop(key, None)
        else:
            if not is_cypher_value(value):
                raise ValueError("%r is not a storable value" % (value,))
            props[key] = value

    def remove_property(self, entity_id, key):
        self._version += 1
        self._property_map(entity_id).pop(key, None)

    def replace_properties(self, entity_id, properties):
        """SET n = {map}: replace the whole property map."""
        self._version += 1
        props = self._property_map(entity_id)
        props.clear()
        for key, value in _validated_properties(properties).items():
            props[key] = value

    def merge_properties(self, entity_id, properties):
        """SET n += {map}: upsert keys; null values remove keys."""
        self._version += 1
        props = self._property_map(entity_id)
        for key, value in (properties or {}).items():
            if value is None:
                props.pop(key, None)
            else:
                if not is_cypher_value(value):
                    raise ValueError("%r is not a storable value" % (value,))
                props[key] = value

    def add_label(self, node_id, label):
        self._version += 1
        if node_id not in self._node_labels:
            raise EntityNotFound("no node %r in graph" % (node_id,))
        self._node_labels[node_id].add(label)
        self._label_index.setdefault(label, set()).add(node_id)

    def remove_label(self, node_id, label):
        self._version += 1
        if node_id not in self._node_labels:
            raise EntityNotFound("no node %r in graph" % (node_id,))
        self._node_labels[node_id].discard(label)
        if label in self._label_index:
            self._label_index[label].discard(node_id)

    # ------------------------------------------------------------------
    # Whole-graph operations
    # ------------------------------------------------------------------

    @property
    def version(self):
        """Monotonic mutation counter; statistics caches key on it."""
        return self._version

    def restore_from(self, snapshot):
        """Replace this graph's entire contents with ``snapshot``'s.

        Used for transactional rollback (e.g. schema enforcement undoing
        a violating update) while keeping this object's identity, so
        engines and catalogs holding references stay valid.
        """
        donor = snapshot.copy()
        self._next_node_id = donor._next_node_id
        self._next_rel_id = donor._next_rel_id
        self._node_labels = donor._node_labels
        self._node_properties = donor._node_properties
        self._rel_endpoints = donor._rel_endpoints
        self._rel_types = donor._rel_types
        self._rel_properties = donor._rel_properties
        self._outgoing = donor._outgoing
        self._incoming = donor._incoming
        self._label_index = donor._label_index
        self._type_index = donor._type_index
        self._version += 1

    def copy(self):
        """An independent deep copy (used by MERGE rollback and tests)."""
        clone = MemoryGraph()
        clone._version = self._version
        clone._next_node_id = self._next_node_id
        clone._next_rel_id = self._next_rel_id
        clone._node_labels = {n: set(ls) for n, ls in self._node_labels.items()}
        clone._node_properties = {
            n: _deep_copy_value(ps) for n, ps in self._node_properties.items()
        }
        clone._rel_endpoints = dict(self._rel_endpoints)
        clone._rel_types = dict(self._rel_types)
        clone._rel_properties = {
            r: _deep_copy_value(ps) for r, ps in self._rel_properties.items()
        }
        clone._outgoing = {n: list(rs) for n, rs in self._outgoing.items()}
        clone._incoming = {n: list(rs) for n, rs in self._incoming.items()}
        clone._label_index = {l: set(ns) for l, ns in self._label_index.items()}
        clone._type_index = {t: set(rs) for t, rs in self._type_index.items()}
        return clone

    def __repr__(self):
        return "MemoryGraph(nodes={}, relationships={})".format(
            self.node_count(), self.relationship_count()
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _endpoints(self, rel_id):
        try:
            return self._rel_endpoints[rel_id]
        except KeyError:
            raise EntityNotFound("no relationship %r in graph" % (rel_id,))

    def _property_map(self, entity_id):
        if isinstance(entity_id, NodeId):
            try:
                return self._node_properties[entity_id]
            except KeyError:
                raise EntityNotFound("no node %r in graph" % (entity_id,))
        if isinstance(entity_id, RelId):
            try:
                return self._rel_properties[entity_id]
            except KeyError:
                raise EntityNotFound(
                    "no relationship %r in graph" % (entity_id,)
                )
        raise TypeError("expected a NodeId or RelId, got %r" % (entity_id,))


def _validated_properties(properties):
    result = {}
    for key, value in (properties or {}).items():
        if not isinstance(key, str):
            raise ValueError("property keys must be strings, got %r" % (key,))
        if value is None:
            continue  # ι is a partial function; null means "not defined"
        if not is_cypher_value(value):
            raise ValueError("%r is not a storable value" % (value,))
        result[key] = value
    return result


def _deep_copy_value(value):
    if isinstance(value, list):
        return [_deep_copy_value(item) for item in value]
    if isinstance(value, dict):
        return {key: _deep_copy_value(item) for key, item in value.items()}
    return value
