"""The in-memory mutable property graph store.

This is the substrate standing in for Neo4j's native store (DESIGN.md §5).
It keeps:

* per-entity property dictionaries (the partial function ι);
* per-node label sets (λ) with an inverted label index;
* per-relationship type (τ) with an inverted type index;
* adjacency lists in both directions, so that Expand can go from a node to
  its relationships to the neighbouring nodes without any index lookup —
  the property the paper highlights ("Expand never needs to read any
  unnecessary data, or proceed via an indirection such as an index").

Access paths (added for the slotted execution engine):

* adjacency is *type-segmented*: next to the plain per-node lists the
  store maintains ``node -> {type: [rels]}`` in both directions, so a
  typed Expand touches exactly the matching relationships instead of
  filtering the full list through a ``rel -> type`` lookup;
* the segment lengths double as incrementally-maintained degree
  counters, making :meth:`degree` O(1) for every (direction, type)
  combination the cost model asks about;
* :meth:`nodes_with_label` / :meth:`relationships_with_type` memoise
  their sorted scan lists keyed on the store ``version``, so repeated
  label scans (every NodeByLabelScan of every query) stop re-sorting;
* :meth:`label_cardinalities` / :meth:`type_cardinalities` expose the
  inverted-index sizes so :class:`~repro.graph.statistics.GraphStatistics`
  builds in O(#labels + #types) instead of O(N + R);
* the *bulk column* APIs (added for the vectorised batch engine,
  :mod:`repro.planner.batch`) fill whole slot columns in one call:
  :meth:`all_node_ids` and :meth:`label_scan_ids` hand back scan lists
  a morsel can slice, :meth:`node_property_column` reads one property
  across a node column straight off the internal dicts, and
  :meth:`expand_batch` walks the adjacency of a whole source column into
  parallel ``(origin index, relationship, neighbour)`` columns — no
  per-row method dispatch on any of them.  ``supports_bulk_scans``
  advertises the capability so the engine only picks batch execution on
  stores that have it.

All adjacency lists (full and segmented) stay sorted by relationship id
because ids are allocated monotonically and appends happen at creation
time; type-filtered iteration over several segments merges them back
into id order, which keeps enumeration order identical to filtering the
full list.

Property indexes (added for the index-accelerated access paths):

* :meth:`create_index` declares a per-``(label, property key)`` index;
  each :class:`_PropertyIndex` keeps a **hash half** (canonical value →
  ordered node set, serving equality and ``IN`` probes) and a **sorted
  half** (one bisectable list of distinct values per comparable scalar
  segment — numbers, strings, booleans — serving range and prefix
  probes in Cypher's ``compare`` semantics);
* maintenance is *incremental*: every raw mutator (create, SET/REMOVE,
  label changes, deletes — and therefore every
  :class:`StoreTransaction`, which drives those raw halves) updates the
  affected index entries in place, inside the same commit that bumps
  the version; nothing is ever rebuilt on write;
* the planner consumes the indexes through :meth:`index_lookup` /
  :meth:`index_lookup_many` / :meth:`index_range` / :meth:`index_prefix`
  (all returning id-ordered, value-then-id-ordered lists, so row and
  batch execution enumerate identically) and sizes them through
  :meth:`index_statistics` (NDV + entry counts feeding
  :class:`~repro.graph.statistics.GraphStatistics`);
* index reads may **over-approximate** (a returned node need not satisfy
  the predicate — the planner always keeps the residual Filter/property
  check) but never under-approximate: a node whose predicate evaluates
  to ``true`` is always returned.

Write transactions (added for the slotted write pipeline):

* :meth:`write_transaction` returns a :class:`StoreTransaction`, the
  single mutation kernel both the planner's physical write operators and
  the reference ``updates/executor.py`` drive;
* inside a transaction, creates and property/label changes apply to the
  live structures immediately (clause-level snapshot isolation is the
  planner's ``Eager`` barrier's job, and the interpreter materialises
  its driving tables anyway) but *without* bumping the store version;
* deletes accumulate in a change buffer with deferred visibility — the
  entities stay readable until :meth:`StoreTransaction.flush`, which
  deduplicates across driving rows and removes relationships before
  nodes (non-DETACH violations are checked only after the same flush's
  relationship deletes have landed, exactly like the reference
  executor's two-phase delete);
* :meth:`StoreTransaction.commit` flushes and then bumps the version
  exactly once per transaction, which is what invalidates the
  version-keyed scan caches here and the statistics snapshots in
  :mod:`repro.planner.cost` — a bulk CREATE of 10k nodes costs one
  invalidation, not 10k.

Sessions, rollback, snapshots and fault injection (the transactional
robustness layer):

* ``write_transaction(record_undo=True)`` makes every raw mutator
  append an **inverse operation** to an undo log before mutating;
  :meth:`StoreTransaction.rollback` replays the log in reverse (with
  recording and fault injection suspended), restores the id counters
  and clears the scan caches, leaving store *and* property indexes
  exactly as before the transaction — without a version bump, since the
  pre-transaction version still describes the restored contents;
* inside a **session scope** (see :mod:`repro.runtime.session`),
  :meth:`write_transaction` hands out :class:`_StatementTransaction`
  facades over one spanning :class:`StoreTransaction`, so the change
  buffer crosses statement boundaries and the single version bump lands
  at session commit; writes outside the session are locked out with
  :class:`TransactionError` while that transaction is open;
* :meth:`pin_version` freezes the current version copy-on-write: every
  raw mutator first preserves the pre-image of what it touches into
  each active pin (:class:`~repro.graph.snapshot.VersionPin`), and
  :class:`~repro.graph.snapshot.SnapshotGraph` layers a full read
  interface over pin + live store;
* a :class:`FaultInjector` installed via :meth:`install_fault_injector`
  gets a :meth:`~FaultInjector.trip` call at every mutation site —
  creates, deletes, property/label changes, index maintenance, commit
  flush — and can raise :class:`InjectedFault` at any chosen ordinal,
  which is how the crash-recovery harness proves rollback restores the
  store byte-identically from *every* interior state.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort

from repro.exceptions import (
    ConstraintViolation,
    CypherTypeError,
    EntityNotFound,
    TransactionError,
)
from repro.graph.model import PropertyGraph
from repro.graph.reachability import ReachabilityIndex, best_covering, reachability_key
from repro.graph.snapshot import VersionPin
from repro.values.base import NodeId, RelId
from repro.values.base import is_cypher_value
from repro.values.ordering import canonical_key, sort_key
from repro.values.path import Path


def _id_value(identifier):
    return identifier.value


def _insort_rel(rels, rel_id):
    """Insert a relationship id into a sorted adjacency list, once.

    Rollback resurrects relationships out of creation order, so the
    append-only invariant does not hold there; a guarded insort keeps
    the lists id-sorted (and idempotent under crash-replay undo).
    """
    if rel_id not in rels:
        insort(rels, rel_id, key=_id_value)


#: Shared empty dict for the segmented-adjacency misses in expand_batch.
_EMPTY_SEGMENTS = {}


def _is_nan(value):
    return isinstance(value, float) and value != value


class _PropertyIndex:
    """One incremental composite ``(label, k1, k2, …)`` property index.

    An *entry* exists for a node exactly when **every** key column is
    non-null (Neo4j's composite-index contract), and is keyed by the
    tuple of per-column :func:`~repro.values.ordering.canonical_key`
    forms.  The **hash half** maps every canonical *prefix* of an entry
    (lengths 1..depth) to its node-id set, so full-tuple equality and
    prefix-equality probes are O(bucket).  The **sorted half** is
    derived per prefix on demand: the distinct next-column values under
    a prefix, bisectable within each *comparable scalar segment* —
    numbers (NaN excluded: no range predicate is ever true of it),
    strings and booleans — mirroring
    :func:`~repro.values.comparison.compare`, which only orders within
    those segments.  Values outside the segments (lists, maps,
    temporals) live in the hash half only; a range probe bounded by one
    of those reports "unsupported" and the caller falls back to the
    label scan (the residual predicate still decides).  The same
    child-tables drive :meth:`ordered_ids`, the index-provided-ordering
    enumeration behind Sort elimination.

    All mutators are state-driven per node (:meth:`update` recomputes
    the entry from the current property map), so double adds from
    defensive call sites cannot skew the entry count and undo replay
    converges from any intermediate state.
    """

    __slots__ = (
        "label", "keys", "_single", "_key0", "_values", "_ids_by_prefix",
        "_children", "_depth_distincts", "_sorted", "_ordered", "_segments",
    )

    #: canonical-key tag -> segment name for the sorted half.
    _SEGMENT_OF = {"num": "num", "str": "str", "bool": "bool"}

    def __init__(self, label, keys):
        self.label = label
        self.keys = tuple(keys)
        #: Depth-1 indexes take specialised maintenance paths below —
        #: the per-depth prefix loop costs several dict operations the
        #: single-key (and by far most frequent) shape doesn't need.
        self._single = len(self.keys) == 1
        self._key0 = self.keys[0]
        #: NodeId -> (actual value tuple, canonical tuple).  The actual
        #: values feed covering projections; the canonicals key removal.
        self._values = {}
        #: canonical prefix (len 1..depth) -> dict[NodeId, None].
        self._ids_by_prefix = {}
        #: canonical prefix (len 0..depth-1) -> {child canonical:
        #: representative actual value}.  Equal canonicals have equal
        #: sort keys, so any live representative orders the child.
        self._children = {(): {}}
        #: Distinct canonical prefixes per depth (index 0 = length 1);
        #: the last one is the full-tuple NDV the cost model reads.
        self._depth_distincts = [0] * len(self.keys)
        #: Memoised id-ordered lists per canonical prefix; add/remove on
        #: a prefix invalidates its entry.  Callers must not mutate the
        #: returned lists (the batch engine only slices them, like the
        #: label scan lists).
        self._sorted = {}
        #: Memoised sort_key-ordered child canonicals per prefix.
        self._ordered = {}
        #: Memoised per-prefix sorted segments: prefix ->
        #: {"num": [...], "str": [...], "bool": [...]}.
        self._segments = {}

    @property
    def depth(self):
        return len(self.keys)

    # -- maintenance -------------------------------------------------------

    @staticmethod
    def _canonical(value):
        """:func:`canonical_key` with the scalar majority inlined.

        Maintenance runs once per indexed property per write — the
        int/str/float fast path skips the generic isinstance chain.
        (``type is`` checks keep bool out of the ``num`` tag, exactly
        like the generic function.)
        """
        value_type = type(value)
        if value_type is int:
            return ("num", value)
        if value_type is str:
            return ("str", value)
        if value_type is float:
            return ("nan",) if value != value else ("num", value)
        if value_type is bool:
            return ("bool", value)
        return canonical_key(value)

    def update(self, node_id, properties):
        """Reconcile this node's entry with its current property map.

        The single maintenance entry point: creates, property changes,
        label flips and undo replay all land here, and because the old
        state is whatever :attr:`_values` holds, replay from any
        partial state converges on the rebuilt index.  The depth-1
        branch is :meth:`add` inlined — this method runs once per
        indexed property per write, and the memo pops are guarded so a
        bulk ingest (memos all empty) pays no hashing for them.
        """
        if self._single:
            value = properties.get(self._key0)
            if value is None:
                self.discard(node_id)
                return
            canon = (self._canonical(value),)
            existing = self._values.get(node_id)
            if existing is not None:
                if existing[1] == canon:
                    self._values[node_id] = ((value,), canon)
                    return
                self.discard(node_id)
            self._values[node_id] = ((value,), canon)
            ids = self._ids_by_prefix.get(canon)
            if ids is None:
                self._ids_by_prefix[canon] = {node_id: None}
                self._depth_distincts[0] += 1
                self._children[()][canon[0]] = value
                if self._ordered:
                    self._ordered.pop((), None)
                if self._segments:
                    self._segments.pop((), None)
            elif self._sorted:
                ids[node_id] = None
                self._sorted.pop(canon, None)
            else:
                ids[node_id] = None
            return
        values = []
        for key in self.keys:
            value = properties.get(key)
            if value is None:
                self.discard(node_id)
                return
            values.append(value)
        self.add(node_id, tuple(values))

    def update_bulk(self, pairs):
        """:meth:`update` over ``(node id, property map)`` pairs.

        Pair-for-pair identical to calling :meth:`update` in a loop;
        the depth-1 body is repeated here with every ``self`` attribute
        hoisted to a local and the int/str canonical forms inlined —
        bulk ingest is the one call site hot enough to warrant it.
        """
        if not self._single:
            update = self.update
            for node_id, properties in pairs:
                update(node_id, properties)
            return
        key = self._key0
        canonical_of = self._canonical
        values_map = self._values
        ids_by_prefix = self._ids_by_prefix
        root = self._children[()]
        distincts = self._depth_distincts
        sorted_memo = self._sorted
        ordered_memo = self._ordered
        segments_memo = self._segments
        # Memo liveness is monotone within the pass: no reads run here,
        # so an empty memo stays empty and the flags can be hoisted.
        has_sorted = bool(sorted_memo)
        has_ordered = bool(ordered_memo)
        has_segments = bool(segments_memo)
        # Per-call value caches: ingests recur heavily on distinct
        # values, and for a recurring value the canonical tuple, the
        # entry tuple (immutable, safely shared between nodes) and the
        # target bucket are all fixed.  Caches are keyed per exact type
        # (``True == 1`` must not alias), and dropped whenever a discard
        # or per-node reconcile could delete a bucket out from under
        # them.
        int_cache = {}
        str_cache = {}
        for node_id, properties in pairs:
            value = properties.get(key)
            if value is None:
                if node_id in values_map:
                    self.discard(node_id)
                    int_cache.clear()
                    str_cache.clear()
                continue
            value_type = type(value)
            if value_type is int:
                cache = int_cache
                cached = cache.get(value)
            elif value_type is str:
                cache = str_cache
                cached = cache.get(value)
            else:
                cache = cached = None
            if cached is not None:
                canon, entry, ids = cached
                prior = values_map.setdefault(node_id, entry)
                if prior is not entry:
                    values_map[node_id] = prior
                    self.update(node_id, properties)
                    int_cache.clear()
                    str_cache.clear()
                    continue
                ids[node_id] = None
                if has_sorted:
                    sorted_memo.pop(canon, None)
                continue
            if value_type is int:
                canon = (("num", value),)
            elif value_type is str:
                canon = (("str", value),)
            else:
                canon = (canonical_of(value),)
            entry = ((value,), canon)
            prior = values_map.setdefault(node_id, entry)
            if prior is not entry:
                # Node was already indexed (re-ingest): restore and take
                # the full per-node reconcile.
                values_map[node_id] = prior
                self.update(node_id, properties)
                int_cache.clear()
                str_cache.clear()
                continue
            ids = ids_by_prefix.get(canon)
            if ids is None:
                ids = {node_id: None}
                ids_by_prefix[canon] = ids
                distincts[0] += 1
                root[canon[0]] = value
                if has_ordered:
                    ordered_memo.pop((), None)
                if has_segments:
                    segments_memo.pop((), None)
            else:
                ids[node_id] = None
                if has_sorted:
                    sorted_memo.pop(canon, None)
            if cache is not None:
                cache[value] = (canon, entry, ids)

    def add(self, node_id, values):
        """Insert/refresh the entry for ``values`` (all columns non-null)."""
        canonical_of = self._canonical
        if self._single:
            canon = (canonical_of(values[0]),)
        else:
            canon = tuple(canonical_of(value) for value in values)
        existing = self._values.get(node_id)
        if existing is not None:
            if existing[1] == canon:
                # Same canonical entry; keep the freshest actuals for
                # covering reads (1 vs 1.0 are one canonical value).
                self._values[node_id] = (values, canon)
                return
            self.discard(node_id)
        self._values[node_id] = (values, canon)
        ids_by_prefix = self._ids_by_prefix
        children = self._children
        if self._single:
            # Depth-1 fast path: ``canon[:1] is canon``, the parent
            # prefix is always the root, and a fresh bucket can have no
            # memoised sorted list (discard drops it with the last id).
            ids = ids_by_prefix.get(canon)
            if ids is None:
                ids_by_prefix[canon] = {node_id: None}
                self._depth_distincts[0] += 1
                children[()][canon[0]] = values[0]
                if self._ordered:
                    self._ordered.pop((), None)
                if self._segments:
                    self._segments.pop((), None)
            else:
                ids[node_id] = None
                if self._sorted:
                    self._sorted.pop(canon, None)
            return
        for depth in range(len(canon)):
            grown = canon[:depth + 1]
            ids = ids_by_prefix.get(grown)
            if ids is None:
                ids_by_prefix[grown] = {node_id: None}
                self._depth_distincts[depth] += 1
                prefix = canon[:depth]
                bucket = children.get(prefix)
                if bucket is None:
                    bucket = children[prefix] = {}
                bucket[canon[depth]] = values[depth]
                if self._ordered:
                    self._ordered.pop(prefix, None)
                if self._segments:
                    self._segments.pop(prefix, None)
            else:
                ids[node_id] = None
                if self._sorted:
                    self._sorted.pop(grown, None)

    def discard(self, node_id):
        """Drop the node's entry, whatever it currently is (idempotent)."""
        entry = self._values.pop(node_id, None)
        if entry is None:
            return
        canon = entry[1]
        ids_by_prefix = self._ids_by_prefix
        if self._single:
            ids = ids_by_prefix[canon]
            del ids[node_id]
            if self._sorted:
                self._sorted.pop(canon, None)
            if not ids:
                del ids_by_prefix[canon]
                self._depth_distincts[0] -= 1
                del self._children[()][canon[0]]
                if self._ordered:
                    self._ordered.pop((), None)
                if self._segments:
                    self._segments.pop((), None)
            return
        for depth in range(len(canon) - 1, -1, -1):
            grown = canon[:depth + 1]
            ids = ids_by_prefix[grown]
            del ids[node_id]
            self._sorted.pop(grown, None)
            if not ids:
                del ids_by_prefix[grown]
                self._depth_distincts[depth] -= 1
                prefix = canon[:depth]
                bucket = self._children[prefix]
                del bucket[canon[depth]]
                if not bucket and prefix:
                    del self._children[prefix]
                self._ordered.pop(prefix, None)
                self._segments.pop(prefix, None)

    # -- statistics --------------------------------------------------------

    @property
    def distinct_values(self):
        """NDV of the full key tuple."""
        return self._depth_distincts[-1]

    @property
    def entries(self):
        """Total indexed entries (nodes with every column non-null)."""
        return len(self._values)

    def prefix_ndvs(self):
        """Distinct canonical prefixes per length (1..depth)."""
        return tuple(self._depth_distincts)

    def column_distribution(self, column):
        """``{segment: [(payload, count), …] sorted}`` for one column.

        The histogram source: per distinct comparable value of
        ``column``, the number of entries carrying it (summed over all
        prefixes for deeper columns).  O(distinct prefixes of length
        column+1); built lazily by the statistics snapshot, never on the
        write path.
        """
        tallies = {}
        width = column + 1
        for prefix, ids in self._ids_by_prefix.items():
            if len(prefix) != width:
                continue
            canonical = prefix[column]
            tag = canonical[0]
            if tag in self._SEGMENT_OF:
                slot = tallies.setdefault(tag, {})
                payload = canonical[1]
                slot[payload] = slot.get(payload, 0) + len(ids)
        return {
            tag: sorted(counts.items()) for tag, counts in tallies.items()
        }

    # -- probes ------------------------------------------------------------

    def _sorted_ids(self, prefix):
        """A prefix's id-ordered node list, memoised until it changes.

        Dead prefixes are never memoised: the maintenance fast paths
        only invalidate prefixes that exist, so caching an empty list
        here could leak a stale [] past a later re-add.
        """
        ids = self._sorted.get(prefix)
        if ids is None:
            bucket = self._ids_by_prefix.get(prefix)
            if bucket is None:
                return []
            ids = sorted(bucket, key=_id_value)
            self._sorted[prefix] = ids
        return ids

    def _canonical_prefix(self, values):
        """Canonical tuple of probe values, or None when unsatisfiable.

        A null or NaN anywhere in an equality prefix makes the whole
        conjunction never-true (``=`` holds of neither).
        """
        canon = []
        for value in values:
            if value is None or _is_nan(value):
                return None
            canon.append(self._canonical(value))
        return tuple(canon)

    def lookup(self, value):
        """Single-column equality probe (depth-1 compatibility form)."""
        return self.probe((value,))

    def probe(self, values):
        """Equality-prefix probe: id-ordered candidates, possibly memoised.

        ``values`` covers the first ``len(values)`` columns; a
        full-depth tuple is the hash-half point lookup.  Exact for
        scalars; list/map probes over-approximate (``equals`` is unknown
        with nested nulls) and the residual check decides.  Do not
        mutate the result.
        """
        canon = self._canonical_prefix(values)
        if canon is None or canon not in self._ids_by_prefix:
            return []
        return self._sorted_ids(canon)

    def lookup_many(self, values):
        """The union of first-column :meth:`lookup` over ``values``."""
        merged = {}
        ids_by_prefix = self._ids_by_prefix
        for value in values:
            if value is None or _is_nan(value):
                continue
            ids = ids_by_prefix.get((self._canonical(value),))
            if ids:
                merged.update(ids)
        return sorted(merged, key=_id_value)

    def _segment(self, prefix, segment_name):
        """Sorted distinct payloads of one segment under ``prefix``."""
        segments = self._segments.get(prefix)
        if segments is None:
            segments = {"num": [], "str": [], "bool": []}
            segment_of = self._SEGMENT_OF
            for canonical in self._children.get(prefix, _EMPTY_SEGMENTS):
                name = segment_of.get(canonical[0])
                if name is not None:
                    segments[name].append(canonical[1])
            for payloads in segments.values():
                payloads.sort()
            self._segments[prefix] = segments
        return segments[segment_name]

    def range_ids(
        self, low, low_inclusive, high, high_inclusive, prefix_values=(),
    ):
        """Node ids matching prefix-equality + range, in index order.

        The range applies to the column after the equality prefix;
        enumeration is (column value, then node id) with deeper columns
        unconstrained.  Bounds follow
        :func:`~repro.values.comparison.compare`: a bound outside the
        comparable scalar segments returns ``None`` ("unsupported — scan
        the label instead"); a NaN bound, bounds from two different
        segments, or a never-true equality prefix return the empty list.
        At least one bound must be given.
        """
        prefix = self._canonical_prefix(prefix_values)
        if prefix is None:
            return []
        bound = low if low is not None else high
        segment_name = self._segment_for(bound)
        if segment_name is None:
            return None if not _is_nan(bound) else []
        if low is not None and high is not None:
            if self._segment_for(high) != segment_name:
                # The two bounds admit disjoint value types: no value can
                # satisfy both comparisons, whatever the other bound is.
                return []
        values = self._segment(prefix, segment_name)
        start = 0
        stop = len(values)
        if low is not None:
            start = (
                bisect_left(values, low)
                if low_inclusive
                else bisect_right(values, low)
            )
        if high is not None:
            stop = (
                bisect_right(values, high)
                if high_inclusive
                else bisect_left(values, high)
            )
        return self._gather(prefix, segment_name, values[start:stop])

    def prefix_ids(self, prefix, prefix_values=()):
        """Node ids whose next column starts with ``prefix``, in order.

        Exact: ``STARTS WITH`` is only true of strings, and strings
        sharing a prefix are contiguous in the sorted segment.  A
        non-string prefix matches nothing.
        """
        if not isinstance(prefix, str):
            return []
        equality = self._canonical_prefix(prefix_values)
        if equality is None:
            return []
        values = self._segment(equality, "str")
        start = bisect_left(values, prefix)
        matching = []
        for position in range(start, len(values)):
            if not values[position].startswith(prefix):
                break
            matching.append(values[position])
        return self._gather(equality, "str", matching)

    def _segment_for(self, value):
        """The sorted-half segment a range bound selects, or None."""
        if isinstance(value, bool):
            return "bool"
        if isinstance(value, (int, float)):
            return None if _is_nan(value) else "num"
        if isinstance(value, str):
            return "str"
        return None

    def _gather(self, prefix, segment_name, values):
        tag = segment_name  # segment names coincide with canonical tags
        out = []
        for value in values:
            grown = prefix + ((tag, value),)
            if grown in self._ids_by_prefix:
                out.extend(self._sorted_ids(grown))
        return out

    # -- ordered enumeration (index-provided ORDER BY) ---------------------

    def _ordered_children(self, prefix):
        """Child canonicals under ``prefix`` in global sort order."""
        ordered = self._ordered.get(prefix)
        if ordered is None:
            bucket = self._children.get(prefix, _EMPTY_SEGMENTS)
            ordered = sorted(
                bucket, key=lambda canonical: sort_key(bucket[canonical])
            )
            self._ordered[prefix] = ordered
        return ordered

    def ordered_ids(
        self, prefix_values, directions,
        low=None, low_inclusive=True, high=None, high_inclusive=True,
        starts_with=None,
    ):
        """Entries under an equality prefix in ORDER BY order, lazily.

        ``directions`` gives the ascending flag per ordered column
        (starting right after the equality prefix); optional bounds or a
        string prefix constrain the *first* ordered column, mirroring
        :meth:`range_ids` / :meth:`prefix_ids`.  Enumeration descends
        exactly ``len(directions)`` columns and then yields each group's
        ids ascending — the same tie order a stable Sort over an
        id-ordered scan produces — so deleting the Sort is invisible.
        Lazy so a downstream LIMIT stops the walk early.
        """
        prefix = self._canonical_prefix(prefix_values)
        if prefix is None:
            return

        def emit(prefix, remaining):
            if not remaining:
                yield from self._sorted_ids(prefix)
                return
            children = self._ordered_children(prefix)
            if not remaining[0]:
                children = reversed(children)
            rest = remaining[1:]
            for child in children:
                yield from emit(prefix + (child,), rest)

        directions = tuple(directions)
        if low is None and high is None and starts_with is None:
            yield from emit(prefix, directions)
            return
        if starts_with is not None:
            payloads = []
            if isinstance(starts_with, str):
                candidates = self._segment(prefix, "str")
                start = bisect_left(candidates, starts_with)
                for position in range(start, len(candidates)):
                    if not candidates[position].startswith(starts_with):
                        break
                    payloads.append(candidates[position])
            segment_name = "str"
        else:
            bound = low if low is not None else high
            segment_name = self._segment_for(bound)
            if segment_name is None:
                return  # plan-time gate keeps unsupported bounds out
            if (
                low is not None and high is not None
                and self._segment_for(high) != segment_name
            ):
                return
            candidates = self._segment(prefix, segment_name)
            start = 0
            stop = len(candidates)
            if low is not None:
                start = (
                    bisect_left(candidates, low)
                    if low_inclusive
                    else bisect_right(candidates, low)
                )
            if high is not None:
                stop = (
                    bisect_right(candidates, high)
                    if high_inclusive
                    else bisect_left(candidates, high)
                )
            payloads = candidates[start:stop]
        if not directions[0]:
            payloads = reversed(payloads)
        rest = directions[1:]
        for payload in payloads:
            grown = prefix + ((segment_name, payload),)
            if grown in self._ids_by_prefix:
                yield from emit(grown, rest)

    # -- covering ----------------------------------------------------------

    def entry_values(self, node_id):
        """The node's stored column values, or None (covering reads)."""
        entry = self._values.get(node_id)
        return entry[0] if entry is not None else None

    def snapshot(self):
        """Canonical content view for maintenance-vs-rebuild checks."""
        grouped = {}
        for node_id, (_values, canon) in self._values.items():
            grouped.setdefault(canon, []).append(node_id.value)
        return {
            canon: tuple(sorted(ids)) for canon, ids in grouped.items()
        }

    def __repr__(self):
        return "_PropertyIndex(:%s(%s), ndv=%d, entries=%d)" % (
            self.label, ",".join(self.keys),
            self.distinct_values, len(self._values),
        )


class InjectedFault(Exception):
    """Raised by an armed :class:`FaultInjector` at a mutation site.

    Deliberately *not* a CypherError: an injected crash models an
    infrastructure failure, so it must not be absorbed by the public
    catch-all at the API boundary (or the CLI's one-line handler).
    """


class FaultInjector:
    """Deterministic crash-point driver over the store's mutation sites.

    The store calls :meth:`trip` (via ``graph._fault``) at the start of
    every raw mutator, inside every index-maintenance hook, and at
    commit flush.  Pass 1 runs with ``arm_at=None`` and just counts the
    sites a workload hits; pass 2 re-runs with ``arm_at=k`` and the
    k-th hit (1-based, in execution order) raises :class:`InjectedFault`
    exactly once.  ``counts`` keeps per-site totals so harnesses can
    report which kinds of sites a corpus exercises.
    """

    __slots__ = ("arm_at", "total", "counts", "fired")

    def __init__(self, arm_at=None):
        self.arm_at = arm_at
        self.total = 0
        self.counts = {}
        self.fired = None  # (site, ordinal) once the armed hit raised

    def trip(self, site):
        self.total += 1
        self.counts[site] = self.counts.get(site, 0) + 1
        if (
            self.arm_at is not None
            and self.total == self.arm_at
            and self.fired is None
        ):
            self.fired = (site, self.total)
            raise InjectedFault(
                "injected crash at mutation site %r (hit #%d)"
                % (site, self.total)
            )


class MemoryGraph(PropertyGraph):
    """A mutable property graph with O(1) id lookups and adjacency lists."""

    #: The batch engine's capability flag: this store implements the bulk
    #: column APIs (all_node_ids / label_scan_ids / node_property_column /
    #: expand_batch).  Graph views lacking them keep row-wise execution.
    supports_bulk_scans = True

    def __init__(self):
        self._version = 0  # bumped on every mutation; invalidates cached statistics
        self._next_node_id = 1
        self._next_rel_id = 1
        self._node_labels = {}        # NodeId -> set[str]
        self._node_properties = {}    # NodeId -> dict[str, value]
        self._rel_endpoints = {}      # RelId -> (NodeId src, NodeId tgt)
        self._rel_types = {}          # RelId -> str
        self._rel_properties = {}     # RelId -> dict[str, value]
        self._outgoing = {}           # NodeId -> list[RelId]
        self._incoming = {}           # NodeId -> list[RelId]
        self._outgoing_by_type = {}   # NodeId -> {str: list[RelId]}
        self._incoming_by_type = {}   # NodeId -> {str: list[RelId]}
        self._label_index = {}        # str -> set[NodeId]
        self._type_index = {}         # str -> set[RelId]
        self._scan_cache = {}         # ("label"|"type", name) -> (version, sorted list)
        self._indexes_by_label = {}   # str -> {str key: _PropertyIndex}
        self._reachability_indexes = {}  # frozenset[str]|None -> ReachabilityIndex
        # Transactional robustness layer (all dormant by default):
        self._pins = []               # active VersionPins (copy-on-write)
        self._undo = None             # inverse-op log of the open recording tx
        self._active_transaction = None  # session-spanning StoreTransaction
        self._transaction_owner = None   # the session owning it
        self._session_scope = None       # session currently executing a statement
        self._fault_injector = None      # FaultInjector or None

    # ------------------------------------------------------------------
    # PropertyGraph read interface
    # ------------------------------------------------------------------

    def nodes(self):
        return iter(list(self._node_labels.keys()))

    def relationships(self):
        return iter(list(self._rel_endpoints.keys()))

    def src(self, rel_id):
        return self._endpoints(rel_id)[0]

    def tgt(self, rel_id):
        return self._endpoints(rel_id)[1]

    def property_value(self, entity_id, key):
        return self._property_map(entity_id).get(key)

    def properties(self, entity_id):
        return dict(self._property_map(entity_id))

    def labels(self, node_id):
        try:
            return frozenset(self._node_labels[node_id])
        except KeyError:
            raise EntityNotFound("no node %r in graph" % (node_id,))

    def has_label(self, node_id, label):
        """``label ∈ λ(n)`` without materialising the label set."""
        labels = self._node_labels.get(node_id)
        if labels is None:
            raise EntityNotFound("no node %r in graph" % (node_id,))
        return label in labels

    def node_property(self, node_id, key):
        """``ι(node, key)`` on the O(1) node-property path (hot scans)."""
        try:
            return self._node_properties[node_id].get(key)
        except KeyError:
            raise EntityNotFound("no node %r in graph" % (node_id,))

    def rel_type(self, rel_id):
        try:
            return self._rel_types[rel_id]
        except KeyError:
            raise EntityNotFound("no relationship %r in graph" % (rel_id,))

    def has_node(self, node_id):
        return node_id in self._node_labels

    def has_relationship(self, rel_id):
        return rel_id in self._rel_endpoints

    def nodes_with_label(self, label):
        return iter(self._cached_scan("label", label))

    def outgoing(self, node_id, types=None):
        if types is None:
            return iter(self._outgoing.get(node_id, ()))
        return self._typed_adjacency(self._outgoing_by_type, node_id, types)

    def incoming(self, node_id, types=None):
        if types is None:
            return iter(self._incoming.get(node_id, ()))
        return self._typed_adjacency(self._incoming_by_type, node_id, types)

    def relationships_with_type(self, rel_type):
        return iter(self._cached_scan("type", rel_type))

    def node_count(self):
        return len(self._node_labels)

    def relationship_count(self):
        return len(self._rel_endpoints)

    def degree(self, node_id, direction="both", rel_type=None):
        """Number of incident relationships — O(1) from segment lengths."""
        if rel_type is None:
            out = len(self._outgoing.get(node_id, ()))
            inc = len(self._incoming.get(node_id, ()))
        else:
            out = len(
                self._outgoing_by_type.get(node_id, {}).get(rel_type, ())
            )
            inc = len(
                self._incoming_by_type.get(node_id, {}).get(rel_type, ())
            )
        if direction == "out":
            return out
        if direction == "in":
            return inc
        return out + inc

    # -- bulk column access (the batch engine's scan/expand substrate) -------

    def all_node_ids(self):
        """Every node id as a fresh list the caller may slice and keep."""
        return list(self._node_labels)

    def label_scan_ids(self, label):
        """The memoised sorted scan list for ``label`` — do not mutate.

        Same list :meth:`nodes_with_label` iterates; handed out directly
        so a batched scan can slice morsels without re-materialising.
        """
        return self._cached_scan("label", label)

    def node_property_column(self, node_ids, key):
        """``[ι(n, key) for n in node_ids]`` off the internal dicts.

        One bulk call instead of one :meth:`node_property` dispatch per
        row.  Raises ``KeyError`` if an id is not a current node (the
        vectorised compiler catches that and falls back to the
        per-element path with full mixed-type semantics).
        """
        properties = self._node_properties
        return [properties[node].get(key) for node in node_ids]

    def expand_batch(self, sources, direction, types=None):
        """Adjacency of a whole source column, as parallel columns.

        Returns ``(origins, rels, targets)``: for every relationship
        step from ``sources[i]`` one entry each — the origin row index
        ``i``, the relationship id, and the neighbour reached.  Sources
        that are not current node ids contribute nothing (mirroring the
        row-wise Expand's ``isinstance`` guard).  Enumeration order per
        source matches the per-row accessors exactly: relationship-id
        order within a direction, outgoing before incoming for
        ``"both"`` (self-loops once).
        """
        origins, rels, targets = [], [], []
        endpoints = self._rel_endpoints
        node_labels = self._node_labels
        if direction == "both":
            touching = self.touching
            for index, node in enumerate(sources):
                if not isinstance(node, NodeId) or node not in node_labels:
                    continue
                for rel in touching(node, types):
                    source_end, target_end = endpoints[rel]
                    origins.append(index)
                    rels.append(rel)
                    targets.append(
                        target_end if source_end == node else source_end
                    )
            return origins, rels, targets
        if direction == "out":
            plain, segmented, end = self._outgoing, self._outgoing_by_type, 1
        else:
            plain, segmented, end = self._incoming, self._incoming_by_type, 0
        single = None
        if types is not None and len(types) == 1:
            (single,) = types
        for index, node in enumerate(sources):
            if not isinstance(node, NodeId) or node not in node_labels:
                continue
            if types is None:
                steps = plain.get(node, ())
            elif single is not None:
                steps = segmented.get(node, _EMPTY_SEGMENTS).get(single, ())
            else:
                steps = self._typed_adjacency(segmented, node, types)
            for rel in steps:
                origins.append(index)
                rels.append(rel)
                targets.append(endpoints[rel][end])
        return origins, rels, targets

    def all_labels(self):
        return sorted(self._label_index.keys())

    def all_types(self):
        return sorted(self._type_index.keys())

    def label_cardinalities(self):
        """``{label: |nodes|}`` straight off the inverted index."""
        return {
            label: len(nodes) for label, nodes in self._label_index.items()
        }

    def type_cardinalities(self):
        """``{type: |relationships|}`` straight off the inverted index."""
        return {t: len(rels) for t, rels in self._type_index.items()}

    # ------------------------------------------------------------------
    # Property indexes
    # ------------------------------------------------------------------

    @staticmethod
    def _index_key_tuple(keys):
        """Normalise a key spec — one string or a key sequence — to a tuple."""
        if isinstance(keys, str):
            return (keys,)
        return tuple(keys)

    @staticmethod
    def _public_index_key(keys):
        """Render a key tuple for the public surface.

        Single-key indexes keep reading as the plain string they always
        were (``("L", "v")`` pairs everywhere); composites surface the
        tuple.
        """
        return keys[0] if len(keys) == 1 else keys

    def create_index(self, label, *keys):
        """Declare a ``(label, k1, k2, …)`` index; returns True if new.

        Accepts the composite columns as varargs or as one sequence
        (``create_index("L", "a", "b")`` ≡ ``create_index("L",
        ("a", "b"))``), so the long-standing two-argument single-key
        call sites keep working unchanged.  The initial build scans the
        label's inverted index once; from then on every mutation
        maintains the entries incrementally (the raw mutators below), so
        an index is never rebuilt on write.  Creating an index bumps the
        version: plans whose access-path choice depended on statistics
        must be reconsidered.
        """
        if not isinstance(label, str) or not label:
            raise ValueError("index label must be a non-empty string")
        if len(keys) == 1 and isinstance(keys[0], (list, tuple)):
            keys = tuple(keys[0])
        if not keys:
            raise ValueError("a property index needs at least one key")
        for key in keys:
            if not isinstance(key, str) or not key:
                raise ValueError(
                    "index property key must be a non-empty string"
                )
        if len(set(keys)) != len(keys):
            raise ValueError("index property keys must be distinct")
        if keys in self._indexes_by_label.get(label, _EMPTY_SEGMENTS):
            return False
        index = _PropertyIndex(label, keys)
        properties = self._node_properties
        for node in self._label_index.get(label, ()):
            index.update(node, properties[node])
        self._indexes_by_label.setdefault(label, {})[keys] = index
        self._version += 1
        return True

    def drop_index(self, label, keys):
        """Remove a property index; returns True if one existed."""
        indexes = self._indexes_by_label.get(label)
        key_tuple = self._index_key_tuple(keys)
        if not indexes or key_tuple not in indexes:
            return False
        del indexes[key_tuple]
        if not indexes:
            del self._indexes_by_label[label]
        self._version += 1
        return True

    def has_index(self, label, keys):
        return self._index_key_tuple(keys) in self._indexes_by_label.get(
            label, _EMPTY_SEGMENTS
        )

    def _index(self, label, keys):
        return self._indexes_by_label[label][self._index_key_tuple(keys)]

    def indexes(self):
        """All declared ``(label, keys)`` pairs, sorted.

        The second component is the plain key string for single-key
        indexes and the key tuple for composites.
        """
        ordered = sorted(
            (label, keys)
            for label, keyed in self._indexes_by_label.items()
            for keys in keyed
        )
        return [
            (label, self._public_index_key(keys)) for label, keys in ordered
        ]

    def index_statistics(self):
        """``{(label, keys): (ndv, entries)}`` for the cost model.

        NDV counts distinct full key tuples; use
        :meth:`index_prefix_ndvs` for the per-prefix counts behind
        composite selectivity.
        """
        return {
            (index.label, self._public_index_key(index.keys)): (
                index.distinct_values, index.entries,
            )
            for _label, keyed in self._indexes_by_label.items()
            for index in keyed.values()
        }

    def index_prefix_ndvs(self, label, keys):
        """Distinct canonical prefixes per prefix length (1..depth)."""
        return self._index(label, keys).prefix_ndvs()

    def index_column_distribution(self, label, keys, column):
        """Per-segment ``[(value, entry count), …]`` for one column.

        The raw material for equi-depth histograms; computed on demand
        from the prefix tables, never maintained on the write path.
        """
        return self._index(label, keys).column_distribution(column)

    def index_lookup(self, label, key, value):
        """Equality probe: candidate node ids, id-ordered (see class doc)."""
        return self._index(label, key).lookup(value)

    def index_lookup_many(self, label, key, values):
        """``IN`` probe over a value list: deduplicated, id-ordered."""
        return self._index(label, key).lookup_many(values)

    def index_probe(self, label, keys, values):
        """Composite equality-prefix probe: candidates, id-ordered."""
        return self._index(label, keys).probe(tuple(values))

    def index_range(self, label, key, low, low_inclusive, high, high_inclusive):
        """Range probe in index order; None when the bounds need a scan."""
        return self._index(label, key).range_ids(
            low, low_inclusive, high, high_inclusive
        )

    def index_prefix(self, label, key, prefix):
        """``STARTS WITH`` probe in index order (exact)."""
        return self._index(label, key).prefix_ids(prefix)

    def index_seek_range(
        self, label, keys, prefix_values,
        low, low_inclusive, high, high_inclusive, starts_with=None,
    ):
        """Equality-prefix + range/STARTS WITH seek on a composite index.

        Same contract as :meth:`index_range` / :meth:`index_prefix` with
        the bound column sitting after ``prefix_values``; ``None`` still
        means "bounds unsupported — scan the label".
        """
        index = self._index(label, keys)
        if starts_with is not None:
            return index.prefix_ids(starts_with, tuple(prefix_values))
        return index.range_ids(
            low, low_inclusive, high, high_inclusive, tuple(prefix_values)
        )

    def index_ordered(
        self, label, keys, prefix_values, directions,
        low=None, low_inclusive=True, high=None, high_inclusive=True,
        starts_with=None,
    ):
        """Lazy ORDER BY enumeration over an index (see ``ordered_ids``)."""
        return self._index(label, keys).ordered_ids(
            tuple(prefix_values), directions,
            low, low_inclusive, high, high_inclusive, starts_with,
        )

    def index_cover_getter(self, label, keys):
        """``node_id -> stored column values`` reader for covering scans."""
        return self._index(label, keys).entry_values

    def index_snapshot(self, label, keys):
        """Canonical content of one index (maintenance-vs-rebuild tests)."""
        return self._index(label, keys).snapshot()

    # -- incremental maintenance (called from the raw mutators) -------------

    def _indexes_for(self, label):
        return self._indexes_by_label.get(label, _EMPTY_SEGMENTS)

    def _index_node_created(self, node_id, labels, properties):
        self._fault("index_add")
        for label in labels:
            for index in self._indexes_for(label).values():
                index.update(node_id, properties)

    def _index_node_deleted(self, node_id, labels, properties):
        self._fault("index_remove")
        for label in labels:
            for index in self._indexes_for(label).values():
                index.discard(node_id)

    def _index_property_changed(self, node_id, key, old, new):
        if old is None and new is None:
            return
        self._fault("index_update")
        properties = self._node_properties[node_id]
        for label in self._node_labels[node_id]:
            for index in self._indexes_for(label).values():
                if key in index.keys:
                    index.update(node_id, properties)

    def _index_label_added(self, node_id, label):
        indexes = self._indexes_for(label)
        if not indexes:
            return
        self._fault("index_add")
        properties = self._node_properties[node_id]
        for index in indexes.values():
            index.update(node_id, properties)

    def _index_label_removed(self, node_id, label):
        indexes = self._indexes_for(label)
        if not indexes:
            return
        self._fault("index_remove")
        for index in indexes.values():
            index.discard(node_id)

    # ------------------------------------------------------------------
    # Reachability indexes (see :mod:`repro.graph.reachability`)
    # ------------------------------------------------------------------

    def create_reachability_index(self, types=None):
        """Declare a reachability index over a relationship-type set.

        ``types`` is an iterable of type names, or None for the
        all-types index.  The initial build runs one global Tarjan over
        the matching relationships; from then on the raw relationship
        mutators maintain the condensation incrementally — the index is
        never rebuilt on write.  Bumps the version (plans gated on the
        index's availability must be reconsidered); returns True if new.
        """
        key = reachability_key(types)
        if key is not None and not all(
            isinstance(t, str) and t for t in key
        ):
            raise ValueError("reachability types must be non-empty strings")
        if key in self._reachability_indexes:
            return False
        index = ReachabilityIndex(key)
        rel_types = self._rel_types
        index.build(
            (rel_id, source, target)
            for rel_id, (source, target) in self._rel_endpoints.items()
            if index.covers(rel_types[rel_id])
        )
        self._reachability_indexes[key] = index
        self._version += 1
        return True

    def drop_reachability_index(self, types=None):
        """Remove a reachability index; returns True if one existed."""
        key = reachability_key(types)
        if key not in self._reachability_indexes:
            return False
        del self._reachability_indexes[key]
        self._version += 1
        return True

    def has_reachability_index(self, types=None):
        return reachability_key(types) in self._reachability_indexes

    def reachability_indexes(self):
        """All declared type sets, sorted; None means the all-types index."""
        return sorted(
            (
                None if key is None else tuple(sorted(key))
                for key in self._reachability_indexes
            ),
            key=lambda entry: ((), ) if entry is None else ((1,), entry),
        )

    def reachability_statistics(self):
        """``{types tuple|None: {...size facts...}}`` for the cost model."""
        return {
            None if key is None else tuple(sorted(key)): index.statistics()
            for key, index in self._reachability_indexes.items()
        }

    def reachability_index_for(self, types=None):
        """The best declared index covering a traversal's type set.

        Preference: exact match, then the smallest declared superset,
        then the all-types index (all are sound — a superset index only
        over-approximates, and the probe's walk is the residual check).
        Returns None when nothing covers the requested types.
        """
        if not self._reachability_indexes:
            return None
        chosen = best_covering(
            reachability_key(types), self._reachability_indexes
        )
        if chosen is best_covering.MISS:
            return None
        return self._reachability_indexes[chosen]

    def reachability_snapshot(self, types=None):
        """Canonical content of one index (maintenance-vs-rebuild tests)."""
        return self._reachability_indexes[reachability_key(types)].snapshot()

    # -- incremental maintenance (called from the raw rel mutators) ----------

    def _reachability_rel_created(self, rel_id, source, target, rel_type):
        self._fault("reachability_add")
        for index in self._reachability_indexes.values():
            if index.covers(rel_type):
                index.add_edge(rel_id, source, target)

    def _reachability_rel_deleted(self, rel_id, rel_type):
        self._fault("reachability_remove")
        for index in self._reachability_indexes.values():
            if index.covers(rel_type):
                index.remove_edge(rel_id)

    # ------------------------------------------------------------------
    # Mutation
    #
    # Every public mutator is "bump the version, then apply" — the
    # unversioned ``_raw`` halves are shared with :class:`StoreTransaction`,
    # which batches the bump into a single commit.
    # ------------------------------------------------------------------

    def write_transaction(self, record_undo=False):
        """The statement-level entry point to the mutation kernel.

        Outside a session scope this is one :class:`StoreTransaction`
        per statement, as before (``record_undo=True`` additionally
        keeps an undo log so the statement can roll back, e.g. on
        cancellation).  Inside a session scope, all statements share
        one spanning, always-recording transaction and receive
        :class:`_StatementTransaction` facades over it; while that
        transaction is open, writes outside the session are refused.
        """
        scope = self._session_scope
        if scope is not None:
            return _StatementTransaction(self._session_transaction(scope))
        if self._active_transaction is not None:
            raise TransactionError(
                "a session transaction is open on this graph; commit or "
                "roll it back before writing outside the session"
            )
        return StoreTransaction(self, record_undo=record_undo)

    def _session_transaction(self, owner):
        """The session's spanning transaction, opened on first write."""
        transaction = self._active_transaction
        if transaction is None:
            transaction = StoreTransaction(self, record_undo=True)
            self._active_transaction = transaction
            self._transaction_owner = owner
        elif self._transaction_owner is not owner:
            raise TransactionError(
                "another session holds this graph's write transaction"
            )
        return transaction

    # -- session scopes (set around each statement a session executes) ------

    def enter_session_scope(self, owner):
        if self._session_scope is not None:
            raise TransactionError("nested session scopes are not supported")
        if (
            self._active_transaction is not None
            and self._transaction_owner is not owner
        ):
            raise TransactionError(
                "another session holds this graph's write transaction"
            )
        self._session_scope = owner

    def exit_session_scope(self):
        self._session_scope = None

    def active_session_transaction(self, owner):
        """The spanning transaction ``owner`` opened, if any."""
        if (
            self._active_transaction is not None
            and self._transaction_owner is owner
        ):
            return self._active_transaction
        return None

    # -- version pins (copy-on-write snapshot substrate) --------------------

    def pin_version(self):
        """Freeze the current version for snapshot readers.

        Cheap: the pin starts empty and fills with pre-images as later
        mutations touch entities (see :class:`VersionPin`).  Pinning
        mid-way through an uncommitted session transaction is refused —
        a snapshot must correspond to a *committed* version.
        """
        transaction = self._active_transaction
        if transaction is not None and transaction.changed:
            raise TransactionError(
                "cannot pin a snapshot while uncommitted session changes "
                "exist; commit or roll back first"
            )
        pin = VersionPin(self)
        self._pins.append(pin)
        return pin

    def release_pin(self, pin):
        """Drop one reference; the pin unregisters at zero."""
        pin.refs -= 1
        if pin.refs <= 0:
            try:
                self._pins.remove(pin)
            except ValueError:
                pass  # already rebased onto a frozen copy by restore_from

    def _preserve_node(self, node_id):
        for pin in self._pins:
            pin.preserve_node(self, node_id)

    def _preserve_rel(self, rel_id):
        for pin in self._pins:
            pin.preserve_rel(self, rel_id)

    def _preserve_adjacency(self, node_id):
        for pin in self._pins:
            pin.preserve_adjacency(self, node_id)

    def _preserve_label(self, label):
        for pin in self._pins:
            pin.preserve_label(self, label)

    def _preserve_type(self, rel_type):
        for pin in self._pins:
            pin.preserve_type(self, rel_type)

    def _preserve_entity(self, entity_id):
        if isinstance(entity_id, NodeId):
            self._preserve_node(entity_id)
        else:
            self._preserve_rel(entity_id)

    # -- fault injection -----------------------------------------------------

    def install_fault_injector(self, injector):
        """Install (or with None, remove) the injector; returns the old."""
        previous = self._fault_injector
        self._fault_injector = injector
        return previous

    def _fault(self, site):
        injector = self._fault_injector
        if injector is not None:
            injector.trip(site)

    # -- undo application (rollback replays these in reverse) ----------------

    def _apply_undo(self, entry):
        """Apply one inverse operation recorded by a raw mutator.

        Every inverse is idempotent-per-state (guarded membership tests,
        idempotent index adds/removes), so replaying from any interior
        crash point — where the forward mutation may have half-applied —
        still converges on the pre-transaction state.
        """
        op = entry[0]
        if op == "set_prop":
            self._set_property_raw(entry[1], entry[2], entry[3])
        elif op == "create_node":
            if entry[1] in self._node_labels:
                self._delete_node_raw(entry[1], detach=True)
        elif op == "create_rel":
            if entry[1] in self._rel_endpoints:
                self._delete_relationship_raw(entry[1])
        elif op == "create_nodes":
            for node in reversed(entry[1]):
                if node in self._node_labels:
                    self._delete_node_raw(node, detach=True)
        elif op == "create_rels":
            for rel in reversed(entry[1]):
                if rel in self._rel_endpoints:
                    self._delete_relationship_raw(rel)
        elif op == "delete_rel":
            self._undo_delete_relationship(*entry[1:])
        elif op == "delete_node":
            self._undo_delete_node(*entry[1:])
        elif op == "replace_props":
            self._replace_properties_raw(entry[1], entry[2])
        elif op == "add_label":
            if entry[3]:  # only if the forward add actually added it
                self._remove_label_raw(entry[1], entry[2])
        elif op == "remove_label":
            if entry[3]:  # only if the label was actually present
                self._add_label_raw(entry[1], entry[2])
        else:  # pragma: no cover — entries are produced in this module only
            raise AssertionError("unknown undo entry %r" % (entry,))

    def _undo_delete_node(self, node_id, labels, properties):
        """Resurrect a deleted node (its relationships resurrect first —
        their undo entries were recorded earlier and replay before this
        one in reverse order — so only node state needs restoring)."""
        self._node_labels[node_id] = set(labels)
        self._node_properties[node_id] = properties
        for label in labels:
            self._label_index.setdefault(label, set()).add(node_id)
        if self._indexes_by_label:
            # Blanket re-add: index adds are idempotent per (node, value),
            # so entries the crashed delete never removed are skipped.
            self._index_node_created(node_id, labels, properties)

    def _undo_delete_relationship(self, rel_id, source, target, rel_type, properties):
        self._rel_endpoints[rel_id] = (source, target)
        self._rel_types[rel_id] = rel_type
        self._rel_properties[rel_id] = properties
        _insort_rel(self._outgoing.setdefault(source, []), rel_id)
        _insort_rel(self._incoming.setdefault(target, []), rel_id)
        _insort_rel(
            self._outgoing_by_type.setdefault(source, {}).setdefault(
                rel_type, []
            ),
            rel_id,
        )
        _insort_rel(
            self._incoming_by_type.setdefault(target, {}).setdefault(
                rel_type, []
            ),
            rel_id,
        )
        self._type_index.setdefault(rel_type, set()).add(rel_id)
        if self._reachability_indexes:
            # Resurrection bypasses _create_relationship_raw; add_edge is
            # idempotent per rel id, so crash-replay converges here too.
            self._reachability_rel_created(rel_id, source, target, rel_type)

    def create_node(self, labels=(), properties=None):
        """Add a node; returns its fresh :class:`NodeId`."""
        self._version += 1
        return self._create_node_raw(labels, properties)

    def _create_node_raw(self, labels, properties):
        # Adjacency entries are created lazily on the first incident
        # relationship (readers all .get() with a default), so a bulk
        # node load pays two dict inserts per node, not six.
        # Properties validate before anything lands: a rejected value
        # must not leave a phantom half-node behind.
        self._fault("create_node")
        validated = _validated_properties(properties)
        node_id = NodeId(self._next_node_id)
        self._next_node_id += 1
        label_set = set(labels)
        if self._pins:
            self._preserve_node(node_id)
            for label in label_set:
                self._preserve_label(label)
        if self._undo is not None:
            self._undo.append(("create_node", node_id))
        self._node_labels[node_id] = label_set
        self._node_properties[node_id] = validated
        for label in label_set:
            self._label_index.setdefault(label, set()).add(node_id)
            self._note_scan_insert("label", label, node_id)
        if self._indexes_by_label:
            self._index_node_created(node_id, label_set, validated)
        return node_id

    def _create_nodes_bulk_raw(self, labels, properties_list, ids):
        """Create one node per property dict, sharing a label tuple.

        The change buffer's bulk flush: per-node call layers and the
        per-create label-index/scan-cache maintenance are hoisted out of
        the loop (index sets take one ``update``, warm scan lists one
        ``extend``).  Ids are allocated in list order, exactly as the
        per-row path would.  A validation failure mid-batch leaves the
        nodes before it fully created — properties validate before that
        node's entries land, the id counter is written back per node,
        and the ``finally`` indexes whatever prefix exists — matching
        the per-row path's partial-failure state.  ``ids`` is the
        caller's output list, appended in creation order even when a
        later row raises, so the transaction's accounting stays exact.
        """
        self._fault("create_nodes")
        node_labels = self._node_labels
        node_properties = self._node_properties
        append = ids.append
        pins = self._pins
        if pins:
            for label in dict.fromkeys(labels):
                self._preserve_label(label)
        if self._undo is not None:
            # ``ids`` is appended in creation order even when a later row
            # raises, so the one entry covers exactly the created prefix.
            self._undo.append(("create_nodes", ids))
        indexed = None
        if self._indexes_by_label:
            indexed = [
                index
                for label in dict.fromkeys(labels)
                for index in self._indexes_for(label).values()
            ]
        # With no fault injector armed the per-node index maintenance is
        # deferred into one bulk pass per index (in the ``finally``, so a
        # mid-batch validation failure still indexes exactly the created
        # prefix — the same state the interleaved path leaves).  With an
        # injector armed, maintenance stays interleaved so ``index_add``
        # trips between individual creates, as the fault tests assume.
        deferred = None
        if indexed and self._fault_injector is None:
            deferred = []
        try:
            for properties in properties_list:
                validated = _validated_properties(properties)  # may raise
                node_id = NodeId(self._next_node_id)
                self._next_node_id += 1
                if pins:
                    self._preserve_node(node_id)
                node_labels[node_id] = set(labels)
                node_properties[node_id] = validated
                append(node_id)
                if indexed:
                    if deferred is not None:
                        deferred.append((node_id, validated))
                    else:
                        self._fault("index_add")
                        for index in indexed:
                            index.update(node_id, validated)
        finally:
            if deferred:
                for index in indexed:
                    index.update_bulk(deferred)
            for label in labels:
                self._label_index.setdefault(label, set()).update(ids)
                cached = self._scan_cache.get(("label", label))
                if cached is not None:
                    if cached[0] == self._version:
                        cached[1].extend(ids)
                    else:
                        del self._scan_cache[("label", label)]
        return ids

    def create_relationship(self, src, tgt, rel_type, properties=None):
        """Add a relationship from ``src`` to ``tgt``; returns its id."""
        self._version += 1
        return self._create_relationship_raw(src, tgt, rel_type, properties)

    def _create_relationship_raw(self, src, tgt, rel_type, properties):
        self._fault("create_relationship")
        if src not in self._node_labels:
            raise EntityNotFound("source node %r not in graph" % (src,))
        if tgt not in self._node_labels:
            raise EntityNotFound("target node %r not in graph" % (tgt,))
        if not isinstance(rel_type, str) or not rel_type:
            raise ValueError("relationship type must be a non-empty string")
        validated = _validated_properties(properties)
        rel_id = RelId(self._next_rel_id)
        self._next_rel_id += 1
        if self._pins:
            self._preserve_rel(rel_id)
            self._preserve_adjacency(src)
            self._preserve_adjacency(tgt)
            self._preserve_type(rel_type)
        if self._undo is not None:
            self._undo.append(("create_rel", rel_id))
        self._rel_endpoints[rel_id] = (src, tgt)
        self._rel_types[rel_id] = rel_type
        self._rel_properties[rel_id] = validated
        self._outgoing.setdefault(src, []).append(rel_id)
        self._incoming.setdefault(tgt, []).append(rel_id)
        self._outgoing_by_type.setdefault(src, {}).setdefault(
            rel_type, []
        ).append(rel_id)
        self._incoming_by_type.setdefault(tgt, {}).setdefault(
            rel_type, []
        ).append(rel_id)
        self._type_index.setdefault(rel_type, set()).add(rel_id)
        self._note_scan_insert("type", rel_type, rel_id)
        if self._reachability_indexes:
            self._reachability_rel_created(rel_id, src, tgt, rel_type)
        return rel_id

    def _create_rels_bulk_raw(self, rel_type, triples, ids):
        """Create one relationship per ``(src, tgt, props)``, sharing a type.

        The bulk-ingest counterpart of :meth:`_create_nodes_bulk_raw`:
        per-call layers and the per-create type-index/scan-cache
        maintenance are hoisted out of the loop (the type's index set
        takes one ``update``, a warm scan list one ``extend``), and the
        covering reachability indexes are resolved once instead of per
        edge.  Ids are allocated in triple order, exactly as the per-row
        path would.  A validation or endpoint failure mid-batch leaves
        the relationships before it fully created (the ``finally``
        indexes whatever prefix exists), matching the per-row path's
        partial-failure state; ``ids`` is the caller's output list,
        appended in creation order even when a later triple raises, so
        the single undo entry covers exactly the created prefix.
        """
        self._fault("create_rels")
        if not isinstance(rel_type, str) or not rel_type:
            raise ValueError("relationship type must be a non-empty string")
        node_labels = self._node_labels
        rel_endpoints = self._rel_endpoints
        rel_types = self._rel_types
        rel_properties = self._rel_properties
        outgoing = self._outgoing
        incoming = self._incoming
        outgoing_by_type = self._outgoing_by_type
        incoming_by_type = self._incoming_by_type
        append = ids.append
        pins = self._pins
        if pins:
            self._preserve_type(rel_type)
        if self._undo is not None:
            self._undo.append(("create_rels", ids))
        covering = [
            index
            for index in self._reachability_indexes.values()
            if index.covers(rel_type)
        ]
        try:
            for src, tgt, properties in triples:
                if src not in node_labels:
                    raise EntityNotFound(
                        "source node %r not in graph" % (src,)
                    )
                if tgt not in node_labels:
                    raise EntityNotFound(
                        "target node %r not in graph" % (tgt,)
                    )
                validated = _validated_properties(properties)  # may raise
                rel_id = RelId(self._next_rel_id)
                self._next_rel_id += 1
                if pins:
                    self._preserve_rel(rel_id)
                    self._preserve_adjacency(src)
                    self._preserve_adjacency(tgt)
                rel_endpoints[rel_id] = (src, tgt)
                rel_types[rel_id] = rel_type
                rel_properties[rel_id] = validated
                outgoing.setdefault(src, []).append(rel_id)
                incoming.setdefault(tgt, []).append(rel_id)
                outgoing_by_type.setdefault(src, {}).setdefault(
                    rel_type, []
                ).append(rel_id)
                incoming_by_type.setdefault(tgt, {}).setdefault(
                    rel_type, []
                ).append(rel_id)
                append(rel_id)
                if covering:
                    self._fault("reachability_add")
                    for index in covering:
                        index.add_edge(rel_id, src, tgt)
        finally:
            self._type_index.setdefault(rel_type, set()).update(ids)
            cached = self._scan_cache.get(("type", rel_type))
            if cached is not None:
                if cached[0] == self._version:
                    cached[1].extend(ids)
                else:
                    del self._scan_cache[("type", rel_type)]
        return ids

    def adopt_node(self, node_id, labels=(), properties=None):
        """Insert a node under a *caller-chosen* id.

        Used by Cypher 10 graph projections, which must preserve node
        identity across graphs so composed queries can re-match the same
        nodes in another graph (paper Section 6).  The internal id
        counter is bumped past the adopted id, so later ``create_node``
        calls never collide.
        """
        self._version += 1
        if not isinstance(node_id, NodeId):
            raise TypeError("adopt_node expects a NodeId, got %r" % (node_id,))
        if node_id in self._node_labels:
            raise ValueError("node %r already exists" % (node_id,))
        validated = _validated_properties(properties)
        label_set = set(labels)
        if self._pins:
            self._preserve_node(node_id)
            for label in label_set:
                self._preserve_label(label)
        self._node_labels[node_id] = label_set
        self._node_properties[node_id] = validated
        self._outgoing[node_id] = []
        self._incoming[node_id] = []
        self._outgoing_by_type[node_id] = {}
        self._incoming_by_type[node_id] = {}
        for label in label_set:
            self._label_index.setdefault(label, set()).add(node_id)
        if self._indexes_by_label:
            self._index_node_created(node_id, label_set, validated)
        self._next_node_id = max(self._next_node_id, node_id.value + 1)
        return node_id

    def delete_node(self, node_id, detach=False):
        """Remove a node; with ``detach`` also removes incident edges.

        Without ``detach``, deleting a node that still has relationships
        raises :class:`ConstraintViolation` (dangling edges would break the
        well-formedness of src/tgt).
        """
        self._version += 1
        self._delete_node_raw(node_id, detach)

    def _delete_node_raw(self, node_id, detach):
        self._fault("delete_node")
        if node_id not in self._node_labels:
            raise EntityNotFound("no node %r in graph" % (node_id,))
        outgoing = self._outgoing.get(node_id, ())
        outgoing_set = set(outgoing)
        incident = list(outgoing) + [
            rel
            for rel in self._incoming.get(node_id, ())
            if rel not in outgoing_set
        ]
        if incident and not detach:
            raise ConstraintViolation(
                "cannot delete node %r: it still has %d relationship(s); "
                "use DETACH DELETE" % (node_id, len(incident))
            )
        for rel in incident:
            if rel in self._rel_endpoints:
                self._delete_relationship_raw(rel)
        labels = self._node_labels[node_id]
        properties = self._node_properties[node_id]
        if self._pins:
            self._preserve_node(node_id)
            for label in labels:
                self._preserve_label(label)
        if self._undo is not None:
            # ``properties`` transfers ownership: the map is deleted from
            # the store below, so the entry can hold it un-copied.
            self._undo.append(("delete_node", node_id, set(labels), properties))
        if self._indexes_by_label:
            self._index_node_deleted(node_id, labels, properties)
        for label in labels:
            self._label_index[label].discard(node_id)
            self._scan_cache.pop(("label", label), None)
        del self._node_labels[node_id]
        del self._node_properties[node_id]
        self._outgoing.pop(node_id, None)
        self._incoming.pop(node_id, None)
        self._outgoing_by_type.pop(node_id, None)
        self._incoming_by_type.pop(node_id, None)

    def delete_relationship(self, rel_id):
        self._version += 1
        self._delete_relationship_raw(rel_id)

    def _delete_relationship_raw(self, rel_id):
        self._fault("delete_relationship")
        if rel_id not in self._rel_endpoints:
            raise EntityNotFound("no relationship %r in graph" % (rel_id,))
        source, target = self._rel_endpoints[rel_id]
        rel_type = self._rel_types[rel_id]
        if self._pins:
            self._preserve_rel(rel_id)
            self._preserve_adjacency(source)
            self._preserve_adjacency(target)
            self._preserve_type(rel_type)
        if self._undo is not None:
            self._undo.append((
                "delete_rel",
                rel_id,
                source,
                target,
                rel_type,
                self._rel_properties[rel_id],
            ))
        self._outgoing[source].remove(rel_id)
        self._incoming[target].remove(rel_id)
        self._remove_from_segment(self._outgoing_by_type, source, rel_type, rel_id)
        self._remove_from_segment(self._incoming_by_type, target, rel_type, rel_id)
        self._type_index[rel_type].discard(rel_id)
        self._scan_cache.pop(("type", rel_type), None)
        del self._rel_endpoints[rel_id]
        del self._rel_types[rel_id]
        del self._rel_properties[rel_id]
        if self._reachability_indexes:
            self._reachability_rel_deleted(rel_id, rel_type)

    def set_property(self, entity_id, key, value):
        """Set ι(entity, key); setting to null removes the property."""
        self._version += 1
        self._set_property_raw(entity_id, key, value)

    def _set_property_raw(self, entity_id, key, value):
        self._fault("set_property")
        props = self._property_map(entity_id)
        track = self._indexes_by_label and type(entity_id) is NodeId
        record = self._undo is not None
        old = props.get(key) if track or record else None
        if self._pins:
            self._preserve_entity(entity_id)
        if record:
            # Stored maps never hold None, so old None ⇔ key was absent
            # and the inverse set_prop(None) removes it again.
            self._undo.append(("set_prop", entity_id, key, old))
        if value is None:
            props.pop(key, None)
        else:
            if not is_cypher_value(value):
                raise ValueError("%r is not a storable value" % (value,))
            props[key] = value
        if track:
            self._index_property_changed(entity_id, key, old, value)

    def remove_property(self, entity_id, key):
        self._version += 1
        self._remove_property_raw(entity_id, key)

    def _remove_property_raw(self, entity_id, key):
        self._fault("remove_property")
        props = self._property_map(entity_id)
        if self._pins:
            self._preserve_entity(entity_id)
        if self._undo is not None:
            self._undo.append(("set_prop", entity_id, key, props.get(key)))
        old = props.pop(key, None)
        if (
            old is not None
            and self._indexes_by_label
            and type(entity_id) is NodeId
        ):
            self._index_property_changed(entity_id, key, old, None)

    def replace_properties(self, entity_id, properties):
        """SET n = {map}: replace the whole property map."""
        self._version += 1
        self._replace_properties_raw(entity_id, properties)

    def _replace_properties_raw(self, entity_id, properties):
        self._fault("replace_properties")
        props = self._property_map(entity_id)
        # Validate before touching anything: a rejected value must leave
        # both the property map and the index entries untouched (an index
        # desynchronised from a half-cleared map could never be repaired —
        # the old values it holds would be gone).
        validated = _validated_properties(properties)
        track = self._indexes_by_label and type(entity_id) is NodeId
        record = self._undo is not None
        old = dict(props) if track or record else None
        if self._pins:
            self._preserve_entity(entity_id)
        if record:
            self._undo.append(("replace_props", entity_id, old))
        props.clear()
        props.update(validated)
        if track:
            for key in old.keys() | validated.keys():
                self._index_property_changed(
                    entity_id, key, old.get(key), validated.get(key)
                )

    def merge_properties(self, entity_id, properties):
        """SET n += {map}: upsert keys; null values remove keys."""
        self._version += 1
        self._merge_properties_raw(entity_id, properties)

    def _merge_properties_raw(self, entity_id, properties):
        self._fault("merge_properties")
        props = self._property_map(entity_id)
        track = self._indexes_by_label and type(entity_id) is NodeId
        record = self._undo is not None
        if self._pins:
            self._preserve_entity(entity_id)
        for key, value in (properties or {}).items():
            old = props.get(key) if track or record else None
            if record:
                self._undo.append(("set_prop", entity_id, key, old))
            if value is None:
                props.pop(key, None)
            else:
                if not is_cypher_value(value):
                    raise ValueError("%r is not a storable value" % (value,))
                props[key] = value
            if track:
                self._index_property_changed(entity_id, key, old, value)

    def add_label(self, node_id, label):
        self._version += 1
        self._add_label_raw(node_id, label)

    def _add_label_raw(self, node_id, label):
        self._fault("add_label")
        if node_id not in self._node_labels:
            raise EntityNotFound("no node %r in graph" % (node_id,))
        fresh = label not in self._node_labels[node_id]
        if self._pins:
            self._preserve_node(node_id)
            self._preserve_label(label)
        if self._undo is not None:
            self._undo.append(("add_label", node_id, label, fresh))
        self._node_labels[node_id].add(label)
        self._label_index.setdefault(label, set()).add(node_id)
        self._scan_cache.pop(("label", label), None)
        if fresh and self._indexes_by_label:
            self._index_label_added(node_id, label)

    def remove_label(self, node_id, label):
        self._version += 1
        self._remove_label_raw(node_id, label)

    def _remove_label_raw(self, node_id, label):
        self._fault("remove_label")
        if node_id not in self._node_labels:
            raise EntityNotFound("no node %r in graph" % (node_id,))
        present = label in self._node_labels[node_id]
        if self._pins:
            self._preserve_node(node_id)
            self._preserve_label(label)
        if self._undo is not None:
            self._undo.append(("remove_label", node_id, label, present))
        self._node_labels[node_id].discard(label)
        if label in self._label_index:
            self._label_index[label].discard(node_id)
        self._scan_cache.pop(("label", label), None)
        if present and self._indexes_by_label:
            self._index_label_removed(node_id, label)

    # ------------------------------------------------------------------
    # Whole-graph operations
    # ------------------------------------------------------------------

    @property
    def version(self):
        """Monotonic mutation counter; statistics caches key on it."""
        return self._version

    def restore_from(self, snapshot):
        """Replace this graph's entire contents with ``snapshot``'s.

        Used for transactional rollback (e.g. schema enforcement undoing
        a violating update) while keeping this object's identity, so
        engines and catalogs holding references stay valid.

        Active version pins are **rebased** onto a frozen copy of the
        pre-restore state: their copy-on-write deltas reference that
        state, so layering them over the replaced live structures would
        show a chimera.  Refused while a session transaction is open —
        its undo log would dangle into the replaced structures.
        """
        if self._active_transaction is not None:
            raise TransactionError(
                "cannot restore a graph while a session transaction is open"
            )
        donor = snapshot.copy()
        if self._pins:
            frozen = self.copy()
            for pin in self._pins:
                pin.base = frozen
            self._pins = []
        self._next_node_id = donor._next_node_id
        self._next_rel_id = donor._next_rel_id
        self._node_labels = donor._node_labels
        self._node_properties = donor._node_properties
        self._rel_endpoints = donor._rel_endpoints
        self._rel_types = donor._rel_types
        self._rel_properties = donor._rel_properties
        self._outgoing = donor._outgoing
        self._incoming = donor._incoming
        self._outgoing_by_type = donor._outgoing_by_type
        self._incoming_by_type = donor._incoming_by_type
        self._label_index = donor._label_index
        self._type_index = donor._type_index
        self._indexes_by_label = donor._indexes_by_label
        self._reachability_indexes = donor._reachability_indexes
        self._scan_cache = {}
        self._version += 1

    def copy(self):
        """An independent deep copy (used by MERGE rollback and tests)."""
        clone = MemoryGraph()
        clone._version = self._version
        clone._next_node_id = self._next_node_id
        clone._next_rel_id = self._next_rel_id
        clone._node_labels = {n: set(ls) for n, ls in self._node_labels.items()}
        clone._node_properties = {
            n: _deep_copy_value(ps) for n, ps in self._node_properties.items()
        }
        clone._rel_endpoints = dict(self._rel_endpoints)
        clone._rel_types = dict(self._rel_types)
        clone._rel_properties = {
            r: _deep_copy_value(ps) for r, ps in self._rel_properties.items()
        }
        clone._outgoing = {n: list(rs) for n, rs in self._outgoing.items()}
        clone._incoming = {n: list(rs) for n, rs in self._incoming.items()}
        clone._outgoing_by_type = {
            n: {t: list(rs) for t, rs in segments.items()}
            for n, segments in self._outgoing_by_type.items()
        }
        clone._incoming_by_type = {
            n: {t: list(rs) for t, rs in segments.items()}
            for n, segments in self._incoming_by_type.items()
        }
        clone._label_index = {l: set(ns) for l, ns in self._label_index.items()}
        clone._type_index = {t: set(rs) for t, rs in self._type_index.items()}
        # Rebuild the property indexes from the cloned data: the clone's
        # contents equal the originals' by construction, and the version
        # bumps create_index applied are undone by restamping below.
        for label, keyed in self._indexes_by_label.items():
            for key in keyed:
                clone.create_index(label, key)
        for key in self._reachability_indexes:
            clone.create_reachability_index(key)
        clone._version = self._version
        return clone

    def __repr__(self):
        return "MemoryGraph(nodes={}, relationships={})".format(
            self.node_count(), self.relationship_count()
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _typed_adjacency(self, segmented, node_id, types):
        """Iterate the union of type segments, in relationship-id order."""
        by_type = segmented.get(node_id)
        if not by_type:
            return iter(())
        # dict.fromkeys dedupes a caller-supplied list of types (the base
        # interface accepts any container) without disturbing set callers.
        segments = [
            by_type[t] for t in dict.fromkeys(types) if t in by_type
        ]
        if not segments:
            return iter(())
        if len(segments) == 1:
            return iter(segments[0])
        merged = [rel for segment in segments for rel in segment]
        merged.sort(key=_id_value)
        return iter(merged)

    @staticmethod
    def _remove_from_segment(segmented, node_id, rel_type, rel_id):
        segments = segmented[node_id]
        segment = segments[rel_type]
        segment.remove(rel_id)
        if not segment:
            del segments[rel_type]

    def _note_scan_insert(self, kind, name, entity_id):
        """Keep a warm scan list valid across an in-transaction create.

        Ids are allocated monotonically, so a freshly created entity
        always sorts after everything in the cached list — appending
        preserves the order.  Without this, every create inside a write
        transaction (where the version stays put) would force the next
        label/type scan to re-sort from the inverted index, which turns
        MERGE upserts quadratic.  Deletes and label changes still evict
        (removal can hit the middle of the list).
        """
        cached = self._scan_cache.get((kind, name))
        if cached is None:
            return
        if cached[0] == self._version:
            cached[1].append(entity_id)
        else:
            del self._scan_cache[(kind, name)]

    def _cached_scan(self, kind, name):
        """Sorted id list for a label/type scan, memoised per version."""
        key = (kind, name)
        cached = self._scan_cache.get(key)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        index = self._label_index if kind == "label" else self._type_index
        ids = sorted(index.get(name, ()), key=_id_value)
        self._scan_cache[key] = (self._version, ids)
        return ids

    def _endpoints(self, rel_id):
        try:
            return self._rel_endpoints[rel_id]
        except KeyError:
            raise EntityNotFound("no relationship %r in graph" % (rel_id,))

    def _property_map(self, entity_id):
        if isinstance(entity_id, NodeId):
            try:
                return self._node_properties[entity_id]
            except KeyError:
                raise EntityNotFound("no node %r in graph" % (entity_id,))
        if isinstance(entity_id, RelId):
            try:
                return self._rel_properties[entity_id]
            except KeyError:
                raise EntityNotFound(
                    "no relationship %r in graph" % (entity_id,)
                )
        raise TypeError("expected a NodeId or RelId, got %r" % (entity_id,))


class StoreTransaction:
    """The single mutation kernel: a change-buffered write transaction.

    Both execution paths drive one of these — the planner's physical
    write operators open one per statement, the reference executor one
    per update clause — so Cypher's update semantics lives in exactly
    one place:

    * **creates and property/label changes** land in the live structures
      immediately (snapshot isolation against the statement's own reads
      is the ``Eager`` barrier's job), but the store version stays put;
    * **deletes** are buffered with deferred visibility: the entities
      remain readable while the clause is still collecting them, and
      :meth:`flush` then removes relationships before nodes, raising
      :class:`ConstraintViolation` for a non-DETACH delete of a node
      whose degree is still positive *after* the same flush's
      relationship deletes — the reference executor's two-phase order;
    * **commit** flushes and bumps the version exactly once (when
      anything changed), so statistics snapshots and scan caches are
      invalidated per statement, not per mutation.

    :meth:`abandon` finalises after an error: already-applied changes
    stay (matching the interpreter's partial-failure behaviour — the
    engine's schema snapshot handles real rollback) and the version is
    still bumped so no cache survives a half-applied statement.
    """

    __slots__ = (
        "_graph",
        "_pending_rel_deletes",
        "_pending_node_deletes",
        "_closed",
        "_undo",
        "_begin_counters",
        "nodes_created",
        "relationships_created",
        "nodes_deleted",
        "relationships_deleted",
        "properties_set",
        "labels_changed",
    )

    def __init__(self, graph, record_undo=False):
        self._graph = graph
        self._pending_rel_deletes = {}   # RelId -> None (an ordered set)
        self._pending_node_deletes = {}  # NodeId -> bool (detach)
        self._closed = False
        self._undo = [] if record_undo else None
        self._begin_counters = (graph._next_node_id, graph._next_rel_id)
        if record_undo:
            graph._undo = self._undo
        self.nodes_created = 0
        self.relationships_created = 0
        self.nodes_deleted = 0
        self.relationships_deleted = 0
        self.properties_set = 0
        self.labels_changed = 0

    # -- creates (immediate, unversioned) -----------------------------------

    def create_node(self, labels=(), properties=None):
        node = self._graph._create_node_raw(labels, properties)
        self.nodes_created += 1
        return node

    def create_nodes(self, labels, properties_list):
        """Bulk-create one node per property dict; returns ids in order."""
        ids = []
        try:
            self._graph._create_nodes_bulk_raw(labels, properties_list, ids)
        finally:
            self.nodes_created += len(ids)
        return ids

    def create_relationship(self, src, tgt, rel_type, properties=None):
        rel = self._graph._create_relationship_raw(
            src, tgt, rel_type, properties
        )
        self.relationships_created += 1
        return rel

    def create_relationships(self, rel_type, triples):
        """Bulk-create one relationship per ``(src, tgt, props)`` triple."""
        ids = []
        try:
            self._graph._create_rels_bulk_raw(rel_type, triples, ids)
        finally:
            self.relationships_created += len(ids)
        return ids

    # -- property and label changes (immediate, unversioned) ----------------

    def set_property(self, entity_id, key, value):
        self._graph._set_property_raw(entity_id, key, value)
        self.properties_set += 1

    def remove_property(self, entity_id, key):
        self._graph._remove_property_raw(entity_id, key)
        self.properties_set += 1

    def replace_properties(self, entity_id, properties):
        self._graph._replace_properties_raw(entity_id, properties)
        self.properties_set += 1

    def merge_properties(self, entity_id, properties):
        self._graph._merge_properties_raw(entity_id, properties)
        self.properties_set += 1

    def add_label(self, node_id, label):
        self._graph._add_label_raw(node_id, label)
        self.labels_changed += 1

    def remove_label(self, node_id, label):
        self._graph._remove_label_raw(node_id, label)
        self.labels_changed += 1

    # -- deletes (buffered until flush) --------------------------------------

    def delete_node(self, node_id, detach=False):
        """Buffer a node delete; ``detach`` upgrades an earlier buffering."""
        self._pending_node_deletes[node_id] = (
            detach or self._pending_node_deletes.get(node_id, False)
        )

    def delete_relationship(self, rel_id):
        self._pending_rel_deletes[rel_id] = None

    def delete_value(self, value, detach=False):
        """Buffer everything a DELETE expression value denotes.

        Nodes, relationships, paths (all their elements) and lists
        (recursively); null is a no-op; anything else is a type error —
        the reference executor's collection rules.
        """
        if value is None:
            return
        if isinstance(value, NodeId):
            self.delete_node(value, detach)
        elif isinstance(value, RelId):
            self.delete_relationship(value)
        elif isinstance(value, Path):
            for rel in value.relationships:
                self.delete_relationship(rel)
            for node in value.nodes:
                self.delete_node(node, detach)
        elif isinstance(value, list):
            for item in value:
                self.delete_value(item, detach)
        else:
            raise CypherTypeError("cannot DELETE %r" % (value,))

    def flush(self):
        """Apply the buffered deletes: relationships first, then nodes.

        Double deletes (the same entity collected from several rows, or
        a relationship both named and implied by a DETACH) collapse
        silently; a non-DETACH node delete checks the degree only after
        this flush's relationship deletes, so deleting a node together
        with all its relationships needs no DETACH.
        """
        graph = self._graph
        rels, self._pending_rel_deletes = self._pending_rel_deletes, {}
        nodes, self._pending_node_deletes = self._pending_node_deletes, {}
        for rel in rels:
            if graph.has_relationship(rel):
                graph._delete_relationship_raw(rel)
                self.relationships_deleted += 1
        for node, detach in nodes.items():
            if not graph.has_node(node):
                continue
            if not detach and graph.degree(node) > 0:
                raise ConstraintViolation(
                    "cannot delete node %r: it still has relationships; "
                    "use DETACH DELETE" % (node,)
                )
            incident = set(graph._outgoing.get(node, ()))
            incident.update(graph._incoming.get(node, ()))
            self.relationships_deleted += len(incident)
            graph._delete_node_raw(node, detach=True)
            self.nodes_deleted += 1

    # -- lifecycle -----------------------------------------------------------

    @property
    def changed(self):
        """True once any mutation has been applied to the store."""
        return bool(
            self.nodes_created
            or self.relationships_created
            or self.nodes_deleted
            or self.relationships_deleted
            or self.properties_set
            or self.labels_changed
        )

    @property
    def closed(self):
        return self._closed

    def commit(self):
        """Flush pending deletes, then bump the version exactly once."""
        self._graph._fault("commit_flush")
        self.flush()
        self._finalize()
        return self

    def abandon(self):
        """Finalise after an error: drop pending deletes, keep the bump."""
        self._pending_rel_deletes = {}
        self._pending_node_deletes = {}
        self._finalize()
        return self

    def drop_pending(self):
        """Discard buffered deletes without closing (statement abandon)."""
        self._pending_rel_deletes = {}
        self._pending_node_deletes = {}
        return self

    def rollback(self):
        """Undo every applied change and close.

        Replays the undo log in reverse with recording and fault
        injection suspended, restores the id counters, and clears the
        scan caches.  No version bump: the pre-transaction version
        still describes the restored contents exactly, so statistics
        snapshots keyed on it stay *correct*, not just safe.
        Requires ``record_undo=True`` at open.
        """
        if self._closed:
            return self
        if self._undo is None:
            raise TransactionError(
                "transaction was opened without undo recording; "
                "it cannot roll back"
            )
        graph = self._graph
        self._pending_rel_deletes = {}
        self._pending_node_deletes = {}
        self._replay_undo(0)
        graph._next_node_id, graph._next_rel_id = self._begin_counters
        graph._scan_cache.clear()
        self._closed = True
        if graph._undo is self._undo:
            graph._undo = None
        if graph._active_transaction is self:
            graph._active_transaction = None
            graph._transaction_owner = None
        return self

    def rollback_statement(self, mark, counters):
        """Undo only the entries recorded past ``mark`` (one statement).

        Used by :class:`_StatementTransaction` when a single statement
        inside a session is cancelled: that statement's changes unwind
        atomically while the session's earlier statements stay applied.
        """
        if self._undo is None:
            raise TransactionError(
                "transaction was opened without undo recording"
            )
        graph = self._graph
        self._pending_rel_deletes = {}
        self._pending_node_deletes = {}
        self._replay_undo(mark)
        graph._next_node_id, graph._next_rel_id = counters
        graph._scan_cache.clear()
        return self

    def _replay_undo(self, mark):
        graph = self._graph
        undo = self._undo
        graph._undo = None  # inverse ops must not re-record
        injector = graph._fault_injector
        graph._fault_injector = None  # nor re-crash mid-recovery
        try:
            while len(undo) > mark:
                graph._apply_undo(undo.pop())
        finally:
            graph._fault_injector = injector
            if not self._closed:
                graph._undo = undo

    def _finalize(self):
        if self._closed:
            return
        self._closed = True
        graph = self._graph
        if self._undo is not None and graph._undo is self._undo:
            graph._undo = None
        if graph._active_transaction is self:
            graph._active_transaction = None
            graph._transaction_owner = None
        if self.changed:
            graph._version += 1
            graph._scan_cache.clear()

    def __repr__(self):
        return (
            "StoreTransaction(+%dn +%dr -%dn -%dr props=%d labels=%d%s)"
            % (
                self.nodes_created,
                self.relationships_created,
                self.nodes_deleted,
                self.relationships_deleted,
                self.properties_set,
                self.labels_changed,
                " closed" if self._closed else "",
            )
        )


class _StatementTransaction:
    """One statement's facade over a session's spanning transaction.

    Handed out by :meth:`MemoryGraph.write_transaction` inside a session
    scope.  Mutators delegate straight to the parent
    :class:`StoreTransaction`, so creates/changes/buffered deletes land
    in the session's shared change buffer; the lifecycle differs:

    * :meth:`commit` only flushes the statement's buffered deletes —
      the version bump is deferred to the session's commit;
    * :meth:`abandon` drops the statement's pending deletes, keeping
      applied changes (the engine's partial-failure semantics);
    * :meth:`rollback` unwinds exactly this statement's undo entries
      (recorded past the watermark captured here), so a cancelled
      write inside a session disappears atomically while earlier
      statements survive.
    """

    __slots__ = ("_parent", "_mark", "_counters")

    def __init__(self, parent):
        self._parent = parent
        graph = parent._graph
        self._mark = len(parent._undo)
        self._counters = (graph._next_node_id, graph._next_rel_id)

    # -- mutators: straight delegation --------------------------------------

    def create_node(self, labels=(), properties=None):
        return self._parent.create_node(labels, properties)

    def create_nodes(self, labels, properties_list):
        return self._parent.create_nodes(labels, properties_list)

    def create_relationship(self, src, tgt, rel_type, properties=None):
        return self._parent.create_relationship(src, tgt, rel_type, properties)

    def create_relationships(self, rel_type, triples):
        return self._parent.create_relationships(rel_type, triples)

    def set_property(self, entity_id, key, value):
        self._parent.set_property(entity_id, key, value)

    def remove_property(self, entity_id, key):
        self._parent.remove_property(entity_id, key)

    def replace_properties(self, entity_id, properties):
        self._parent.replace_properties(entity_id, properties)

    def merge_properties(self, entity_id, properties):
        self._parent.merge_properties(entity_id, properties)

    def add_label(self, node_id, label):
        self._parent.add_label(node_id, label)

    def remove_label(self, node_id, label):
        self._parent.remove_label(node_id, label)

    def delete_node(self, node_id, detach=False):
        self._parent.delete_node(node_id, detach)

    def delete_relationship(self, rel_id):
        self._parent.delete_relationship(rel_id)

    def delete_value(self, value, detach=False):
        self._parent.delete_value(value, detach)

    def flush(self):
        self._parent.flush()

    # -- counters (reported per statement surface, session totals) ----------

    @property
    def changed(self):
        return self._parent.changed

    @property
    def nodes_created(self):
        return self._parent.nodes_created

    @property
    def relationships_created(self):
        return self._parent.relationships_created

    @property
    def nodes_deleted(self):
        return self._parent.nodes_deleted

    @property
    def relationships_deleted(self):
        return self._parent.relationships_deleted

    @property
    def properties_set(self):
        return self._parent.properties_set

    @property
    def labels_changed(self):
        return self._parent.labels_changed

    # -- lifecycle ----------------------------------------------------------

    def commit(self):
        self._parent.flush()
        return self

    def abandon(self):
        self._parent.drop_pending()
        return self

    def rollback(self):
        self._parent.rollback_statement(self._mark, self._counters)
        return self

    def __repr__(self):
        return "_StatementTransaction(over %r, mark=%d)" % (
            self._parent, self._mark
        )


def _validated_properties(properties):
    if not properties:
        return {}
    result = {}
    for key, value in properties.items():
        if type(key) is str:
            value_type = type(value)
            if (
                value_type is int
                or value_type is str
                or value_type is float
                or value_type is bool
            ):
                # The scalar majority skips the recursive check — this
                # runs once per stored property on every write path.
                result[key] = value
                continue
        if not isinstance(key, str):
            raise ValueError("property keys must be strings, got %r" % (key,))
        if value is None:
            continue  # ι is a partial function; null means "not defined"
        if not is_cypher_value(value):
            raise ValueError("%r is not a storable value" % (value,))
        result[key] = value
    return result


def _deep_copy_value(value):
    if isinstance(value, list):
        return [_deep_copy_value(item) for item in value]
    if isinstance(value, dict):
        return {key: _deep_copy_value(item) for key, item in value.items()}
    return value
