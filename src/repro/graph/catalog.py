"""Named graph catalog (Cypher 10, paper Section 6).

Cypher 9 assumes one implicit global graph; Cypher 10 introduces *named
graph references* that "represent externally located graphs, graphs created
by the query, or graphs created by a previous query in a composition of
queries".  The catalog maps reference names (optionally with an AT uri, as
in ``FROM GRAPH soc_net AT "hdfs://..."``) to in-memory graphs.
"""

from __future__ import annotations

from repro.exceptions import GraphNotFound


class GraphCatalog:
    """A registry of named property graphs with one designated default."""

    def __init__(self, default_graph=None, default_name="default"):
        self._graphs = {}
        self._uris = {}
        self._default_name = default_name
        if default_graph is not None:
            self._graphs[default_name] = default_graph

    # -- registration -----------------------------------------------------

    def register(self, name, graph, uri=None):
        """Bind ``name`` (and optionally a location uri) to ``graph``."""
        self._graphs[name] = graph
        if uri is not None:
            self._uris[uri] = name
        return graph

    def set_default(self, name):
        if name not in self._graphs:
            raise GraphNotFound("no graph named %r in catalog" % (name,))
        self._default_name = name

    # -- resolution ---------------------------------------------------------

    def resolve(self, name=None, uri=None):
        """Look a graph up by name, by uri, or fall back to the default."""
        if name is None and uri is None:
            return self.default()
        if name is not None and name in self._graphs:
            return self._graphs[name]
        if uri is not None and uri in self._uris:
            return self._graphs[self._uris[uri]]
        raise GraphNotFound(
            "cannot resolve graph (name=%r, uri=%r)" % (name, uri)
        )

    def default(self):
        try:
            return self._graphs[self._default_name]
        except KeyError:
            raise GraphNotFound("catalog has no default graph")

    def names(self):
        return sorted(self._graphs.keys())

    def __contains__(self, name):
        return name in self._graphs

    def __repr__(self):
        return "GraphCatalog(default={!r}, names={})".format(
            self._default_name, self.names()
        )
