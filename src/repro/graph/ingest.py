"""Streaming bulk CSV ingest with deferred index builds.

The loader reads neo4j-admin-style CSV tables — node files carry an
``:ID(namespace)`` column plus ``:LABEL`` and typed property columns
(``age:int``, ``score:float``, ``active:bool``; untyped columns are
strings), relationship files carry ``:START_ID(ns)`` / ``:END_ID(ns)`` /
``:TYPE`` — and batches the rows through the store's bulk mutator
halves: :meth:`~repro.graph.store.StoreTransaction.create_nodes` and
:meth:`~repro.graph.store.StoreTransaction.create_relationships`.  Rows
stream through a bounded batch buffer; the whole file set is never
materialised.

Two properties distinguish this path from per-row loading:

* **one transaction, exact rollback** — the whole ingest runs inside a
  single undo-recording :class:`StoreTransaction`; a mid-stream failure
  (malformed row, dangling reference, duplicate id, injected fault)
  rolls the store back to its pre-ingest state exactly, and the
  declared indexes are restored too;
* **deferred index builds** — with ``defer_indexes=True`` (the
  default), declared property and reachability indexes are dropped up
  front and rebuilt *once* at ingest end from their bulk-build paths
  (one sort per index segment, one Tarjan per reachability index),
  instead of being maintained per row.  Incremental maintenance and
  rebuild produce identical indexes by the store's own
  maintenance-vs-rebuild contract, so the only difference is the cost.

External ids resolve within one ingest run: every node row registers
its id under its namespace, and relationship rows look endpoints up in
those maps.  Node tables load before relationship tables regardless of
argument order (relative order within each kind is preserved, which is
what makes repeated ingests of the same table set id-deterministic).
"""

from __future__ import annotations

import csv
import os
import time

from repro.exceptions import CypherError


class IngestError(CypherError):
    """A malformed header, unresolvable reference or duplicate id."""


class IngestReport:
    """What one ingest run did, for callers and the CLI to print."""

    def __init__(self):
        self.nodes_created = 0
        self.relationships_created = 0
        self.batches = 0
        self.tables = []  # (name, kind, rows)
        self.property_indexes = []       # rebuilt or maintained (label, key)
        self.reachability_indexes = []   # rebuilt or maintained type sets
        self.deferred = True
        self.elapsed_s = 0.0
        self.id_maps = {}  # namespace -> {external id -> NodeId}

    def summary(self):
        return (
            "%d node(s), %d relationship(s) from %d table(s) "
            "in %d batch(es), %.3fs (%s index maintenance: %d property, "
            "%d reachability)"
            % (
                self.nodes_created,
                self.relationships_created,
                len(self.tables),
                self.batches,
                self.elapsed_s,
                "deferred" if self.deferred else "incremental",
                len(self.property_indexes),
                len(self.reachability_indexes),
            )
        )

    def __repr__(self):
        return "IngestReport(%s)" % self.summary()


def _parse_value(kind, raw):
    if raw == "":
        return None  # absent property
    if kind == "int":
        return int(raw)
    if kind == "float":
        return float(raw)
    if kind == "bool":
        if raw in ("true", "True"):
            return True
        if raw in ("false", "False"):
            return False
        raise IngestError("bad bool literal %r" % (raw,))
    return raw


class _Header:
    """One parsed CSV header: column roles and property converters."""

    __slots__ = (
        "kind", "id_at", "namespace", "label_at",
        "start_at", "start_namespace", "end_at", "end_namespace",
        "type_at", "properties",
    )

    def __init__(self, name, columns):
        self.kind = None
        self.id_at = self.label_at = None
        self.start_at = self.end_at = self.type_at = None
        self.namespace = self.start_namespace = self.end_namespace = None
        self.properties = []  # (position, key, value kind)
        for position, column in enumerate(columns):
            if column.startswith(":ID"):
                self.id_at = position
                self.namespace = _namespace_of(column, name)
            elif column == ":LABEL":
                self.label_at = position
            elif column.startswith(":START_ID"):
                self.start_at = position
                self.start_namespace = _namespace_of(column, name)
            elif column.startswith(":END_ID"):
                self.end_at = position
                self.end_namespace = _namespace_of(column, name)
            elif column == ":TYPE":
                self.type_at = position
            elif column.startswith(":"):
                raise IngestError(
                    "%s: unknown reserved column %r" % (name, column)
                )
            else:
                key, _, kind = column.partition(":")
                if not key:
                    raise IngestError(
                        "%s: property column with empty name %r"
                        % (name, column)
                    )
                self.properties.append((position, key, kind or "str"))
        if self.id_at is not None:
            if self.start_at is not None or self.end_at is not None:
                raise IngestError(
                    "%s: a table is either nodes (:ID) or relationships "
                    "(:START_ID/:END_ID), not both" % name
                )
            self.kind = "nodes"
        elif self.start_at is not None and self.end_at is not None:
            if self.type_at is None:
                raise IngestError(
                    "%s: relationship table without a :TYPE column" % name
                )
            self.kind = "relationships"
        else:
            raise IngestError(
                "%s: header declares neither :ID nor :START_ID/:END_ID"
                % name
            )

    def node_row(self, row, name):
        labels = ()
        if self.label_at is not None and row[self.label_at]:
            labels = tuple(row[self.label_at].split(";"))
        properties = {}
        for position, key, kind in self.properties:
            value = _parse_value(kind, row[position])
            if value is not None:
                properties[key] = value
        return row[self.id_at], labels, properties

    def rel_row(self, row, name):
        rel_type = row[self.type_at]
        if not rel_type:
            raise IngestError("%s: row with empty :TYPE" % name)
        properties = {}
        for position, key, kind in self.properties:
            value = _parse_value(kind, row[position])
            if value is not None:
                properties[key] = value
        return row[self.start_at], row[self.end_at], rel_type, properties


def _namespace_of(column, name):
    if "(" not in column:
        return ""
    if not column.endswith(")"):
        raise IngestError("%s: malformed id column %r" % (name, column))
    return column[column.index("(") + 1:-1]


def _open_sources(sources, handles):
    """Normalise to ``(name, row_iterator)`` pairs, headers unread.

    Accepts a directory path (all ``*.csv`` inside, sorted), file
    paths, or ``(name, lines)`` pairs for already-streaming input.
    Opened file objects are appended to ``handles`` for the caller to
    close.
    """
    if isinstance(sources, str):
        sources = [sources]
    for source in sources:
        if isinstance(source, str):
            if os.path.isdir(source):
                for entry in sorted(os.listdir(source)):
                    if entry.endswith(".csv"):
                        handle = open(
                            os.path.join(source, entry), newline=""
                        )
                        handles.append(handle)
                        yield entry, csv.reader(handle)
            else:
                handle = open(source, newline="")
                handles.append(handle)
                yield os.path.basename(source), csv.reader(handle)
        else:
            name, lines = source
            yield name, csv.reader(iter(lines))


def ingest_csv(graph, sources, batch_size=1000, defer_indexes=True):
    """Bulk-load CSV tables into ``graph``; returns an :class:`IngestReport`.

    ``sources`` is a directory, a list of file paths, or ``(name,
    lines)`` pairs.  ``batch_size`` rows accumulate per bulk create
    (``1`` degenerates to the per-row mutators — the incremental
    baseline the benchmark compares against).  With ``defer_indexes``
    the declared property/reachability indexes are dropped first and
    rebuilt once at the end; on any failure the store *and* its indexes
    are restored to their pre-ingest state before the error propagates.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    started = time.perf_counter()
    report = IngestReport()
    report.deferred = bool(defer_indexes)
    report.property_indexes = graph.indexes()
    report.reachability_indexes = graph.reachability_indexes()

    handles = []
    try:
        tables = []
        for name, rows in _open_sources(sources, handles):
            try:
                columns = next(rows)
            except StopIteration:
                raise IngestError("%s: empty file (no header row)" % name)
            tables.append((name, _Header(name, columns), rows))
        # Nodes before relationships, relative order preserved per kind:
        # endpoint references always resolve, and id assignment depends
        # only on the table set, not the argument order.
        tables.sort(key=lambda entry: entry[1].kind != "nodes")

        transaction = graph.write_transaction(record_undo=True)
        id_maps = report.id_maps
        try:
            if defer_indexes:
                for label, key in report.property_indexes:
                    graph.drop_index(label, key)
                for types in report.reachability_indexes:
                    graph.drop_reachability_index(types)
            for name, header, rows in tables:
                count = _load_table(
                    transaction, header, rows, name, id_maps, batch_size,
                    report,
                )
                report.tables.append((name, header.kind, count))
            transaction.commit()
        except BaseException:
            transaction.rollback()
            if defer_indexes:
                # The rolled-back store equals the pre-ingest store, so
                # rebuilding restores exactly the dropped index contents.
                for label, key in report.property_indexes:
                    graph.create_index(label, key)
                for types in report.reachability_indexes:
                    graph.create_reachability_index(types)
            raise
        if defer_indexes:
            for label, key in report.property_indexes:
                graph.create_index(label, key)
            for types in report.reachability_indexes:
                graph.create_reachability_index(types)
        report.nodes_created = transaction.nodes_created
        report.relationships_created = transaction.relationships_created
    finally:
        for handle in handles:
            handle.close()
    report.elapsed_s = time.perf_counter() - started
    return report


def _load_table(transaction, header, rows, name, id_maps, batch_size, report):
    if header.kind == "nodes":
        return _load_nodes(
            transaction, header, rows, name, id_maps, batch_size, report
        )
    return _load_rels(
        transaction, header, rows, name, id_maps, batch_size, report
    )


def _load_nodes(transaction, header, rows, name, id_maps, batch_size, report):
    ids = id_maps.setdefault(header.namespace, {})
    batch_labels = None
    externals = []
    batch = []

    def flush():
        if not batch:
            return
        report.batches += 1
        if batch_size == 1:
            created = [
                transaction.create_node(batch_labels, properties)
                for properties in batch
            ]
        else:
            created = transaction.create_nodes(batch_labels, batch)
        for external, node in zip(externals, created):
            ids[external] = node
        externals.clear()
        batch.clear()

    count = 0
    for row in rows:
        external, labels, properties = header.node_row(row, name)
        if external in ids:
            raise IngestError(
                "%s: duplicate id %r in namespace %r"
                % (name, external, header.namespace)
            )
        if labels != batch_labels or len(batch) >= batch_size:
            flush()
            batch_labels = labels
        ids[external] = None  # reserve: duplicates inside one batch fail too
        externals.append(external)
        batch.append(properties)
        count += 1
    flush()
    return count


def _load_rels(transaction, header, rows, name, id_maps, batch_size, report):
    start_ids = id_maps.get(header.start_namespace, {})
    end_ids = id_maps.get(header.end_namespace, {})
    batch_type = None
    batch = []

    def flush():
        if not batch:
            return
        report.batches += 1
        if batch_size == 1:
            for triple in batch:
                transaction.create_relationship(
                    triple[0], triple[1], batch_type, triple[2]
                )
        else:
            transaction.create_relationships(batch_type, batch)
        batch.clear()

    count = 0
    for row in rows:
        start, end, rel_type, properties = header.rel_row(row, name)
        source = start_ids.get(start)
        target = end_ids.get(end)
        if source is None:
            raise IngestError(
                "%s: unresolved start id %r in namespace %r"
                % (name, start, header.start_namespace)
            )
        if target is None:
            raise IngestError(
                "%s: unresolved end id %r in namespace %r"
                % (name, end, header.end_namespace)
            )
        if rel_type != batch_type or len(batch) >= batch_size:
            flush()
            batch_type = rel_type
        batch.append((source, target, properties))
        count += 1
    flush()
    return count
