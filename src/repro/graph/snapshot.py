"""Copy-on-write version pins and the snapshot read overlay.

A :class:`VersionPin` freezes one store version *without copying the
store*: :meth:`MemoryGraph.pin_version` registers the pin, and from then
on every raw mutator preserves the **pre-image** of whatever it is about
to touch into the pin's delta maps — first write wins, later writes to
the same entity find the entry already present and pay one dict probe.
A reader that wants the pinned version layers :class:`SnapshotGraph`
over the pin: entities with a preserved pre-image read from the delta,
everything else falls through to the live store's internals, which are
by construction unchanged since the pin for those entities.

The overlay implements the full :class:`~repro.graph.model.PropertyGraph`
read interface *plus* the bulk column APIs the batch engine needs
(``all_node_ids`` / ``label_scan_ids`` / ``node_property_column`` /
``expand_batch``) and the statistics hooks, so both the row and the
batch executors run against a snapshot through the exact same access
paths they use on the live store.  What it deliberately does **not**
expose is the property-index probe surface: index contents track the
live version, so the overlay reports no indexes and the planner enters
through label scans with residual filters — same results, index-free
access paths (the residual predicate always decides; see the
over-approximation contract in :mod:`repro.graph.store`).

Soundness of the fall-through rests on two invariants:

* every mutator preserves *before* it mutates, covering node state,
  relationship state, both endpoints' adjacency, and label/type
  membership lists for everything it touches;
* execution is cooperative and single-threaded — no mutation lands
  between two reads of one query — so "no delta entry" always means
  "identical to pin time", never "not preserved yet".
"""

from __future__ import annotations

from repro.exceptions import EntityNotFound, TransactionError
from repro.graph.model import PropertyGraph
from repro.values.base import NodeId


def _id_value(identifier):
    return identifier.value


#: Delta marker: the entity did not exist when the pin was taken (it was
#: created afterwards), so the snapshot must not show it.
ABSENT = object()


class VersionPin:
    """The pre-images one pinned version needs, filled copy-on-write."""

    __slots__ = (
        "base",
        "version",
        "refs",
        "node_count",
        "rel_count",
        "nodes",       # NodeId -> (label set, property dict) | ABSENT
        "rels",        # RelId -> (src, tgt, type, property dict) | ABSENT
        "adjacency",   # NodeId -> (out, in, out_by_type, in_by_type)
        "labels",      # label -> id-sorted node list at pin time
        "types",       # type -> id-sorted rel list at pin time
    )

    def __init__(self, graph):
        self.base = graph
        self.version = graph._version
        self.refs = 1
        self.node_count = len(graph._node_labels)
        self.rel_count = len(graph._rel_endpoints)
        self.nodes = {}
        self.rels = {}
        self.adjacency = {}
        self.labels = {}
        self.types = {}

    @property
    def clean(self):
        """True while nothing has mutated since the pin was taken."""
        return not (
            self.nodes or self.rels or self.adjacency
            or self.labels or self.types
        )

    # -- pre-image capture (called by the store *before* each mutation) ----

    def preserve_node(self, graph, node_id):
        if node_id not in self.nodes:
            labels = graph._node_labels.get(node_id)
            if labels is None:
                self.nodes[node_id] = ABSENT
            else:
                self.nodes[node_id] = (
                    set(labels),
                    dict(graph._node_properties[node_id]),
                )

    def preserve_rel(self, graph, rel_id):
        if rel_id not in self.rels:
            endpoints = graph._rel_endpoints.get(rel_id)
            if endpoints is None:
                self.rels[rel_id] = ABSENT
            else:
                self.rels[rel_id] = (
                    endpoints[0],
                    endpoints[1],
                    graph._rel_types[rel_id],
                    dict(graph._rel_properties[rel_id]),
                )

    def preserve_adjacency(self, graph, node_id):
        if node_id not in self.adjacency:
            self.adjacency[node_id] = (
                list(graph._outgoing.get(node_id, ())),
                list(graph._incoming.get(node_id, ())),
                {
                    t: list(rels)
                    for t, rels in graph._outgoing_by_type.get(
                        node_id, {}
                    ).items()
                },
                {
                    t: list(rels)
                    for t, rels in graph._incoming_by_type.get(
                        node_id, {}
                    ).items()
                },
            )

    def preserve_label(self, graph, label):
        if label not in self.labels:
            self.labels[label] = sorted(
                graph._label_index.get(label, ()), key=_id_value
            )

    def preserve_type(self, graph, rel_type):
        if rel_type not in self.types:
            self.types[rel_type] = sorted(
                graph._type_index.get(rel_type, ()), key=_id_value
            )

    def __repr__(self):
        return "VersionPin(v%d, refs=%d, %s)" % (
            self.version,
            self.refs,
            "clean" if self.clean else "dirty",
        )


class SnapshotGraph(PropertyGraph):
    """A read-only property graph fixed at one pinned store version.

    Reads consult the pin's pre-image deltas first and fall through to
    the live store's internals otherwise (sound per the module
    docstring).  The write surface raises :class:`TransactionError`.
    """

    #: The bulk column APIs below make batch execution eligible.
    supports_bulk_scans = True

    def __init__(self, pin):
        self._pin = pin

    @property
    def version(self):
        """The pinned version — stable, so statistics caches stay warm."""
        return self._pin.version

    # -- node state ---------------------------------------------------------

    def _node_state(self, node_id):
        """(labels, properties) at pin time, or None if not a node then."""
        pin = self._pin
        state = pin.nodes.get(node_id)
        if state is None:
            labels = pin.base._node_labels.get(node_id)
            if labels is None:
                return None
            return labels, pin.base._node_properties[node_id]
        if state is ABSENT:
            return None
        return state

    def _rel_state(self, rel_id):
        """(src, tgt, type, properties) at pin time, or None."""
        pin = self._pin
        state = pin.rels.get(rel_id)
        if state is None:
            endpoints = pin.base._rel_endpoints.get(rel_id)
            if endpoints is None:
                return None
            return (
                endpoints[0],
                endpoints[1],
                pin.base._rel_types[rel_id],
                pin.base._rel_properties[rel_id],
            )
        if state is ABSENT:
            return None
        return state

    def _require_node(self, node_id):
        state = self._node_state(node_id)
        if state is None:
            raise EntityNotFound("no node %r in graph" % (node_id,))
        return state

    def _require_rel(self, rel_id):
        state = self._rel_state(rel_id)
        if state is None:
            raise EntityNotFound("no relationship %r in graph" % (rel_id,))
        return state

    # -- PropertyGraph read interface ---------------------------------------

    def nodes(self):
        return iter(self.all_node_ids())

    def relationships(self):
        pin = self._pin
        overlay = pin.rels
        merged = [r for r in pin.base._rel_endpoints if r not in overlay]
        merged.extend(r for r, s in overlay.items() if s is not ABSENT)
        merged.sort(key=_id_value)
        return iter(merged)

    def src(self, rel_id):
        return self._require_rel(rel_id)[0]

    def tgt(self, rel_id):
        return self._require_rel(rel_id)[1]

    def rel_type(self, rel_id):
        return self._require_rel(rel_id)[2]

    def property_value(self, entity_id, key):
        if isinstance(entity_id, NodeId):
            return self._require_node(entity_id)[1].get(key)
        return self._require_rel(entity_id)[3].get(key)

    def properties(self, entity_id):
        if isinstance(entity_id, NodeId):
            return dict(self._require_node(entity_id)[1])
        return dict(self._require_rel(entity_id)[3])

    def labels(self, node_id):
        return frozenset(self._require_node(node_id)[0])

    def has_label(self, node_id, label):
        return label in self._require_node(node_id)[0]

    def node_property(self, node_id, key):
        return self._require_node(node_id)[1].get(key)

    def has_node(self, node_id):
        return self._node_state(node_id) is not None

    def has_relationship(self, rel_id):
        return self._rel_state(rel_id) is not None

    def node_count(self):
        return self._pin.node_count

    def relationship_count(self):
        return self._pin.rel_count

    # -- adjacency ----------------------------------------------------------

    def _adjacency(self, node_id):
        """Pin-time (out, in, out_by_type, in_by_type), delta-first."""
        pin = self._pin
        preserved = pin.adjacency.get(node_id)
        if preserved is not None:
            return preserved
        base = pin.base
        return (
            base._outgoing.get(node_id, ()),
            base._incoming.get(node_id, ()),
            base._outgoing_by_type.get(node_id, _EMPTY),
            base._incoming_by_type.get(node_id, _EMPTY),
        )

    @staticmethod
    def _typed(segments, types):
        merged = [
            rel
            for t in dict.fromkeys(types)
            for rel in segments.get(t, ())
        ]
        merged.sort(key=_id_value)
        return iter(merged)

    def outgoing(self, node_id, types=None):
        out, _inc, out_by_type, _in_by_type = self._adjacency(node_id)
        if types is None:
            return iter(out)
        return self._typed(out_by_type, types)

    def incoming(self, node_id, types=None):
        _out, inc, _out_by_type, in_by_type = self._adjacency(node_id)
        if types is None:
            return iter(inc)
        return self._typed(in_by_type, types)

    def degree(self, node_id, direction="both", rel_type=None):
        out, inc, out_by_type, in_by_type = self._adjacency(node_id)
        if rel_type is None:
            n_out, n_in = len(out), len(inc)
        else:
            n_out = len(out_by_type.get(rel_type, ()))
            n_in = len(in_by_type.get(rel_type, ()))
        if direction == "out":
            return n_out
        if direction == "in":
            return n_in
        return n_out + n_in

    # -- scans and bulk columns (batch-engine substrate) --------------------

    def all_node_ids(self):
        pin = self._pin
        overlay = pin.nodes
        if not overlay:
            return pin.base.all_node_ids()
        merged = [n for n in pin.base._node_labels if n not in overlay]
        merged.extend(n for n, s in overlay.items() if s is not ABSENT)
        merged.sort(key=_id_value)
        return merged

    def label_scan_ids(self, label):
        pin = self._pin
        preserved = pin.labels.get(label)
        if preserved is not None:
            return preserved
        # Membership mutations always preserve the label list first, so
        # no delta entry means the live scan list equals pin time.
        return pin.base._cached_scan("label", label)

    def nodes_with_label(self, label):
        return iter(self.label_scan_ids(label))

    def relationships_with_type(self, rel_type):
        pin = self._pin
        preserved = pin.types.get(rel_type)
        if preserved is not None:
            return iter(preserved)
        return iter(pin.base._cached_scan("type", rel_type))

    def node_property_column(self, node_ids, key):
        pin = self._pin
        overlay = pin.nodes
        if not overlay:
            return pin.base.node_property_column(node_ids, key)
        base_properties = pin.base._node_properties
        column = []
        append = column.append
        for node in node_ids:
            state = overlay.get(node)
            if state is None:
                append(base_properties[node].get(key))  # KeyError contract
            elif state is ABSENT:
                raise KeyError(node)
            else:
                append(state[1].get(key))
        return column

    def expand_batch(self, sources, direction, types=None):
        pin = self._pin
        if pin.clean:
            return pin.base.expand_batch(sources, direction, types)
        origins, rels, targets = [], [], []
        end = 1 if direction == "out" else 0
        for index, node in enumerate(sources):
            if not isinstance(node, NodeId) or not self.has_node(node):
                continue
            if direction == "both":
                for rel in self.touching(node, types):
                    source_end, target_end, _t, _p = self._require_rel(rel)
                    origins.append(index)
                    rels.append(rel)
                    targets.append(
                        target_end if source_end == node else source_end
                    )
            else:
                steps = (
                    self.outgoing(node, types)
                    if direction == "out"
                    else self.incoming(node, types)
                )
                for rel in steps:
                    origins.append(index)
                    rels.append(rel)
                    targets.append(self._require_rel(rel)[end])
        return origins, rels, targets

    # -- statistics hooks ----------------------------------------------------

    def all_labels(self):
        return sorted(self.label_cardinalities())

    def all_types(self):
        return sorted(self.type_cardinalities())

    def label_cardinalities(self):
        pin = self._pin
        counts = {
            label: len(nodes)
            for label, nodes in pin.base._label_index.items()
            if label not in pin.labels
        }
        for label, ids in pin.labels.items():
            counts[label] = len(ids)
        return {label: n for label, n in counts.items() if n}

    def type_cardinalities(self):
        pin = self._pin
        counts = {
            t: len(rels)
            for t, rels in pin.base._type_index.items()
            if t not in pin.types
        }
        for t, ids in pin.types.items():
            counts[t] = len(ids)
        return {t: n for t, n in counts.items() if n}

    # No index surface: the live indexes track the live version, so the
    # snapshot advertises none and plans fall back to label scans whose
    # residual filters preserve the predicate semantics exactly.

    def has_index(self, label, key):
        return False

    def indexes(self):
        return []

    # -- write surface -------------------------------------------------------

    def write_transaction(self, record_undo=False):
        raise TransactionError("snapshot graphs are read-only")

    def __repr__(self):
        return "SnapshotGraph(v%d over %r)" % (self._pin.version, self._pin.base)


_EMPTY = {}
