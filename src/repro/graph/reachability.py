"""Incremental reachability indexes over the type-segmented adjacency.

A :class:`ReachabilityIndex` answers "is there a directed path from node
``u`` to node ``v`` using only relationships of my type set?" in O(1)
for most pairs, via the XPath-accelerator construction:

* the indexed subgraph is condensed into strongly connected components
  (iterative Tarjan — chains in this codebase run thousands deep, far
  past the recursion limit), so reachability questions reduce to the
  component DAG;
* one DFS over that DAG assigns **interval labels**: pre/post-order
  stamps over the spanning forest (tree containment certifies YES), and
  GRAIL-style ``[low, rank]`` post-order intervals over *all* edges
  (non-containment certifies NO);
* the rare pairs neither label decides fall back to a label-pruned DFS
  over the component DAG, memoised per label generation.

Mutation maintenance is **eager for structure, lazy for labels**: every
``add_edge``/``remove_edge`` keeps the condensation exact — cycle-closing
inserts merge the components on any path between the endpoints, intra-
component deletes re-run Tarjan locally over the old component's members
— while the interval labels are recomputed on the first query after a
structural change.  Both mutators are idempotent per relationship id so
that crash-replay and undo-replay converge, matching the property-index
discipline in :mod:`repro.graph.store`.

``snapshot()`` returns a canonical form (components as sorted member-id
tuples, inter-component edge counts keyed by minimum members) in which
internal component numbering cancels out, so the maintenance ≡ rebuild
differential can compare an incrementally maintained index against a
fresh build byte-identically.
"""

from __future__ import annotations

import threading

__all__ = ["ReachabilityIndex", "best_covering", "reachability_key"]


def _id_value(identifier):
    """Canonical scalar for a node/rel id — ids are otherwise opaque."""
    return getattr(identifier, "value", identifier)


def reachability_key(types):
    """Canonical dict key for a declared type set: None or a frozenset."""
    if types is None:
        return None
    key = frozenset(types)
    return key if key else None


def best_covering(needed, available):
    """Pick the declared type set that best covers a traversal.

    ``needed`` is the pattern's resolved type frozenset (None = any
    type); ``available`` iterates declared keys (None = all types).
    Preference order: exact match, then the smallest strict superset,
    then the all-types index; an untyped traversal is only covered by
    the all-types index.  Returns the chosen key, or the sentinel
    ``best_covering.MISS`` when nothing covers the pattern — ``None`` is
    a valid (all-types) result, so absence needs its own marker.
    """
    miss = best_covering.MISS
    if needed is None:
        return None if any(key is None for key in available) else miss
    best = miss
    best_size = None
    for key in available:
        if key is None:
            if best is miss:
                best = None  # usable, but any typed superset is tighter
            continue
        if key == needed:
            return key
        if key >= needed and (best_size is None or len(key) < best_size):
            best, best_size = key, len(key)
    return best


best_covering.MISS = object()


class ReachabilityIndex:
    """Condensed-SCC reachability with lazily refreshed interval labels."""

    def __init__(self, types=None):
        self.types = reachability_key(types)
        self._edges = {}  # RelId -> (source NodeId, target NodeId)
        self._node_out = {}  # NodeId -> set of RelId
        self._node_in = {}  # NodeId -> set of RelId
        self._comp_of = {}  # NodeId -> component id
        self._members = {}  # component id -> set of NodeId
        self._succ = {}  # comp -> {comp: edge count}, never empty/zero
        self._pred = {}  # comp -> {comp: edge count}, never empty/zero
        self._internal = {}  # comp -> intra-component edge count, never zero
        self._next_comp = 0
        self._generation = 0
        self._labels = None  # (generation, pre, post, rank, low)
        self._memo = {}  # (comp, comp) -> bool, valid for current labels
        self._diameter = None  # (generation, longest DAG path in edges)
        self._lock = threading.Lock()

    # -- type coverage ----------------------------------------------------

    def covers(self, rel_type):
        """True if relationships of ``rel_type`` belong in this index."""
        return self.types is None or rel_type in self.types

    # -- bookkeeping helpers ----------------------------------------------

    def _touch(self):
        self._generation += 1
        if self._memo:
            self._memo.clear()

    def _track(self, node):
        if node not in self._comp_of:
            comp = self._next_comp
            self._next_comp += 1
            self._comp_of[node] = comp
            self._members[comp] = {node}

    def _untrack_if_isolated(self, node):
        if self._node_out.get(node) or self._node_in.get(node):
            return
        self._node_out.pop(node, None)
        self._node_in.pop(node, None)
        comp = self._comp_of.pop(node, None)
        if comp is not None:
            # An edge-less node is necessarily its own singleton SCC with
            # no DAG neighbours, so dropping it leaves no dangling counts.
            del self._members[comp]
            self._succ.pop(comp, None)
            self._pred.pop(comp, None)
            self._internal.pop(comp, None)

    @staticmethod
    def _bump(table, a, b, count=1):
        row = table.get(a)
        if row is None:
            table[a] = {b: count}
        else:
            row[b] = row.get(b, 0) + count

    @staticmethod
    def _drop(table, a, b, count=1):
        row = table[a]
        remaining = row[b] - count
        if remaining:
            row[b] = remaining
        else:
            del row[b]
            if not row:
                del table[a]

    def _dag_reaches(self, start, goal):
        """DFS over the component DAG — used while labels may be stale."""
        if start == goal:
            return True
        stack = [start]
        seen = {start}
        while stack:
            for nxt in self._succ.get(stack.pop(), ()):
                if nxt == goal:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    # -- mutation ----------------------------------------------------------

    def add_edge(self, rel_id, source, target):
        """Register a relationship; no-op when ``rel_id`` is present."""
        if rel_id in self._edges:
            return
        self._edges[rel_id] = (source, target)
        self._node_out.setdefault(source, set()).add(rel_id)
        self._node_in.setdefault(target, set()).add(rel_id)
        self._track(source)
        self._track(target)
        cu = self._comp_of[source]
        cv = self._comp_of[target]
        if cu == cv:
            self._internal[cu] = self._internal.get(cu, 0) + 1
        elif self._dag_reaches(cv, cu):
            self._merge_cycle(cu, cv)
        else:
            self._bump(self._succ, cu, cv)
            self._bump(self._pred, cv, cu)
        self._touch()

    def _merge_cycle(self, cu, cv):
        """Adding cu→cv closed a cycle: collapse every comp between them.

        The merge set is forward(cv) ∩ backward(cu) — exactly the
        components lying on some cv→…→cu path, all of which become one
        SCC once the new edge exists.
        """
        forward = {cv}
        stack = [cv]
        while stack:
            for nxt in self._succ.get(stack.pop(), ()):
                if nxt not in forward:
                    forward.add(nxt)
                    stack.append(nxt)
        merge = set()
        stack = [cu]
        seen = {cu}
        while stack:
            comp = stack.pop()
            if comp in forward:
                merge.add(comp)
            for nxt in self._pred.get(comp, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        # Backward reachability alone over-collects (ancestors of cu not
        # on a cv path); intersecting with forward(cv) trims to the cycle.
        merge &= forward
        merge.add(cu)
        merge.add(cv)
        rep = max(merge, key=lambda comp: len(self._members[comp]))
        internal = 1  # the new cu→cv edge itself becomes intra-component
        external_succ = {}
        external_pred = {}
        for comp in merge:
            internal += self._internal.pop(comp, 0)
            for other, count in self._succ.pop(comp, {}).items():
                if other in merge:
                    internal += count
                else:
                    external_succ[other] = external_succ.get(other, 0) + count
            for other, count in self._pred.pop(comp, {}).items():
                if other not in merge:
                    external_pred[other] = external_pred.get(other, 0) + count
        for other, count in external_succ.items():
            row = self._pred[other]
            for comp in merge:
                row.pop(comp, None)
            row[rep] = count
        for other, count in external_pred.items():
            row = self._succ[other]
            for comp in merge:
                row.pop(comp, None)
            row[rep] = count
        members = self._members[rep]
        for comp in merge:
            if comp == rep:
                continue
            for node in self._members.pop(comp):
                self._comp_of[node] = rep
                members.add(node)
        self._internal[rep] = internal
        if external_succ:
            self._succ[rep] = external_succ
        if external_pred:
            self._pred[rep] = external_pred

    def remove_edge(self, rel_id):
        """Forget a relationship; no-op when ``rel_id`` is unknown."""
        endpoints = self._edges.pop(rel_id, None)
        if endpoints is None:
            return
        source, target = endpoints
        self._node_out[source].discard(rel_id)
        self._node_in[target].discard(rel_id)
        cu = self._comp_of[source]
        cv = self._comp_of[target]
        if cu != cv:
            self._drop(self._succ, cu, cv)
            self._drop(self._pred, cv, cu)
        else:
            remaining = self._internal[cu] - 1
            if remaining:
                self._internal[cu] = remaining
            else:
                del self._internal[cu]
            if len(self._members[cu]) > 1:
                self._resplit(cu)
        self._untrack_if_isolated(source)
        self._untrack_if_isolated(target)
        self._touch()

    def _resplit(self, comp):
        """Re-run Tarjan locally after an intra-component edge delete."""
        members = self._members[comp]
        sccs = self._tarjan(members, local=True)
        if len(sccs) == 1:
            return  # still strongly connected; counts already adjusted
        old_succ = self._succ.pop(comp, {})
        old_pred = self._pred.pop(comp, {})
        self._internal.pop(comp, None)
        del self._members[comp]
        for scc in sccs:
            cid = self._next_comp
            self._next_comp += 1
            self._members[cid] = scc
            for node in scc:
                self._comp_of[node] = cid
        # External neighbours forget the dead component id entirely; the
        # incident-edge sweep below recounts every boundary edge against
        # the fresh component ids.
        for other in old_succ:
            self._drop_all(self._pred, other, comp)
        for other in old_pred:
            self._drop_all(self._succ, other, comp)
        counted = set()
        for node in members:
            for rel in self._node_out.get(node, ()):
                self._recount(rel, counted)
            for rel in self._node_in.get(node, ()):
                self._recount(rel, counted)

    @staticmethod
    def _drop_all(table, a, b):
        row = table.get(a)
        if row is not None:
            row.pop(b, None)
            if not row:
                del table[a]

    def _recount(self, rel, counted):
        if rel in counted:
            return
        counted.add(rel)
        source, target = self._edges[rel]
        cu = self._comp_of[source]
        cv = self._comp_of[target]
        if cu == cv:
            self._internal[cu] = self._internal.get(cu, 0) + 1
        else:
            self._bump(self._succ, cu, cv)
            self._bump(self._pred, cv, cu)

    # -- bulk build --------------------------------------------------------

    def build(self, edges):
        """(Re)build from scratch — one global Tarjan over ``edges``.

        ``edges`` iterates ``(rel_id, source, target)`` triples.  This is
        the genuinely independent construction path the maintenance ≡
        rebuild differential compares incremental mutation against.
        """
        self._edges = {}
        self._node_out = {}
        self._node_in = {}
        self._comp_of = {}
        self._members = {}
        self._succ = {}
        self._pred = {}
        self._internal = {}
        for rel_id, source, target in edges:
            if rel_id in self._edges:
                continue
            self._edges[rel_id] = (source, target)
            self._node_out.setdefault(source, set()).add(rel_id)
            self._node_in.setdefault(target, set()).add(rel_id)
            self._node_out.setdefault(target, set())
            self._node_in.setdefault(source, set())
        nodes = set(self._node_out)
        for scc in self._tarjan(nodes, local=False):
            cid = self._next_comp
            self._next_comp += 1
            self._members[cid] = scc
            for node in scc:
                self._comp_of[node] = cid
        counted = set()
        for node in nodes:
            for rel in self._node_out.get(node, ()):
                self._recount(rel, counted)
        self._touch()
        return self

    def _tarjan(self, nodes, local):
        """Iterative Tarjan over ``nodes``; ``local`` restricts edges to
        targets inside ``nodes`` (the re-split case)."""
        index = {}
        lowlink = {}
        on_stack = set()
        scc_stack = []
        sccs = []
        counter = [0]

        def successors(node):
            for rel in self._node_out.get(node, ()):
                target = self._edges[rel][1]
                if not local or target in nodes:
                    yield target

        for root in sorted(nodes):
            if root in index:
                continue
            work = [(root, successors(root))]
            index[root] = lowlink[root] = counter[0]
            counter[0] += 1
            scc_stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for nxt in it:
                    if nxt not in index:
                        index[nxt] = lowlink[nxt] = counter[0]
                        counter[0] += 1
                        scc_stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, successors(nxt)))
                        advanced = True
                        break
                    if nxt in on_stack:
                        if index[nxt] < lowlink[node]:
                            lowlink[node] = index[nxt]
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    if lowlink[node] < lowlink[parent]:
                        lowlink[parent] = lowlink[node]
                if lowlink[node] == index[node]:
                    scc = set()
                    while True:
                        member = scc_stack.pop()
                        on_stack.discard(member)
                        scc.add(member)
                        if member == node:
                            break
                    sccs.append(scc)
        return sccs

    # -- interval labels ---------------------------------------------------

    def _ensure_labels(self):
        labels = self._labels
        if labels is not None and labels[0] == self._generation:
            return labels
        with self._lock:
            labels = self._labels
            if labels is not None and labels[0] == self._generation:
                return labels
            labels = self._compute_labels()
            self._labels = labels
            self._memo = {}
            return labels

    def _compute_labels(self):
        """One iterative DFS over the component DAG yields both labels.

        * ``pre``/``post``: a shared clock over the spanning forest of
          first-visit edges — containment certifies reachability (YES);
        * ``rank``: global post-order finish rank, ``low``: min rank over
          everything reachable (GRAIL) — ``[low(v), rank(v)]`` not inside
          ``[low(u), rank(u)]`` certifies *non*-reachability (NO).

        Cross edges in a DAG always point at finished nodes, so a
        successor's ``low`` is final whenever it is consulted.
        """
        pre = {}
        post = {}
        rank = {}
        low = {}
        clock = [0]
        finish = [0]
        roots = sorted(
            comp for comp in self._members if comp not in self._pred
        )

        def visit(root):
            pre[root] = clock[0]
            clock[0] += 1
            low_acc = {root: None}
            stack = [(root, iter(sorted(self._succ.get(root, ()))))]
            while stack:
                node, it = stack[-1]
                descended = False
                for nxt in it:
                    if nxt not in pre:
                        pre[nxt] = clock[0]
                        clock[0] += 1
                        low_acc[nxt] = None
                        stack.append(
                            (nxt, iter(sorted(self._succ.get(nxt, ()))))
                        )
                        descended = True
                        break
                    seen_low = low_acc[node]
                    if seen_low is None or low[nxt] < seen_low:
                        low_acc[node] = low[nxt]
                if descended:
                    continue
                stack.pop()
                post[node] = clock[0]
                clock[0] += 1
                node_rank = finish[0]
                finish[0] += 1
                rank[node] = node_rank
                acc = low_acc.pop(node)
                low[node] = node_rank if acc is None else min(acc, node_rank)
                if stack:
                    parent = stack[-1][0]
                    seen_low = low_acc[parent]
                    if seen_low is None or low[node] < seen_low:
                        low_acc[parent] = low[node]

        # Every component of a finite DAG sits under some in-degree-zero
        # root, so visiting the roots covers the whole condensation.
        for root in roots:
            if root not in pre:
                visit(root)
        return (self._generation, pre, post, rank, low)

    # -- queries -----------------------------------------------------------

    def reachable(self, source, target):
        """Directed, zero-length-inclusive reachability between nodes."""
        if source == target:
            return True
        cu = self._comp_of.get(source)
        if cu is None:
            return False
        cv = self._comp_of.get(target)
        if cv is None:
            return False
        if cu == cv:
            return True
        return self._comp_reachable(cu, cv)

    def _comp_reachable(self, cu, cv):
        labels = self._ensure_labels()
        memo = self._memo
        key = (cu, cv)
        cached = memo.get(key)
        if cached is not None:
            return cached
        _generation, pre, post, rank, low = labels
        target_rank = rank[cv]
        target_low = low[cv]
        if not (low[cu] <= target_low and target_rank <= rank[cu]):
            memo[key] = False  # GRAIL interval excludes cv: certain NO
            return False
        target_pre = pre[cv]
        if pre[cu] <= target_pre and post[cv] <= post[cu]:
            memo[key] = True  # spanning-tree containment: certain YES
            return True
        # Undecided: label-pruned DFS over the component DAG.
        succ = self._succ
        stack = [cu]
        seen = {cu}
        found = False
        while stack:
            comp = stack.pop()
            if pre[comp] <= target_pre and post[cv] <= post[comp]:
                found = True
                break
            for nxt in succ.get(comp, ()):
                if nxt in seen:
                    continue
                if not (low[nxt] <= target_low and target_rank <= rank[nxt]):
                    continue
                seen.add(nxt)
                stack.append(nxt)
        memo[key] = found
        return found

    # -- introspection -----------------------------------------------------

    def condensation_diameter(self):
        """Longest path, in edges, of the component DAG (memoised).

        A var-length pattern whose upper bound exceeds this can cross
        at most ``diameter`` component boundaries before it must repeat
        a component, so the bound stops being the cheap reason to
        decline an index probe.  O(components + DAG edges) when stale;
        the result is cached until the next structural change (the same
        ``_generation`` bump that invalidates the interval labels).
        """
        cached = self._diameter
        if cached is not None and cached[0] == self._generation:
            return cached[1]
        depth = {}
        succ = self._succ
        for root in self._members:
            if root in depth:
                continue
            stack = [(root, iter(succ.get(root, ())))]
            while stack:
                comp, successors = stack[-1]
                advanced = False
                for nxt in successors:
                    if nxt not in depth:
                        stack.append((nxt, iter(succ.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    depth[comp] = 1 + max(
                        (depth[nxt] for nxt in succ.get(comp, ())),
                        default=-1,
                    )
        value = max(depth.values(), default=0)
        self._diameter = (self._generation, value)
        return value

    def statistics(self):
        """Cheap size facts for the cost model and ``explain``."""
        return {
            "types": None if self.types is None else tuple(sorted(self.types)),
            "nodes": len(self._comp_of),
            "edges": len(self._edges),
            "components": len(self._members),
            "condensation_diameter": self.condensation_diameter(),
        }

    def snapshot(self):
        """Canonical structural form, independent of component numbering.

        Components become sorted tuples of member id values; the DAG's
        edge counts and intra-component counts are keyed by each
        component's minimum member id.  Two indexes over the same graph
        — however their internal ids diverged — compare equal.
        """
        comp_key = {}
        components = []
        for cid, members in self._members.items():
            ids = tuple(sorted(_id_value(node) for node in members))
            comp_key[cid] = ids[0]
            components.append(ids)
        components.sort()
        dag_edges = sorted(
            ((comp_key[a], comp_key[b]), count)
            for a, row in self._succ.items()
            for b, count in row.items()
        )
        internal = sorted(
            (comp_key[comp], count) for comp, count in self._internal.items()
        )
        return (
            None if self.types is None else tuple(sorted(self.types)),
            tuple(components),
            tuple(dag_edges),
            tuple(internal),
            tuple(sorted(_id_value(rel) for rel in self._edges)),
        )
