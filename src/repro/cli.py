"""An interactive Cypher shell, one-shot query runner and bench driver.

Usage::

    python -m repro.cli                       # REPL on an empty graph
    python -m repro.cli --graph data.json     # load a JSON graph
    python -m repro.cli --query "MATCH (n) RETURN count(*) AS n"
    python -m repro.cli explain "MATCH ..."   # which path runs it, and why
    python -m repro.cli selftest              # row/batch/interpreter
                                              # differential + TCK smoke gate
    python -m repro.cli ingest dir/           # bulk-load CSV tables
                                              # (--generate SCALE for the
                                              # LDBC-style social dataset)
    python -m repro.cli bench                 # run the benchmark suite;
                                              # medians -> BENCH_pipeline.json

Inside the REPL, lines ending in ``;`` (or a single complete clause line)
execute as Cypher; special commands start with ``:``:

    :help               this text
    :schema             labels, relationship types, counts, indexes
    :explain <query>    show the physical plan (with access-path estimates)
    :index              list property indexes
    :index :L(k)        create a property index on (label L, key k)
    :index :L(k1,k2)    create a composite index over the key tuple
    :index drop :L(k)   drop one again (composites: :index drop :L(k1,k2))
    :reach              list reachability indexes
    :reach :R|S         create a reachability index over types R and S
    :reach *            create the all-types reachability index
    :reach drop :R|S    drop one (``:reach drop *`` for all-types)
    :mode <m>           auto | interpreter | planner | row | batch | parallel
    :workers <n>        worker count for parallel morsel execution
    :begin              open a transaction; statements accumulate
    :commit             make the transaction's changes visible atomically
    :rollback           undo everything since :begin
    :timeout <ms>       per-statement time limit (0 or "off" disables)
    :save <path>        write the current graph as JSON
    :load <path>        replace the graph from JSON
    :quit               leave

Timed-out, cancelled or refused statements report a one-line ``error:``
message — an interrupted write is rolled back, never half-applied.
"""

from __future__ import annotations

import argparse
import re
import sys

from repro.exceptions import CypherError
from repro.graph.io import dump_json, load_json
from repro.graph.store import MemoryGraph
from repro.runtime.engine import CypherEngine


def _cache_line(cache_info):
    """One-line plan-cache report for the explain outputs."""
    rate = cache_info["hit_rate"]
    return "plan cache: %d hit(s), %d miss(es)%s" % (
        cache_info["hits"],
        cache_info["misses"],
        "" if rate is None else " (hit rate %.0f%%)" % (rate * 100),
    )


#: ``:Label(key)`` / ``:Label(k1,k2,…)`` — the index spec syntax of
#: ``:index`` and friends; several keys declare a composite index.
_INDEX_SPEC = re.compile(r"^:?(\w+)\((\w+(?:\s*,\s*\w+)*)\)$")


def _parse_index_spec(spec):
    """``(label, key tuple)`` from an index spec, or None."""
    match = _INDEX_SPEC.match(spec)
    if match is None:
        return None
    keys = tuple(key.strip() for key in match.group(2).split(","))
    return match.group(1), keys


def _index_display(label, key):
    """``:Label(k1,k2)`` from a public index key (str or tuple)."""
    keys = (key,) if isinstance(key, str) else key
    return ":%s(%s)" % (label, ",".join(keys))

#: ``:R|S`` or ``*`` — the type-set syntax of ``:reach`` and friends.
_REACH_SPEC = re.compile(r"^(?:\*|:?(\w+(?:\|\w+)*))$")


def _parse_reach_spec(spec):
    """``(ok, types)`` from a ``:reach`` type-set argument."""
    match = _REACH_SPEC.match(spec)
    if match is None:
        return False, None
    if match.group(1) is None:
        return True, None
    return True, tuple(match.group(1).split("|"))


def _reach_display(types):
    return "<any type>" if types is None else ":" + "|".join(types)


def _access_path_lines(access_paths):
    """Per-scan ``estimated vs actual`` report lines for profiled runs.

    Parallel executions append an ``Exchange`` record; its per-worker
    morsel counts are rendered so a silent serial fallback (one
    partition where several were expected) is visible at the shell.
    """
    if not access_paths:
        return ["access paths: none (no scan operators)"]
    lines = ["access paths (estimated vs actual rows):"]
    for record in access_paths:
        if record.get("operator") == "Exchange":
            lines.append(
                "  %-12s via %-24s %d partition(s), "
                "rows/worker=%s, morsels/worker=%s" % (
                    record["variable"],
                    record["entry"],
                    record["partitions"],
                    record["worker_rows"],
                    record["worker_morsels"],
                )
            )
            continue
        estimated = record["estimated_rows"]
        lines.append(
            "  %-12s via %-24s est≈%s actual=%d" % (
                record["variable"],
                record["entry"],
                "?" if estimated is None else "%d" % round(estimated),
                record["actual_rows"],
            )
        )
    return lines


class Shell:
    """The REPL state machine; testable without a terminal."""

    def __init__(self, engine=None, output=None):
        self.engine = engine or CypherEngine(MemoryGraph())
        self.output = output if output is not None else sys.stdout
        self.running = True
        #: The open :meth:`CypherEngine.session` between :begin and
        #: :commit/:rollback; None when statements auto-commit.
        self.session = None
        #: Per-statement timeout in milliseconds (None = unlimited).
        self.timeout_ms = None

    def write(self, text=""):
        self.output.write(text + "\n")

    # -- command handling ---------------------------------------------------

    def handle(self, line):
        """Process one input line; returns False when the shell should exit."""
        line = line.strip()
        if not line:
            return self.running
        if line.startswith(":"):
            self._command(line)
        else:
            self._query(line.rstrip(";"))
        return self.running

    def _command(self, line):
        parts = line.split(None, 1)
        command = parts[0]
        argument = parts[1].strip() if len(parts) > 1 else ""
        if command in (":quit", ":exit", ":q"):
            self.running = False
        elif command == ":help":
            self.write(__doc__.strip())
        elif command == ":schema":
            self._schema()
        elif command == ":index":
            self._index(argument)
        elif command == ":reach":
            self._reach(argument)
        elif command == ":mode":
            if argument in (
                "auto", "interpreter", "planner", "row", "batch", "parallel"
            ):
                self.engine.mode = argument
                self.write("mode set to %s" % argument)
            else:
                self.write(
                    "usage: :mode auto|interpreter|planner|row|batch|parallel"
                )
        elif command == ":workers":
            try:
                workers = int(argument)
                if workers < 1:
                    raise ValueError
            except ValueError:
                self.write("usage: :workers <positive integer>")
                return
            self.engine.workers = workers
            self.write("workers set to %d" % workers)
        elif command == ":begin":
            self._begin()
        elif command == ":commit":
            self._finish_transaction("commit")
        elif command == ":rollback":
            self._finish_transaction("rollback")
        elif command == ":timeout":
            self._timeout(argument)
        elif command == ":explain":
            if not argument:
                self.write("usage: :explain <query>")
                return
            try:
                executed_by, reason, plan_text, cache_info, mode = (
                    self.engine.explain_info(argument)
                )
            except CypherError as error:
                self.write("error: %s" % error)
                return
            self.write("executed by: %s" % executed_by)
            if mode:
                self.write("execution mode: %s" % mode)
            if reason:
                self.write("fallback reason: %s" % reason)
            if plan_text:
                self.write(plan_text)
            self.write(_cache_line(cache_info))
        elif command == ":save":
            if not argument:
                self.write("usage: :save <path>")
                return
            dump_json(self.engine.graph, argument)
            self.write("saved %s" % argument)
        elif command == ":load":
            if not argument:
                self.write("usage: :load <path>")
                return
            if self.session is not None:
                self.write("error: a transaction is open; "
                           ":commit or :rollback before :load")
                return
            try:
                graph = load_json(argument)
            except (OSError, CypherError, ValueError) as error:
                self.write("error: %s" % error)
                return
            self.engine.graph = graph
            self.engine.catalog.register("default", graph)
            self.engine.catalog.set_default("default")
            self.write(
                "loaded %d nodes, %d relationships"
                % (graph.node_count(), graph.relationship_count())
            )
        else:
            self.write("unknown command %s (try :help)" % command)

    def _schema(self):
        graph = self.engine.graph
        self.write(
            "%d nodes, %d relationships"
            % (graph.node_count(), graph.relationship_count())
        )
        labels = getattr(graph, "all_labels", lambda: [])()
        types = getattr(graph, "all_types", lambda: [])()
        if labels:
            self.write("labels: " + ", ".join(labels))
        if types:
            self.write("relationship types: " + ", ".join(types))
        indexes = getattr(graph, "indexes", lambda: [])()
        if indexes:
            self.write(
                "indexes: "
                + ", ".join(":%s(%s)" % pair for pair in indexes)
            )
        reach = getattr(graph, "reachability_indexes", lambda: [])()
        if reach:
            self.write(
                "reachability indexes: "
                + ", ".join(_reach_display(types) for types in reach)
            )

    def _index(self, argument):
        """``:index`` — list, create or drop property indexes."""
        graph = self.engine.graph
        if not argument:
            pairs = graph.indexes()
            if not pairs:
                self.write("no property indexes")
            else:
                stats = graph.index_statistics()
                for label, key in pairs:
                    ndv, entries = stats[(label, key)]
                    self.write(
                        "%s — %d distinct value(s), %d entr%s"
                        % (_index_display(label, key), ndv, entries,
                           "y" if entries == 1 else "ies")
                    )
            return
        dropping = argument.startswith("drop ")
        spec = argument[5:].strip() if dropping else argument
        parsed = _parse_index_spec(spec)
        if parsed is None:
            self.write("usage: :index [drop] :Label(key[,key…])")
            return
        label, keys = parsed
        display = _index_display(label, keys)
        if dropping:
            existed = graph.drop_index(
                label, keys[0] if len(keys) == 1 else keys
            )
            self.write(
                "dropped index %s" % display
                if existed
                else "no index %s" % display
            )
        elif graph.create_index(label, *keys):
            self.write("created index %s" % display)
        else:
            self.write("index %s already exists" % display)

    def _reach(self, argument):
        """``:reach`` — list, create or drop reachability indexes."""
        graph = self.engine.graph
        if not argument:
            declared = graph.reachability_indexes()
            if not declared:
                self.write("no reachability indexes")
            else:
                stats = graph.reachability_statistics()
                for types in declared:
                    facts = stats[types]
                    self.write(
                        "%s — %d node(s), %d edge(s), %d component(s)"
                        % (_reach_display(types), facts["nodes"],
                           facts["edges"], facts["components"])
                    )
            return
        dropping = argument.startswith("drop ")
        spec = argument[5:].strip() if dropping else argument
        ok, types = _parse_reach_spec(spec)
        if not ok:
            self.write("usage: :reach [drop] :T|U  (or * for all types)")
            return
        if dropping:
            existed = graph.drop_reachability_index(types)
            self.write(
                "dropped reachability index %s" % _reach_display(types)
                if existed
                else "no reachability index %s" % _reach_display(types)
            )
        elif graph.create_reachability_index(types):
            self.write(
                "created reachability index %s" % _reach_display(types)
            )
        else:
            self.write(
                "reachability index %s already exists" % _reach_display(types)
            )

    def _begin(self):
        """``:begin`` — open a session transaction for later statements."""
        if self.session is not None:
            self.write("error: a transaction is already open")
            return
        try:
            session = self.engine.session()
            session.__enter__()
            session.begin()
        except CypherError as error:
            self.write("error: %s" % error)
            return
        self.session = session
        self.write("transaction begun")

    def _finish_transaction(self, action):
        """``:commit`` / ``:rollback`` — close the open transaction."""
        session = self.session
        if session is None:
            self.write("error: no open transaction (try :begin)")
            return
        self.session = None
        try:
            getattr(session, action)()
        except CypherError as error:
            self.write("error: %s" % error)
            return
        finally:
            session.close()
        self.write("transaction %s" % (
            "committed" if action == "commit" else "rolled back"))

    def _timeout(self, argument):
        """``:timeout <ms>`` — per-statement limit; 0 or "off" disables."""
        if not argument:
            self.write(
                "timeout: unlimited" if self.timeout_ms is None
                else "timeout: %d ms" % self.timeout_ms
            )
            return
        if argument in ("off", "0"):
            self.timeout_ms = None
            self.write("timeout disabled")
            return
        try:
            millis = int(argument)
        except ValueError:
            millis = -1
        if millis <= 0:
            self.write("usage: :timeout <milliseconds>|off")
            return
        self.timeout_ms = millis
        self.write("timeout set to %d ms" % millis)

    def _query(self, text):
        timeout = None if self.timeout_ms is None else self.timeout_ms / 1000.0
        try:
            if self.session is not None:
                result = self.session.run(text, timeout=timeout)
            else:
                result = self.engine.run(text, timeout=timeout)
        except CypherError as error:
            self.write("error: %s" % error)
            return
        if result.columns:
            self.write(result.pretty())
            self.write("(%d row%s)" % (len(result), "" if len(result) == 1 else "s"))
        else:
            self.write("ok")
        for name, graph in result.graphs.items():
            self.write(
                "graph %r: %d nodes, %d relationships"
                % (name, graph.node_count(), graph.relationship_count())
            )

    # -- loop ------------------------------------------------------------------

    def run(self, lines=None):
        """Drive the shell from an iterable of lines (or stdin)."""
        source = lines if lines is not None else _stdin_lines()
        for line in source:
            if not self.handle(line):
                break


def _stdin_lines():
    while True:
        try:
            yield input("cypher> ")
        except EOFError:
            return


def bench_main(argv=None):
    """``python -m repro.cli bench``: run the perf suite, log medians.

    Drives pytest over the repository's ``benchmarks/`` directory; the
    benchmark conftest writes the per-benchmark median wall-times to
    ``BENCH_pipeline.json`` so successive PRs accumulate a perf
    trajectory.
    """
    import os

    parser = argparse.ArgumentParser(
        prog="repro.cli bench",
        description="run the benchmark suite and record medians",
    )
    parser.add_argument(
        "--output",
        help="path for the medians JSON (default: <repo>/BENCH_pipeline.json)",
    )
    parser.add_argument(
        "-k", dest="filter", help="only benchmarks matching this pytest -k expression"
    )
    parser.add_argument(
        "--pipeline-only",
        action="store_true",
        help="run only the p1/p2/p3/p4 pipeline benchmarks",
    )
    arguments = parser.parse_args(argv)

    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    bench_dir = os.path.join(repo_root, "benchmarks")
    if not os.path.isdir(bench_dir):
        print("error: no benchmarks/ directory next to the package "
              "(%s)" % bench_dir, file=sys.stderr)
        return 2
    # bench_*.py does not match pytest's default python_files pattern, so
    # the files are always passed explicitly.
    prefix = "bench_p" if arguments.pipeline_only else "bench_"
    targets = [
        os.path.join(bench_dir, name)
        for name in sorted(os.listdir(bench_dir))
        if name.startswith(prefix) and name.endswith(".py")
    ]
    pytest_argv = ["-q"] + targets
    if arguments.filter:
        pytest_argv += ["-k", arguments.filter]

    import pytest

    if not arguments.output:
        return pytest.main(pytest_argv)
    previous = os.environ.get("BENCH_PIPELINE_PATH")
    os.environ["BENCH_PIPELINE_PATH"] = arguments.output
    try:
        return pytest.main(pytest_argv)
    finally:
        if previous is None:
            os.environ.pop("BENCH_PIPELINE_PATH", None)
        else:
            os.environ["BENCH_PIPELINE_PATH"] = previous


def explain_main(argv=None):
    """``python -m repro.cli explain <query>``: execution-path report.

    Prints which path (slotted planner vs reference interpreter) would
    execute the query, the fallback reason if any, and the physical plan
    tree on the planner path — the observable face of the coverage
    metadata (``QueryResult.executed_by``), so coverage regressions are
    one shell command away.
    """
    parser = argparse.ArgumentParser(
        prog="repro.cli explain",
        description="show which execution path would run a query",
    )
    parser.add_argument("query", help="the Cypher query to explain")
    parser.add_argument("--graph", help="JSON graph file to plan against")
    parser.add_argument(
        "--index",
        action="append",
        default=[],
        metavar=":Label(key[,key...])",
        help="create a property index before planning (repeatable)",
    )
    parser.add_argument(
        "--reach-index",
        action="append",
        default=[],
        metavar=":T|U",
        help="create a reachability index over a relationship-type set "
        "before planning (* for all types; repeatable)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="also execute the query and report estimated vs actual "
        "rows per access path (plus per-worker morsel counts when "
        "parallel)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker count for parallel morsel execution (default 1)",
    )
    parser.add_argument(
        "--scheduler",
        choices=("thread", "serial"),
        help="scheduler backend when --workers > 1 (default: thread)",
    )
    arguments = parser.parse_args(argv)
    graph = load_json(arguments.graph) if arguments.graph else MemoryGraph()
    engine = CypherEngine(
        graph,
        mode="parallel" if arguments.workers > 1 else "auto",
        workers=arguments.workers,
        scheduler=arguments.scheduler,
    )
    for spec in arguments.index:
        parsed = _parse_index_spec(spec)
        if parsed is None:
            print("error: bad index spec %r (want :Label(key[,key…]))"
                  % spec, file=sys.stderr)
            return 2
        engine.create_index(parsed[0], *parsed[1])
    for spec in arguments.reach_index:
        ok, types = _parse_reach_spec(spec)
        if not ok:
            print("error: bad reachability spec %r (want :T|U or *)" % spec,
                  file=sys.stderr)
            return 2
        engine.create_reachability_index(types)
    try:
        executed_by, reason, plan_text, cache_info, mode = (
            engine.explain_info(arguments.query)
        )
    except CypherError as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
    print("executed by: %s" % executed_by)
    if mode:
        print("execution mode: %s" % mode)
    if reason:
        print("fallback reason: %s" % reason)
    if plan_text:
        print(plan_text)
    print(_cache_line(cache_info))
    if arguments.profile and executed_by == "planner":
        result = engine.run(arguments.query, profile=True)
        for line in _access_path_lines(result.access_paths):
            print(line)
        print("(%d row%s)" % (len(result), "" if len(result) == 1 else "s"))
    return 0


def ingest_main(argv=None):
    """``python -m repro.cli ingest``: bulk-load CSV tables into a store.

    Loads neo4j-admin-style CSV files (``:ID(ns)``/``:LABEL`` node
    tables, ``:START_ID``/``:END_ID``/``:TYPE`` relationship tables,
    typed property columns like ``age:int``) through the streaming
    bulk-ingest path with deferred index builds, prints the ingest
    report, and optionally saves the resulting graph as JSON.  With
    ``--generate`` the LDBC-style social dataset is generated at the
    given scale factor first and its CSV files become the input.
    """
    parser = argparse.ArgumentParser(
        prog="repro.cli ingest",
        description="bulk-load CSV tables through the streaming ingest path",
    )
    parser.add_argument(
        "sources",
        nargs="*",
        help="CSV files or a directory of them (node tables load first)",
    )
    parser.add_argument(
        "--generate",
        type=float,
        metavar="SCALE",
        help="generate the LDBC-style social dataset at this scale factor "
        "and ingest its CSV files",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="generator seed (default 0)"
    )
    parser.add_argument(
        "--out",
        help="directory for generated CSV files (default: a temp directory)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=1000,
        help="rows per bulk create (default 1000; 1 = per-row baseline)",
    )
    parser.add_argument(
        "--no-defer",
        action="store_true",
        help="maintain declared indexes per row instead of one rebuild "
        "at ingest end",
    )
    parser.add_argument(
        "--index",
        action="append",
        default=[],
        metavar=":Label(key[,key...])",
        help="declare a property index before ingest (repeatable)",
    )
    parser.add_argument(
        "--reach-index",
        action="append",
        default=[],
        metavar=":T|U",
        help="declare a reachability index before ingest (* for all "
        "types; repeatable)",
    )
    parser.add_argument("--save", help="write the loaded graph as JSON")
    arguments = parser.parse_args(argv)
    if bool(arguments.sources) == (arguments.generate is not None):
        print("error: pass CSV sources or --generate SCALE (not both)",
              file=sys.stderr)
        return 2
    graph = MemoryGraph()
    for spec in arguments.index:
        parsed = _parse_index_spec(spec)
        if parsed is None:
            print("error: bad index spec %r (want :Label(key[,key…]))"
                  % spec, file=sys.stderr)
            return 2
        graph.create_index(parsed[0], *parsed[1])
    for spec in arguments.reach_index:
        ok, types = _parse_reach_spec(spec)
        if not ok:
            print("error: bad reachability spec %r (want :T|U or *)" % spec,
                  file=sys.stderr)
            return 2
        graph.create_reachability_index(types)

    from repro.graph.ingest import IngestError, ingest_csv

    sources = arguments.sources
    temp_dir = None
    if arguments.generate is not None:
        from repro.datasets.ldbc_social import generate

        dataset = generate(scale=arguments.generate, seed=arguments.seed)
        directory = arguments.out
        if directory is None:
            import tempfile

            temp_dir = tempfile.TemporaryDirectory(prefix="repro-ldbc-")
            directory = temp_dir.name
        sources = dataset.write_csv(directory)
        print(
            "generated scale %g (seed %d): %s"
            % (
                arguments.generate,
                arguments.seed,
                ", ".join(
                    "%d %s" % (count, noun)
                    for noun, count in dataset.counts.items()
                ),
            )
        )
    try:
        report = ingest_csv(
            graph,
            sources,
            batch_size=arguments.batch_size,
            defer_indexes=not arguments.no_defer,
        )
    except (IngestError, OSError, ValueError) as error:
        print("error: %s" % error, file=sys.stderr)
        return 1
    finally:
        if temp_dir is not None and arguments.out is None:
            temp_dir.cleanup()
    print("ingested " + report.summary())
    for name, kind, rows in report.tables:
        print("  %-16s %-13s %d row(s)" % (name, kind, rows))
    print(
        "store: %d nodes, %d relationships"
        % (graph.node_count(), graph.relationship_count())
    )
    if arguments.save:
        dump_json(graph, arguments.save)
        print("saved %s" % arguments.save)
    return 0


def selftest_main(argv=None):
    """``python -m repro.cli selftest``: the differential smoke gate.

    Runs the small differential corpus (interpreter vs row planner vs
    batch engine, final stores compared on updates) plus the TCK smoke
    set — see :mod:`repro.selftest`.  Exit 0 on full agreement, 1 with
    the offending queries listed otherwise, so CI and pre-commit hooks
    can call it directly.
    """
    parser = argparse.ArgumentParser(
        prog="repro.cli selftest",
        description="run the row/batch/interpreter differential smoke suite",
    )
    parser.parse_args(argv)
    from repro.selftest import run_selftest

    return 1 if run_selftest() else 0


def main(argv=None):
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        return bench_main(argv[1:])
    if argv and argv[0] == "explain":
        return explain_main(argv[1:])
    if argv and argv[0] == "selftest":
        return selftest_main(argv[1:])
    if argv and argv[0] == "ingest":
        return ingest_main(argv[1:])
    parser = argparse.ArgumentParser(description="repro Cypher shell")
    parser.add_argument("--graph", help="JSON graph file to load")
    parser.add_argument("--query", help="run one query and exit")
    parser.add_argument(
        "--mode",
        choices=("auto", "interpreter", "planner", "row", "batch", "parallel"),
        default="auto",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker count for parallel morsel execution (default 1)",
    )
    parser.add_argument(
        "--scheduler",
        choices=("thread", "serial"),
        help="scheduler backend when --workers > 1 (default: thread)",
    )
    arguments = parser.parse_args(argv)
    graph = load_json(arguments.graph) if arguments.graph else MemoryGraph()
    engine = CypherEngine(
        graph,
        mode=arguments.mode,
        workers=arguments.workers,
        scheduler=arguments.scheduler,
    )
    shell = Shell(engine)
    if arguments.query:
        shell.handle(arguments.query)
        return 0
    shell.write("repro Cypher shell — :help for commands, :quit to leave")
    shell.run()
    return 0


if __name__ == "__main__":
    sys.exit(main())
