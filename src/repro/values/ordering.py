"""A total "orderability" order over all Cypher values.

The three-valued :func:`repro.values.comparison.compare` is partial (nulls
and mixed types are incomparable), but ORDER BY, DISTINCT and aggregation
grouping need a *total* order and a hashable canonical form.  openCypher
resolves this with a global orderability order; we implement a documented
variant of it:

    Map < Node < Relationship < List < Path < temporal < String
        < Boolean < Number < null

Within a type, values order naturally (numbers numerically with NaN greater
than every other number, strings lexicographically, booleans False < True,
lists/maps lexicographically on their canonical forms).  ``null`` sorts
last in ascending order, matching Neo4j's behaviour.
"""

from __future__ import annotations

import math

from repro.values.base import NodeId, RelId
from repro.values.path import Path

_RANK_MAP = 0
_RANK_NODE = 1
_RANK_REL = 2
_RANK_LIST = 3
_RANK_PATH = 4
_RANK_TEMPORAL = 5
_RANK_STRING = 6
_RANK_BOOLEAN = 7
_RANK_NUMBER = 8
_RANK_NULL = 9


def sort_key(value):
    """A key usable with ``sorted``; implements the total order above."""
    if value is None:
        return (_RANK_NULL,)
    if isinstance(value, bool):
        return (_RANK_BOOLEAN, value)
    if isinstance(value, (int, float)):
        if isinstance(value, float) and math.isnan(value):
            # NaN is the greatest number.
            return (_RANK_NUMBER, 1, 0.0)
        return (_RANK_NUMBER, 0, value)
    if isinstance(value, str):
        return (_RANK_STRING, value)
    if isinstance(value, NodeId):
        return (_RANK_NODE, value.value)
    if isinstance(value, RelId):
        return (_RANK_REL, value.value)
    if isinstance(value, Path):
        return (
            _RANK_PATH,
            tuple(sort_key(element) for element in value.interleaved()),
        )
    if isinstance(value, list):
        return (_RANK_LIST, tuple(sort_key(item) for item in value))
    if isinstance(value, dict):
        return (
            _RANK_MAP,
            tuple(
                (key, sort_key(item)) for key, item in sorted(value.items())
            ),
        )
    order = getattr(value, "cypher_order_key", None)
    if order is not None:
        return (_RANK_TEMPORAL, getattr(value, "cypher_type_name", ""), order())
    raise TypeError("value %r is not orderable" % (value,))


def canonical_key(value):
    """A hashable canonical form; equal values get equal keys.

    Used for DISTINCT, UNION de-duplication, grouping keys, and DISTINCT
    inside aggregates.  Integers and floats that are numerically equal
    collapse to the same key (Cypher's ``1 = 1.0`` is true); all NaNs
    collapse together so DISTINCT emits a single NaN.
    """
    if value is None:
        return ("null",)
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, (int, float)):
        if isinstance(value, float) and math.isnan(value):
            return ("nan",)
        return ("num", value)  # hash(1) == hash(1.0) in Python
    if isinstance(value, str):
        return ("str", value)
    if isinstance(value, NodeId):
        return ("node", value.value)
    if isinstance(value, RelId):
        return ("rel", value.value)
    if isinstance(value, Path):
        return (
            "path",
            tuple(canonical_key(element) for element in value.interleaved()),
        )
    if isinstance(value, list):
        return ("list", tuple(canonical_key(item) for item in value))
    if isinstance(value, dict):
        return (
            "map",
            tuple(
                (key, canonical_key(item))
                for key, item in sorted(value.items())
            ),
        )
    order = getattr(value, "cypher_order_key", None)
    if order is not None:
        return ("temporal", getattr(value, "cypher_type_name", ""), order())
    raise TypeError("value %r has no canonical form" % (value,))
