"""Small coercion and classification helpers shared across the engine."""

from __future__ import annotations

from repro.exceptions import CypherTypeError
from repro.values.base import NodeId, RelId


def is_number(value):
    """True for integers and floats, but not booleans."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def is_list_value(value):
    return isinstance(value, list)


def is_map_value(value):
    return isinstance(value, dict)


def is_entity(value):
    """True for node or relationship identifiers."""
    return isinstance(value, (NodeId, RelId))


def as_boolean(value, context="expression"):
    """Coerce to a ternary boolean; null passes through, non-bools fail."""
    if value is None or isinstance(value, bool):
        return value
    raise CypherTypeError(
        "%s must be a Boolean, got %r" % (context, value)
    )


def as_integer(value, context="expression"):
    """Coerce to an integer; null passes through, floats are rejected."""
    if value is None:
        return None
    if isinstance(value, int) and not isinstance(value, bool):
        return value
    raise CypherTypeError(
        "%s must be an Integer, got %r" % (context, value)
    )


def as_float(value, context="expression"):
    """Coerce a number to float; null passes through."""
    if value is None:
        return None
    if is_number(value):
        return float(value)
    raise CypherTypeError(
        "%s must be a number, got %r" % (context, value)
    )


def as_string(value, context="expression"):
    """Require a string; null passes through."""
    if value is None or isinstance(value, str):
        return value
    raise CypherTypeError(
        "%s must be a String, got %r" % (context, value)
    )


def as_list(value, context="expression"):
    """Require a list; null passes through."""
    if value is None or isinstance(value, list):
        return value
    raise CypherTypeError(
        "%s must be a List, got %r" % (context, value)
    )
