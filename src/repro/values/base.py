"""Identifier types and value-universe helpers.

The paper keeps the sets N (node ids) and R (relationship ids) disjoint from
the base types, so we wrap ids in dedicated classes rather than using bare
integers.  Both are immutable, hashable, and cheap.
"""

from __future__ import annotations


class _Identifier:
    """Common behaviour of node and relationship identifiers."""

    __slots__ = ("value", "_hash")
    _prefix = "id"

    def __init__(self, value):
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeError("identifier value must be an int, got %r" % (value,))
        object.__setattr__(self, "value", value)
        # Ids key every store dict and adjacency set, so they are hashed
        # far more often than constructed: precompute once.
        object.__setattr__(
            self, "_hash", hash((type(self).__name__, value))
        )

    def __setattr__(self, name, _value):
        raise AttributeError("identifiers are immutable")

    def __eq__(self, other):
        return type(other) is type(self) and other.value == self.value

    def __ne__(self, other):
        return not self.__eq__(other)

    def __hash__(self):
        return self._hash

    def __lt__(self, other):
        if type(other) is not type(self):
            return NotImplemented
        return self.value < other.value

    def __repr__(self):
        return "{}({})".format(type(self).__name__, self.value)

    def __str__(self):
        return "{}{}".format(self._prefix, self.value)


class NodeId(_Identifier):
    """An element of the set N of node identifiers."""

    __slots__ = ()
    _prefix = "n"


class RelId(_Identifier):
    """An element of the set R of relationship identifiers."""

    __slots__ = ()
    _prefix = "r"


def is_cypher_value(value):
    """Return True if ``value`` belongs to the value universe ``V``.

    Lists and maps are checked recursively; map keys must be strings
    (property keys are drawn from the set K of strings).  Exact-type
    checks on the scalar majority come first — this sits on the
    property-write hot path (one call per stored value).
    """
    value_type = type(value)
    if (
        value_type is int
        or value_type is str
        or value_type is float
        or value_type is bool
    ):
        return True
    from repro.values.path import Path

    if value is None or isinstance(value, (bool, str, NodeId, RelId, Path)):
        return True
    if isinstance(value, int):
        return True
    if isinstance(value, float):
        return True  # NaN and infinities are IEEE 754 values Cypher allows
    if isinstance(value, list):
        return all(is_cypher_value(item) for item in value)
    if isinstance(value, dict):
        return all(
            isinstance(key, str) and is_cypher_value(item)
            for key, item in value.items()
        )
    # Temporal values plug into the universe via duck typing: anything
    # exposing a `cypher_type_name` attribute is accepted.
    return hasattr(value, "cypher_type_name")


def type_name(value):
    """Human-readable Cypher type name for error messages and `EXPLAIN`."""
    from repro.values.path import Path

    if value is None:
        return "Null"
    if isinstance(value, bool):
        return "Boolean"
    if isinstance(value, int):
        return "Integer"
    if isinstance(value, float):
        return "Float"
    if isinstance(value, str):
        return "String"
    if isinstance(value, NodeId):
        return "Node"
    if isinstance(value, RelId):
        return "Relationship"
    if isinstance(value, Path):
        return "Path"
    if isinstance(value, list):
        return "List"
    if isinstance(value, dict):
        return "Map"
    name = getattr(value, "cypher_type_name", None)
    if name is not None:
        return name
    return type(value).__name__
