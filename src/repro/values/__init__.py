"""The Cypher value model (paper Section 4.1).

The set ``V`` of values is defined inductively in the paper:

* identifiers — node ids and relationship ids (:class:`NodeId`, :class:`RelId`);
* base types — integers and strings (plus floats, which every real
  implementation adds);
* ``true``, ``false`` and ``null`` (Python ``True``/``False``/``None``);
* lists and maps (Python ``list``/``dict`` with string keys);
* paths (:class:`Path`) — alternating node/relationship id sequences.

This package also supplies the ternary-logic machinery the paper inherits
from SQL: :func:`equals` / :func:`compare` return ``None`` for *unknown*,
and :mod:`repro.values.ordering` defines the total "orderability" order
used by ORDER BY and DISTINCT.
"""

from repro.values.base import (
    NodeId,
    RelId,
    is_cypher_value,
    type_name,
)
from repro.values.path import Path
from repro.values.comparison import (
    and3,
    compare,
    equals,
    is_true,
    not3,
    or3,
    xor3,
)
from repro.values.ordering import canonical_key, sort_key
from repro.values.coercion import (
    as_boolean,
    as_float,
    as_integer,
    is_list_value,
    is_map_value,
    is_number,
)

__all__ = [
    "NodeId",
    "RelId",
    "Path",
    "is_cypher_value",
    "type_name",
    "equals",
    "compare",
    "and3",
    "or3",
    "xor3",
    "not3",
    "is_true",
    "sort_key",
    "canonical_key",
    "is_number",
    "is_list_value",
    "is_map_value",
    "as_boolean",
    "as_integer",
    "as_float",
]
