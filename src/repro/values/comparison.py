"""Ternary-logic equality, comparison and connectives (paper Section 4.3).

"Just like SQL, Cypher uses 3-value logic for dealing with nulls" — the
truth values are ``True``, ``False`` and ``None`` (unknown).  This module
implements:

* :func:`equals` — the semantics of the ``=`` operator.  Values of
  different types are simply *not equal* (``False``), except that integers
  and floats compare numerically; any null involved yields ``None``, with
  the list/map rules propagating unknowns elementwise.
* :func:`compare` — the semantics of ``<``/``<=``/``>``/``>=``.  Returns
  ``-1``/``0``/``1`` or ``None`` when the comparison is undefined (nulls,
  or values of incomparable types, following openCypher).
* :func:`and3` / :func:`or3` / :func:`xor3` / :func:`not3` — the SQL
  connective tables.
"""

from __future__ import annotations

import math

from repro.values.base import NodeId, RelId
from repro.values.path import Path


# --------------------------------------------------------------------------
# Connectives
# --------------------------------------------------------------------------

def and3(left, right):
    """SQL three-valued AND."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def or3(left, right):
    """SQL three-valued OR."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def xor3(left, right):
    """SQL three-valued XOR: unknown if either side is unknown."""
    if left is None or right is None:
        return None
    return bool(left) != bool(right)


def not3(value):
    """SQL three-valued NOT."""
    if value is None:
        return None
    return not value


def is_true(value):
    """Strict truth test: only the boolean ``True`` passes a WHERE filter."""
    return value is True


# --------------------------------------------------------------------------
# Equality
# --------------------------------------------------------------------------

def _is_numeric(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def equals(left, right):
    """Cypher value equality; returns True, False or None (unknown)."""
    if left is None or right is None:
        return None
    if _is_numeric(left) and _is_numeric(right):
        if isinstance(left, float) and math.isnan(left):
            return False
        if isinstance(right, float) and math.isnan(right):
            return False
        return left == right
    if isinstance(left, bool) and isinstance(right, bool):
        return left == right
    if isinstance(left, str) and isinstance(right, str):
        return left == right
    if isinstance(left, NodeId) or isinstance(right, NodeId):
        return isinstance(left, NodeId) and isinstance(right, NodeId) and left == right
    if isinstance(left, RelId) or isinstance(right, RelId):
        return isinstance(left, RelId) and isinstance(right, RelId) and left == right
    if isinstance(left, Path) and isinstance(right, Path):
        return left == right
    if isinstance(left, list) and isinstance(right, list):
        return _equals_lists(left, right)
    if isinstance(left, dict) and isinstance(right, dict):
        return _equals_maps(left, right)
    if hasattr(left, "cypher_equals"):
        result = left.cypher_equals(right)
        if result is not NotImplemented:
            return result
    if hasattr(right, "cypher_equals"):
        result = right.cypher_equals(left)
        if result is not NotImplemented:
            return result
    # Different, non-null types are simply not equal.
    return False


def _equals_lists(left, right):
    if len(left) != len(right):
        return False
    saw_unknown = False
    for item_left, item_right in zip(left, right):
        verdict = equals(item_left, item_right)
        if verdict is False:
            return False
        if verdict is None:
            saw_unknown = True
    return None if saw_unknown else True


def _equals_maps(left, right):
    if set(left.keys()) != set(right.keys()):
        return False
    saw_unknown = False
    for key, item_left in left.items():
        verdict = equals(item_left, right[key])
        if verdict is False:
            return False
        if verdict is None:
            saw_unknown = True
    return None if saw_unknown else True


def not_equals(left, right):
    """The ``<>`` operator."""
    return not3(equals(left, right))


# --------------------------------------------------------------------------
# Ordering comparisons (< <= > >=)
# --------------------------------------------------------------------------

def compare(left, right):
    """Three-valued comparison: -1, 0, 1 or None (undefined).

    Numbers compare with numbers, strings with strings, booleans with
    booleans (False < True), and lists lexicographically with unknown
    propagation.  Everything else — including any null operand — is
    incomparable and yields ``None``.
    """
    if left is None or right is None:
        return None
    if _is_numeric(left) and _is_numeric(right):
        if (isinstance(left, float) and math.isnan(left)) or (
            isinstance(right, float) and math.isnan(right)
        ):
            return None
        if left < right:
            return -1
        if left > right:
            return 1
        return 0
    if isinstance(left, bool) and isinstance(right, bool):
        return (left > right) - (left < right)
    if isinstance(left, str) and isinstance(right, str):
        return (left > right) - (left < right)
    if isinstance(left, list) and isinstance(right, list):
        return _compare_lists(left, right)
    if hasattr(left, "cypher_compare"):
        result = left.cypher_compare(right)
        if result is not NotImplemented:
            return result
    if hasattr(right, "cypher_compare"):
        result = right.cypher_compare(left)
        if result is not NotImplemented:
            return -result if result is not None else None
    return None


def _compare_lists(left, right):
    for item_left, item_right in zip(left, right):
        verdict = compare(item_left, item_right)
        if verdict is None:
            return None
        if verdict != 0:
            return verdict
    return (len(left) > len(right)) - (len(left) < len(right))


def less(left, right):
    verdict = compare(left, right)
    return None if verdict is None else verdict < 0


def less_equal(left, right):
    verdict = compare(left, right)
    return None if verdict is None else verdict <= 0


def greater(left, right):
    verdict = compare(left, right)
    return None if verdict is None else verdict > 0


def greater_equal(left, right):
    verdict = compare(left, right)
    return None if verdict is None else verdict >= 0
