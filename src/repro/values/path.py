"""Path values (paper Section 4.1).

A path is either a single node ``path(n)`` or an alternating sequence
``path(n1, r1, n2, ..., r_{m-1}, n_m)``.  The paper writes these with the
shorthand ``n1 r1 n2 ... n_m`` and defines concatenation ``p1 · p2``, which
is possible only when the first path ends at the node where the second
starts.
"""

from __future__ import annotations

from repro.values.base import NodeId, RelId


class Path:
    """An immutable alternating sequence of node and relationship ids."""

    __slots__ = ("nodes", "relationships")

    def __init__(self, nodes, relationships=()):
        nodes = tuple(nodes)
        relationships = tuple(relationships)
        if not nodes:
            raise ValueError("a path must contain at least one node")
        if len(relationships) != len(nodes) - 1:
            raise ValueError(
                "a path over %d nodes needs exactly %d relationships, got %d"
                % (len(nodes), len(nodes) - 1, len(relationships))
            )
        for node in nodes:
            if not isinstance(node, NodeId):
                raise TypeError("path nodes must be NodeId, got %r" % (node,))
        for rel in relationships:
            if not isinstance(rel, RelId):
                raise TypeError(
                    "path relationships must be RelId, got %r" % (rel,)
                )
        object.__setattr__(self, "nodes", nodes)
        object.__setattr__(self, "relationships", relationships)

    def __setattr__(self, name, value):
        raise AttributeError("paths are immutable")

    # -- basic protocol ----------------------------------------------------

    def __eq__(self, other):
        return (
            isinstance(other, Path)
            and other.nodes == self.nodes
            and other.relationships == self.relationships
        )

    def __ne__(self, other):
        return not self.__eq__(other)

    def __hash__(self):
        return hash((self.nodes, self.relationships))

    def __len__(self):
        """The length of a path is its number of relationships."""
        return len(self.relationships)

    def __repr__(self):
        return "Path({})".format(" ".join(str(x) for x in self.interleaved()))

    # -- accessors ---------------------------------------------------------

    @property
    def start(self):
        """First node id of the path."""
        return self.nodes[0]

    @property
    def end(self):
        """Last node id of the path."""
        return self.nodes[-1]

    def interleaved(self):
        """Yield ``n1, r1, n2, ..., n_m`` in order (the paper's shorthand)."""
        for index, node in enumerate(self.nodes):
            yield node
            if index < len(self.relationships):
                yield self.relationships[index]

    def has_distinct_relationships(self):
        """True if no relationship id occurs twice (edge isomorphism)."""
        return len(set(self.relationships)) == len(self.relationships)

    # -- construction ------------------------------------------------------

    @classmethod
    def single(cls, node):
        """The trivial path ``path(n)``."""
        return cls((node,))

    def concat(self, other):
        """Paper's ``p1 · p2``; requires ``p1`` to end where ``p2`` starts."""
        if not isinstance(other, Path):
            raise TypeError("can only concatenate Path with Path")
        if self.end != other.start:
            raise ValueError(
                "cannot concatenate: %r does not end where %r starts"
                % (self, other)
            )
        return Path(
            self.nodes + other.nodes[1:],
            self.relationships + other.relationships,
        )

    def reverse(self):
        """The same traversal walked backwards."""
        return Path(tuple(reversed(self.nodes)), tuple(reversed(self.relationships)))
