"""The rewrite engine and its rules.

Expressions are transformed bottom-up with a generic dataclass rebuilder;
clause-level rules then walk the clause sequence.  Rules only fire when
the equivalence argument holds — e.g. constant folding never folds an
expression whose evaluation raises (``1/0`` must still raise at runtime),
and predicate pushdown requires the WITH to be a plain pass-through
projection.
"""

from __future__ import annotations

import dataclasses

from repro.ast import clauses as cl
from repro.ast import expressions as ex
from repro.ast import queries as qu
from repro.ast.expressions import contains_aggregate
from repro.exceptions import CypherError
from repro.graph.store import MemoryGraph
from repro.values.base import is_cypher_value

_MAX_PASSES = 5


# ---------------------------------------------------------------------------
# Generic bottom-up expression transformation
# ---------------------------------------------------------------------------

def _rebuild(node, transform):
    """Rebuild a frozen dataclass with transformed expression children."""
    if not dataclasses.is_dataclass(node):
        return node
    changes = {}
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        new_value = _rebuild_value(value, transform)
        if new_value is not value:
            changes[field.name] = new_value
    if not changes:
        return node
    return dataclasses.replace(node, **changes)


def _rebuild_value(value, transform):
    if isinstance(value, ex.Expression):
        return transform(value)
    if isinstance(value, tuple):
        rebuilt = tuple(_rebuild_value(item, transform) for item in value)
        if any(new is not old for new, old in zip(rebuilt, value)):
            return rebuilt
        return value
    return value


def transform_bottom_up(expression, rule):
    """Apply ``rule`` to every node, children first."""

    def visit(node):
        rebuilt = _rebuild(node, visit)
        return rule(rebuilt)

    return visit(expression)


# ---------------------------------------------------------------------------
# Expression rules
# ---------------------------------------------------------------------------

def _is_closed(node):
    """Closed = a literal, or a list/map literal of closed expressions."""
    if isinstance(node, ex.Literal):
        return True
    if isinstance(node, ex.ListLiteral):
        return all(_is_closed(item) for item in node.items)
    if isinstance(node, ex.MapLiteral):
        return all(_is_closed(value) for _key, value in node.items)
    return False


def _is_closed_literal_tree(node):
    """True if the node's expression children are all closed."""
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        if isinstance(value, ex.Expression) and not _is_closed(value):
            return False
        if isinstance(value, tuple):
            for item in value:
                if isinstance(item, ex.Expression) and not _is_closed(item):
                    return False
                if isinstance(item, tuple):
                    for sub in item:
                        if isinstance(sub, ex.Expression) and not _is_closed(sub):
                            return False
    return True


_FOLDABLE = (
    ex.Arithmetic,
    ex.Comparison,
    ex.BinaryLogic,
    ex.Not,
    ex.UnaryMinus,
    ex.UnaryPlus,
    ex.IsNull,
    ex.IsNotNull,
    ex.In,
    ex.StringPredicate,
    ex.ListIndex,
    ex.ListSlice,
)


def fold_constants(node):
    """Evaluate closed, pure sub-expressions at rewrite time.

    Sound because [[expr]]_{G,u} of a closed expression over literals
    depends on neither G nor u (Section 4.3 rules for these operators
    never consult the graph).  Expressions that *raise* are left alone so
    runtime errors are preserved.
    """
    if not isinstance(node, _FOLDABLE):
        return node
    if not _is_closed_literal_tree(node):
        return node
    from repro.semantics.expressions import Evaluator

    try:
        value = Evaluator(MemoryGraph()).evaluate(node, {})
    except CypherError:
        return node
    if not is_cypher_value(value):
        return node
    if isinstance(value, (list, dict)):
        # keep structure-producing folds only when they came from
        # indexing/slicing; list literals are already cheap
        if not isinstance(node, (ex.ListIndex, ex.ListSlice)):
            return node
    return ex.Literal(value)


def simplify_booleans(node):
    """Identity/absorbing elements and double negation, in 3VL.

    * NOT NOT x = x              (¬¬ is identity on {t, f, null});
    * x AND true = x, x AND false = false (false absorbs even null);
    * x OR false = x, x OR true = true    (true absorbs even null).
    """
    if isinstance(node, ex.Not) and isinstance(node.operand, ex.Not):
        return node.operand.operand
    if isinstance(node, ex.BinaryLogic):
        left, right = node.left, node.right
        sides = [(left, right), (right, left)]
        if node.operator == "AND":
            for constant, other in sides:
                if constant == ex.Literal(True):
                    return other
                if constant == ex.Literal(False):
                    return ex.Literal(False)
        if node.operator == "OR":
            for constant, other in sides:
                if constant == ex.Literal(False):
                    return other
                if constant == ex.Literal(True):
                    return ex.Literal(True)
    return node


def _expression_rules(node):
    return simplify_booleans(fold_constants(node))


def rewrite_expression(expression):
    """All expression-level rules, bottom-up, to a (bounded) fixpoint."""
    current = expression
    for _pass in range(_MAX_PASSES):
        rewritten = transform_bottom_up(current, _expression_rules)
        if rewritten == current:
            return rewritten
        current = rewritten
    return current


# ---------------------------------------------------------------------------
# Clause rules
# ---------------------------------------------------------------------------

def _rewrite_clause_expressions(clause):
    """Apply expression rules everywhere inside a clause."""

    def transform(value):
        if isinstance(value, ex.Expression):
            return rewrite_expression(value)
        return value

    return _rebuild_deep(clause, transform)


def _rebuild_deep(node, transform):
    if isinstance(node, ex.Expression):
        return transform(node)
    if not dataclasses.is_dataclass(node):
        return node
    changes = {}
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        new_value = _deep_value(value, transform)
        if new_value is not value:
            changes[field.name] = new_value
    if not changes:
        return node
    return dataclasses.replace(node, **changes)


def _deep_value(value, transform):
    if isinstance(value, ex.Expression):
        return transform(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _rebuild_deep(value, transform)
    if isinstance(value, tuple):
        rebuilt = tuple(_deep_value(item, transform) for item in value)
        if any(new is not old for new, old in zip(rebuilt, value)):
            return rebuilt
        return value
    return value


def drop_where_true(clause):
    """``MATCH π WHERE true`` ≡ ``MATCH π`` (Figure 7: WHERE true keeps
    every record); likewise for WITH."""
    if isinstance(clause, cl.Match) and clause.where == ex.Literal(True):
        return dataclasses.replace(clause, where=None)
    if isinstance(clause, cl.With) and clause.where == ex.Literal(True):
        return dataclasses.replace(clause, where=None)
    return clause


def _is_passthrough_projection(projection):
    """A WITH that merely re-exposes variables under their own names."""
    if projection.distinct or projection.order_by:
        return False
    if projection.skip is not None or projection.limit is not None:
        return False
    for item in projection.items:
        if not isinstance(item.expression, ex.Variable):
            return False
        if item.alias is not None and item.alias != item.expression.name:
            return False
        if contains_aggregate(item.expression):
            return False
    return True


def _scope_of(projection, incoming):
    names = set(incoming) if projection.star else set()
    for item in projection.items:
        names.add(item.alias or item.expression.name)
    return names


def push_filter_into_match(clauses):
    """MATCH π [WHERE p], WITH <passthrough> WHERE q  ⇒  fold q into MATCH.

    Sound because for a pass-through projection the WITH is the identity
    on the driving table restricted to the projected fields, and q only
    mentions those fields; by Figure 7 both orders compute
    σ_q([[MATCH π]](T)) before the same projection.
    """
    rewritten = []
    index = 0
    while index < len(clauses):
        clause = clauses[index]
        next_clause = clauses[index + 1] if index + 1 < len(clauses) else None
        if (
            isinstance(clause, cl.Match)
            and not clause.optional
            and isinstance(next_clause, cl.With)
            and next_clause.where is not None
            and _is_passthrough_projection(next_clause.projection)
            and not contains_aggregate(next_clause.where)
        ):
            condition = next_clause.where
            merged_where = (
                condition
                if clause.where is None
                else ex.BinaryLogic("AND", clause.where, condition)
            )
            rewritten.append(dataclasses.replace(clause, where=merged_where))
            rewritten.append(dataclasses.replace(next_clause, where=None))
            index += 2
            continue
        rewritten.append(clause)
        index += 1
    return rewritten


def rewrite_query(query):
    """Rewrite a whole query; the result is equivalent under Section 4."""
    if isinstance(query, qu.UnionQuery):
        return qu.UnionQuery(
            rewrite_query(query.left), rewrite_query(query.right), query.all
        )
    if not isinstance(query, qu.SingleQuery):
        return query
    clauses = [
        drop_where_true(_rewrite_clause_expressions(clause))
        for clause in query.clauses
    ]
    clauses = push_filter_into_match(clauses)
    clauses = [drop_where_true(clause) for clause in clauses]
    return qu.SingleQuery(tuple(clauses))
