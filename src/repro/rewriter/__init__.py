"""Semantics-preserving query rewrites (paper Sections 1 and 4).

"A formal semantics ... allows one to reason about the equivalence of
queries, and prove correctness of existing or discover new
optimizations."  This package puts that to work: a small optimizer of
AST→AST rules, each of which is *provably* equivalence-preserving under
the Section 4 semantics (the argument is written above each rule), and an
equivalence test-suite that checks the rewritten query produces the same
bag as the original on real graphs.

Rules shipped:

* constant folding of closed expressions (3VL-aware);
* boolean simplification (double negation, AND/OR identity and
  absorbing elements — all valid in three-valued logic);
* ``WHERE true`` elimination;
* fusing a pass-through ``WITH ... WHERE`` filter into the preceding
  MATCH (predicate pushdown), when provably safe.
"""

from repro.rewriter.rewrite import rewrite_expression, rewrite_query

__all__ = ["rewrite_query", "rewrite_expression"]
