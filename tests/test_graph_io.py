"""Unit tests for graph JSON round-trips and DOT export."""

import json

import pytest

from repro.exceptions import CypherRuntimeError
from repro.graph.builder import GraphBuilder
from repro.graph.io import (
    dump_json,
    graph_from_dict,
    graph_to_dict,
    load_json,
    to_dot,
)
from repro.graph.store import MemoryGraph


@pytest.fixture
def sample():
    return (
        GraphBuilder()
        .node("ann", "Person", name="Ann", tags=["x", "y"])
        .node("bob", "Person", "Admin", name="Bob")
        .rel("ann", "KNOWS", "bob", handle="k", since=2011)
        .build()
    )


class TestDictRoundTrip:
    def test_structure(self, sample):
        graph, ids = sample
        document = graph_to_dict(graph)
        assert len(document["nodes"]) == 2
        assert len(document["relationships"]) == 1
        rel = document["relationships"][0]
        assert rel["type"] == "KNOWS"
        assert rel["start"] == ids["ann"].value
        assert rel["end"] == ids["bob"].value

    def test_round_trip_preserves_everything(self, sample):
        graph, ids = sample
        rebuilt = graph_from_dict(graph_to_dict(graph))
        assert rebuilt.node_count() == graph.node_count()
        assert rebuilt.relationship_count() == graph.relationship_count()
        assert rebuilt.labels(ids["bob"]) == graph.labels(ids["bob"])
        assert rebuilt.properties(ids["ann"]) == graph.properties(ids["ann"])
        # ids preserved exactly
        assert rebuilt.has_node(ids["ann"])

    def test_round_trip_queries_agree(self, sample):
        from repro import CypherEngine

        graph, _ = sample
        rebuilt = graph_from_dict(graph_to_dict(graph))
        query = "MATCH (a)-[r:KNOWS]->(b) RETURN a.name, r.since, b.name"
        original = CypherEngine(graph).run(query)
        copied = CypherEngine(rebuilt).run(query)
        assert original.table.same_bag(copied.table)

    def test_malformed_document(self):
        with pytest.raises(CypherRuntimeError):
            graph_from_dict({"not": "a graph"})

    def test_empty_graph(self):
        rebuilt = graph_from_dict(graph_to_dict(MemoryGraph()))
        assert rebuilt.node_count() == 0


class TestJson:
    def test_dump_is_valid_json(self, sample):
        graph, _ = sample
        parsed = json.loads(dump_json(graph))
        assert set(parsed.keys()) == {"nodes", "relationships"}

    def test_file_round_trip(self, sample, tmp_path):
        graph, ids = sample
        path = str(tmp_path / "graph.json")
        dump_json(graph, path)
        loaded = load_json(path)
        assert loaded.node_count() == 2
        assert loaded.property_value(ids["ann"], "name") == "Ann"

    def test_load_from_string(self, sample):
        graph, _ = sample
        loaded = load_json(dump_json(graph))
        assert loaded.relationship_count() == 1


class TestDot:
    def test_dot_output_shape(self, sample):
        graph, ids = sample
        dot = to_dot(graph, name="Sample")
        assert dot.startswith("digraph Sample {")
        assert dot.rstrip().endswith("}")
        assert 'label="KNOWS"' in dot
        assert "Ann" in dot and "Person" in dot
        assert "n%d -> n%d" % (ids["ann"].value, ids["bob"].value) in dot

    def test_unnamed_nodes_get_id_labels(self):
        graph, _ = GraphBuilder().node("x").build()
        assert 'label="n1"' in to_dot(graph)


class TestIndexPersistence:
    """Declared indexes ride along in the JSON document (PR 6)."""

    def make_indexed(self):
        graph = (
            GraphBuilder()
            .node("a1", "Person", name="Ann", age=30)
            .node("a2", "Person", name="Bob", age=30)
            .node("a3", "City", name="Oslo")
            .rel("a1", "LIVES_IN", "a3")
            .build()[0]
        )
        graph.create_index("Person", "age")
        graph.create_index("Person", "name")
        graph.create_index("City", "name")
        return graph

    def test_document_lists_declared_indexes(self):
        document = graph_to_dict(self.make_indexed())
        assert document["indexes"] == [
            {"label": "City", "key": "name"},
            {"label": "Person", "key": "age"},
            {"label": "Person", "key": "name"},
        ]

    def test_round_trip_restores_index_statistics(self):
        graph = self.make_indexed()
        loaded = graph_from_dict(graph_to_dict(graph))
        assert loaded.indexes() == graph.indexes()
        # save -> load -> index_statistics must equal the live build
        assert loaded.index_statistics() == graph.index_statistics()
        for pair in graph.indexes():
            assert loaded.index_snapshot(*pair) == graph.index_snapshot(*pair)

    def test_file_round_trip_keeps_indexes(self, tmp_path):
        graph = self.make_indexed()
        path = str(tmp_path / "indexed.json")
        dump_json(graph, path)
        loaded = load_json(path)
        assert loaded.has_index("Person", "age")
        assert loaded.index_statistics() == graph.index_statistics()

    def test_no_indexes_key_when_none_declared(self):
        graph, _ = GraphBuilder().node("x", "L", v=1).build()
        assert "indexes" not in graph_to_dict(graph)


class TestReachabilityPersistence:
    """Reachability indexes ride along the same way (PR 8)."""

    def make_graph(self):
        graph = (
            GraphBuilder()
            .node("a", "N")
            .node("b", "N")
            .node("c", "N")
            .rel("a", "R", "b")
            .rel("b", "S", "c")
            .rel("c", "R", "a")  # closes a cycle across both types
            .build()[0]
        )
        graph.create_reachability_index()
        graph.create_reachability_index(["R"])
        graph.create_reachability_index(["R", "S"])
        return graph

    def test_document_lists_declared_type_sets(self):
        document = graph_to_dict(self.make_graph())
        assert document["reachability_indexes"] == [
            {"types": None},
            {"types": ["R"]},
            {"types": ["R", "S"]},
        ]

    def test_round_trip_restores_condensations(self):
        graph = self.make_graph()
        loaded = graph_from_dict(graph_to_dict(graph))
        assert loaded.reachability_indexes() == graph.reachability_indexes()
        assert (
            loaded.reachability_statistics() == graph.reachability_statistics()
        )
        for types in graph.reachability_indexes():
            assert loaded.reachability_snapshot(types) == (
                graph.reachability_snapshot(types)
            ), types

    def test_file_round_trip_keeps_reachability_indexes(self, tmp_path):
        graph = self.make_graph()
        path = str(tmp_path / "reach.json")
        dump_json(graph, path)
        loaded = load_json(path)
        assert loaded.has_reachability_index(["R"])
        assert loaded.has_reachability_index()
        assert (
            loaded.reachability_statistics() == graph.reachability_statistics()
        )

    def test_no_reachability_key_when_none_declared(self):
        graph, _ = GraphBuilder().node("x", "L", v=1).build()
        assert "reachability_indexes" not in graph_to_dict(graph)
