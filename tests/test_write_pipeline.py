"""The slotted write pipeline: Eager barriers, the store transaction,
planner ≡ interpreter on updating queries, and the plan-cache contract.

Three layers under test:

* **semantics** — read-after-write visibility: a clause's writes must
  not be visible to that clause's own reads (the Eager barrier), but
  must be visible to later clauses and, for MERGE, to later rows of the
  same clause;
* **store** — :class:`StoreTransaction`: deferred deletes in
  relationship-before-node order, the single version bump per commit,
  abandon() after errors;
* **engine** — update queries execute on the planner, and a write
  statement invalidates its own cached plan exactly once per execution
  (observable through the hit/miss counters in ``explain_info``).
"""

import pytest

from repro import CypherEngine
from repro.exceptions import (
    ConstraintViolation,
    CypherSemanticError,
    CypherTypeError,
)
from repro.graph.builder import GraphBuilder
from repro.graph.store import MemoryGraph
from repro.values.ordering import canonical_key


def graph_state(graph):
    """A canonical, id-inclusive snapshot of a graph's full contents."""
    nodes = sorted(
        (
            node.value,
            tuple(sorted(graph.labels(node))),
            canonical_key(graph.properties(node)),
        )
        for node in graph.nodes()
    )
    rels = sorted(
        (
            rel.value,
            graph.src(rel).value,
            graph.tgt(rel).value,
            graph.rel_type(rel),
            canonical_key(graph.properties(rel)),
        )
        for rel in graph.relationships()
    )
    return nodes, rels


def _seed_graph():
    builder = GraphBuilder()
    for index in range(3):
        builder.node("a%d" % index, "A", v=index, name="a-%d" % index)
    for index in range(2):
        builder.node("b%d" % index, "B", v=index, name="b-%d" % index)
    builder.rel("a0", "R", "a1", w=1)
    builder.rel("a1", "R", "a2", w=2)
    builder.rel("a0", "S", "b0", w=3)
    graph, _ = builder.build()
    return graph


def both_paths(queries):
    """Run the queries on two clones; returns (interp, planned, g1, g2)."""
    if isinstance(queries, str):
        queries = [queries]
    interpreter_graph = _seed_graph()
    planner_graph = _seed_graph()
    interpreter_engine = CypherEngine(interpreter_graph)
    planner_engine = CypherEngine(planner_graph)
    interpreted = planned = None
    for query in queries:
        interpreted = interpreter_engine.run(query, mode="interpreter")
        planned = planner_engine.run(query, mode="planner")
        assert planned.executed_by == "planner", query
    return interpreted, planned, interpreter_graph, planner_graph


def assert_agreement(queries):
    interpreted, planned, interpreter_graph, planner_graph = both_paths(
        queries
    )
    assert interpreted.table.same_bag(planned.table)
    assert graph_state(interpreter_graph) == graph_state(planner_graph)
    return planned


# ---------------------------------------------------------------------------
# Read-after-write visibility (the Eager barrier)
# ---------------------------------------------------------------------------

class TestSnapshotVisibility:
    def test_create_does_not_feed_its_own_scan(self):
        """MATCH (a) CREATE (:Copy): the scan must see only old nodes."""
        planned = assert_agreement("MATCH (n) CREATE (:Copy)")
        assert len(planned) == 5  # one row per pre-existing node

    def test_cross_product_create_self_interaction(self):
        """MATCH (a), (b) CREATE (a)-[:T]->(b): |A×B| edges, no feedback.

        The driving table is pinned with ORDER BY so both paths assign
        relationship ids in the same sequence; the unordered variant is
        covered by :meth:`test_unordered_create_same_edge_multiset`.
        """
        planned = assert_agreement(
            "MATCH (a:A), (b:B) WITH a, b ORDER BY a.name, b.name "
            "CREATE (a)-[:T]->(b) RETURN count(*) AS n"
        )
        assert planned.value() == 6  # 3 × 2 pairs

    def test_unordered_create_same_edge_multiset(self):
        """Without pinned row order the ids may differ, the edges not."""
        _, _, interpreter_graph, planner_graph = both_paths(
            "MATCH (a:A), (b:B) CREATE (a)-[:T]->(b)"
        )

        def edges(graph):
            return sorted(
                (graph.src(r).value, graph.tgt(r).value, graph.rel_type(r))
                for r in graph.relationships()
            )

        assert edges(interpreter_graph) == edges(planner_graph)

    def test_set_does_not_affect_its_own_where(self):
        """The WHERE reads the pre-clause snapshot, not fresh writes."""
        assert_agreement(
            "MATCH (a:A) WHERE a.v < 2 SET a.v = a.v + 10 "
            "RETURN a.v AS v ORDER BY v"
        )

    def test_delete_then_match_in_one_query(self):
        planned = assert_agreement(
            "MATCH (a:A) DETACH DELETE a "
            "WITH count(*) AS dropped MATCH (n) "
            "RETURN dropped, count(n) AS left"
        )
        assert planned.single() == {"dropped": 3, "left": 2}

    def test_create_then_match_sees_all_new_nodes(self):
        """A later MATCH sees every row's creation, not a prefix."""
        planned = assert_agreement(
            "UNWIND [1, 2] AS i CREATE (c:C {v: i}) "
            "WITH i MATCH (c:C) RETURN i, count(c) AS n"
        )
        # both driving rows observe both created nodes
        assert sorted(
            (record["i"], record["n"]) for record in planned.records
        ) == [(1, 2), (2, 2)]

    def test_merge_sees_rows_created_by_earlier_rows(self):
        planned = assert_agreement(
            "UNWIND [1, 1, 2] AS v MERGE (n:K {v: v}) RETURN count(*) AS c"
        )
        assert planned.value() == 3

    def test_merge_on_create_on_match_sequence(self):
        assert_agreement(
            "UNWIND [1, 1, 1, 2] AS v MERGE (n:K {v: v}) "
            "ON CREATE SET n.created = 1 "
            "ON MATCH SET n.matched = coalesce(n.matched, 0) + 1 "
            "RETURN n.v AS v, n.created AS c, n.matched AS m"
        )

    def test_merge_driven_by_earlier_merge_rows(self):
        """A MERGE whose driving table an earlier MERGE produced."""
        assert_agreement(
            "UNWIND [1, 2, 1] AS v MERGE (n:K {v: v}) "
            "MERGE (n)-[:OUT]->(:Sink {v: v}) "
            "RETURN count(*) AS c"
        )

    def test_stacked_update_clauses(self):
        assert_agreement(
            "MATCH (a:A) CREATE (a)-[:C]->(c:Copy {v: a.v}) "
            "SET c.doubled = c.v * 2 "
            "REMOVE a.name "
            "RETURN count(*) AS n"
        )


# ---------------------------------------------------------------------------
# Error parity between the two paths
# ---------------------------------------------------------------------------

class TestErrorParity:
    @pytest.mark.parametrize("mode", ["interpreter", "planner"])
    def test_delete_connected_node_without_detach(self, mode):
        engine = CypherEngine(_seed_graph())
        with pytest.raises(ConstraintViolation):
            engine.run("MATCH (a:A) DELETE a", mode=mode)

    @pytest.mark.parametrize("mode", ["interpreter", "planner"])
    def test_delete_node_with_its_relationships_needs_no_detach(self, mode):
        """Deleting the rels in the same clause satisfies plain DELETE."""
        engine = CypherEngine(_seed_graph())
        engine.run(
            "MATCH (a:A {v: 2}) OPTIONAL MATCH (a)-[r]-() DELETE r, a",
            mode=mode,
        )
        assert engine.graph.node_count() == 4

    @pytest.mark.parametrize("mode", ["interpreter", "planner"])
    def test_create_through_bound_non_node(self, mode):
        engine = CypherEngine(_seed_graph())
        with pytest.raises(CypherTypeError):
            engine.run("UNWIND [1] AS a CREATE (a)-[:R]->()", mode=mode)

    @pytest.mark.parametrize("mode", ["interpreter", "planner"])
    def test_create_bound_variable_with_labels(self, mode):
        engine = CypherEngine(_seed_graph())
        with pytest.raises(CypherSemanticError):
            engine.run("MATCH (a:A) CREATE (a:Extra)", mode=mode)

    @pytest.mark.parametrize("mode", ["interpreter", "planner"])
    def test_delete_non_entity(self, mode):
        engine = CypherEngine(_seed_graph())
        with pytest.raises(CypherTypeError):
            engine.run("UNWIND [1] AS x DELETE x", mode=mode)

    @pytest.mark.parametrize("mode", ["interpreter", "planner"])
    def test_set_whole_variable_requires_map(self, mode):
        engine = CypherEngine(_seed_graph())
        with pytest.raises(CypherTypeError):
            engine.run("MATCH (a:A) SET a = 5", mode=mode)


# ---------------------------------------------------------------------------
# StoreTransaction
# ---------------------------------------------------------------------------

class TestStoreTransaction:
    def test_single_version_bump_per_commit(self):
        graph = MemoryGraph()
        before = graph.version
        transaction = graph.write_transaction()
        nodes = [transaction.create_node(("N",), {"v": i}) for i in range(10)]
        for index in range(9):
            transaction.create_relationship(
                nodes[index], nodes[index + 1], "R", None
            )
        transaction.set_property(nodes[0], "x", 1)
        assert graph.version == before  # nothing bumped yet
        transaction.commit()
        assert graph.version == before + 1
        assert graph.node_count() == 10

    def test_creations_visible_before_commit(self):
        """Creates apply immediately; only the version bump is deferred."""
        graph = MemoryGraph()
        transaction = graph.write_transaction()
        node = transaction.create_node(("N",), {"v": 1})
        assert graph.has_node(node)
        assert list(graph.nodes_with_label("N")) == [node]
        transaction.commit()

    def test_deletes_deferred_until_flush(self):
        graph = MemoryGraph()
        node = graph.create_node(("N",), None)
        transaction = graph.write_transaction()
        transaction.delete_node(node, detach=True)
        assert graph.has_node(node)  # still visible: buffered
        transaction.flush()
        assert not graph.has_node(node)
        transaction.commit()

    def test_relationships_deleted_before_nodes(self):
        """A plain DELETE of node+rels in one flush needs no DETACH."""
        graph = MemoryGraph()
        a = graph.create_node((), None)
        b = graph.create_node((), None)
        rel = graph.create_relationship(a, b, "R", None)
        transaction = graph.write_transaction()
        transaction.delete_node(a, detach=False)
        transaction.delete_relationship(rel)
        transaction.flush()  # must not raise: rel goes first
        assert not graph.has_node(a)
        assert graph.has_node(b)

    def test_non_detach_delete_of_connected_node_fails_at_flush(self):
        graph = MemoryGraph()
        a = graph.create_node((), None)
        b = graph.create_node((), None)
        graph.create_relationship(a, b, "R", None)
        transaction = graph.write_transaction()
        transaction.delete_node(a, detach=False)
        with pytest.raises(ConstraintViolation):
            transaction.flush()

    def test_double_delete_collapses(self):
        graph = MemoryGraph()
        node = graph.create_node((), None)
        transaction = graph.write_transaction()
        transaction.delete_node(node, detach=True)
        transaction.delete_node(node, detach=True)
        transaction.commit()
        assert transaction.nodes_deleted == 1

    def test_empty_transaction_commits_without_bump(self):
        graph = MemoryGraph()
        before = graph.version
        graph.write_transaction().commit()
        assert graph.version == before

    def test_abandon_keeps_applied_changes_and_bumps(self):
        graph = MemoryGraph()
        before = graph.version
        transaction = graph.write_transaction()
        node = transaction.create_node(("N",), None)
        transaction.delete_node(node)  # pending, dropped by abandon
        transaction.abandon()
        assert graph.has_node(node)
        assert graph.version == before + 1

    def test_label_scan_correct_inside_transaction(self):
        """Unversioned label changes must not serve stale scan caches."""
        graph = MemoryGraph()
        node = graph.create_node(("L",), None)
        assert list(graph.nodes_with_label("L")) == [node]  # warm the cache
        transaction = graph.write_transaction()
        transaction.remove_label(node, "L")
        assert list(graph.nodes_with_label("L")) == []
        other = transaction.create_node(("L",), None)
        assert list(graph.nodes_with_label("L")) == [other]
        transaction.commit()

    @pytest.mark.parametrize("mode", ["interpreter", "planner"])
    def test_bulk_create_partial_failure_parity(self, mode):
        """A mid-batch validation error leaves the prefix, both paths.

        The failing row must not leak a phantom half-node or burn the
        id counter: the next create gets the next free id.
        """
        engine = CypherEngine(MemoryGraph())
        with pytest.raises(ValueError):
            engine.run(
                "UNWIND $xs AS i CREATE (:N {v: i})",
                parameters={"xs": [1, object()]},
                mode=mode,
            )
        graph = engine.graph
        assert graph.node_count() == 1  # row 1 landed, row 2 did not
        assert [graph.properties(n) for n in graph.nodes()] == [{"v": 1}]
        engine.run("CREATE (:After)", mode=mode)
        assert sorted(n.value for n in graph.nodes()) == [1, 2]

    def test_delete_value_collects_paths_and_lists(self):
        engine = CypherEngine(_seed_graph())
        engine.run(
            "MATCH p = (a:A)-[:R]->() DETACH DELETE p", mode="planner"
        )
        assert engine.graph.relationship_count() == 0
        assert engine.graph.node_count() == 2  # only the untouched :B pair


# ---------------------------------------------------------------------------
# Engine: plan cache across self-inflicted version bumps
# ---------------------------------------------------------------------------

class TestWritePlanCache:
    def test_write_query_is_cached_and_rehit(self):
        engine = CypherEngine(MemoryGraph())
        query = "CREATE (:X)"
        engine.run(query)
        hits_before = engine.plan_cache_hits
        engine.run(query)  # self-inflicted bump was re-stamped: a hit
        assert engine.plan_cache_hits == hits_before + 1
        assert engine.graph.node_count() == 2

    def test_stats_sensitive_write_plan_survives_own_bump(self):
        engine = CypherEngine(MemoryGraph())
        engine.run("CREATE (:K {v: 0})")
        query = "MERGE (n:K {v: 1}) ON MATCH SET n.seen = 1"
        engine.run(query)
        cached_before = engine._plan_cache[query][3]
        hits_before = engine.plan_cache_hits
        engine.run(query)
        assert engine.plan_cache_hits == hits_before + 1
        assert engine._plan_cache[query][3] is cached_before

    def test_reshaping_write_is_not_pardoned(self):
        """A stats-sensitive statement that blows up the graph re-plans.

        The self-bump pardon only holds while the store stays within 2x
        of the size the plan was costed against; past that the entry is
        left stale so the next execution re-plans on fresh statistics.
        """
        engine = CypherEngine(MemoryGraph())
        engine.run("CREATE (:A {v: 0})")
        query = "MATCH (a:A) CREATE (:A {v: a.v + 1})"  # doubles :A per run
        engine.run(query)
        cached_before = engine._plan_cache[query][3]
        engine.run(query)  # grows past 2x the planned size: not pardoned
        engine.run(query)  # next lookup evicts the stale entry, re-plans
        assert engine._plan_cache[query][3] is not cached_before

    def test_write_invalidates_other_plans_once_per_execution(self):
        """One statement, many mutated clauses — one version step."""
        engine = CypherEngine(MemoryGraph())
        engine.run("CREATE (:A {v: 1})")
        before = engine.graph.version
        engine.run(
            "CREATE (:B) WITH 1 AS one MATCH (b:B) "
            "SET b.v = 1 REMOVE b.v"
        )
        assert engine.graph.version == before + 1

    def test_interpreter_mode_never_counts_cache_traffic(self):
        engine = CypherEngine(MemoryGraph())
        engine.run("CREATE (:X)", mode="interpreter")
        assert engine.plan_cache_hits == 0
        assert engine.plan_cache_misses == 0

    def test_plan_cache_info_shape(self):
        engine = CypherEngine(MemoryGraph())
        engine.run("CREATE (:X)")
        engine.run("CREATE (:X)")
        info = engine.plan_cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 1
        assert info["hit_rate"] == 0.5


# ---------------------------------------------------------------------------
# Explain output
# ---------------------------------------------------------------------------

class TestExplainWriteOperators:
    def test_all_write_operators_render(self):
        engine = CypherEngine(_seed_graph())
        plans = {
            "create": engine.explain("MATCH (a:A) CREATE (a)-[:T]->(:New)"),
            "merge": engine.explain("MERGE (n:K {v: 1}) ON CREATE SET n.c = 1"),
            "set": engine.explain("MATCH (a:A) SET a.v = 1, a:Extra"),
            "remove": engine.explain("MATCH (a:A) REMOVE a.v, a:A"),
            "delete": engine.explain("MATCH (a:A) DETACH DELETE a"),
        }
        assert "Create(" in plans["create"] and "Eager" in plans["create"]
        assert "Merge(" in plans["merge"]
        assert "SetProperties(" in plans["set"] and "Eager" in plans["set"]
        assert "RemoveItems(" in plans["remove"]
        assert "DetachDelete(" in plans["delete"] and "Eager" in plans["delete"]

    def test_merge_plan_embeds_its_match_subplan(self):
        engine = CypherEngine(_seed_graph())
        text = engine.explain("MERGE (n:A {v: 99})")
        assert "Merge(n)" in text
        assert "NodeByLabelScan(n:A)" in text or "AllNodesScan(n)" in text
        assert "Argument" in text
