"""Differential harness: interpreter ≡ row planner ≡ batch planner.

Runs the *full* fuzz corpus (reads and updates, same generators as
``test_fuzz_queries`` via :mod:`fuzztools`) through all three executors
and holds them to:

* **identical result bags** — duplicates included, on every query;
* **byte-identical final stores** on updating queries (canonical,
  id-inclusive snapshots of clones, one per executor);
* **honest mode reporting** — a read plan the batch engine claims
  (:func:`repro.planner.batch.plan_supports_batch`) must actually run
  batched (``execution_mode == "batch"``), mode ``"row"`` must always
  run row-wise, and update statements must run row-wise even when batch
  execution is requested (their mutations batch through the store
  transaction instead).

This is the trust anchor for every future scaling PR: sharded or
concurrent execution modes get added to this same harness.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CypherEngine
from repro.planner.batch import plan_supports_batch

from fuzztools import (
    GRAPH,
    MORPHISMS,
    READ_STRATEGIES,
    comprehension_queries,
    create_update_queries,
    delete_queries,
    graph_state,
    match_queries,
    merge_queries,
    named_path_queries,
    pipeline_queries,
    set_remove_queries,
    two_clause_queries,
    two_hop_queries,
)


def _assert_read_differential(query, morphism=None):
    engine = (
        CypherEngine(GRAPH)
        if morphism is None
        else CypherEngine(GRAPH, morphism=MORPHISMS[morphism])
    )
    interpreted = engine.run(query, mode="interpreter")
    row = engine.run(query, mode="row")
    batch = engine.run(query, mode="batch")
    assert row.executed_by == "planner", query
    assert row.execution_mode == "row", query
    assert batch.executed_by == "planner", query
    if plan_supports_batch(batch.plan):
        # The claim is binding: a supported read plan must not silently
        # degrade to row execution.
        assert batch.execution_mode == "batch", query
    assert interpreted.table.same_bag(row.table), query
    assert interpreted.table.same_bag(batch.table), query


def _assert_update_differential(query):
    clones = {
        "interpreter": GRAPH.copy(),
        "row": GRAPH.copy(),
        "batch": GRAPH.copy(),
    }
    results = {
        mode: CypherEngine(graph).run(query, mode=mode)
        for mode, graph in clones.items()
    }
    assert results["row"].executed_by == "planner", query
    assert results["batch"].executed_by == "planner", query
    # Updates stay row-wise by design, whatever mode was requested.
    assert results["batch"].execution_mode == "row", query
    reference = results["interpreter"].table
    assert reference.same_bag(results["row"].table), query
    assert reference.same_bag(results["batch"].table), query
    reference_state = graph_state(clones["interpreter"])
    assert reference_state == graph_state(clones["row"]), query
    assert reference_state == graph_state(clones["batch"]), query


class TestReadDifferential:
    """Three-way agreement on every read strategy of the corpus."""

    @settings(max_examples=60, deadline=None)
    @given(query=match_queries())
    def test_match(self, query):
        _assert_read_differential(query)

    @settings(max_examples=50, deadline=None)
    @given(query=two_hop_queries())
    def test_two_hop(self, query):
        _assert_read_differential(query)

    @settings(max_examples=50, deadline=None)
    @given(query=pipeline_queries())
    def test_pipeline(self, query):
        _assert_read_differential(query)

    @settings(max_examples=40, deadline=None)
    @given(query=two_clause_queries())
    def test_optional_chain(self, query):
        _assert_read_differential(query)

    @settings(max_examples=50, deadline=None)
    @given(query=named_path_queries())
    def test_named_path(self, query):
        _assert_read_differential(query)

    @settings(max_examples=50, deadline=None)
    @given(query=comprehension_queries())
    def test_comprehension(self, query):
        _assert_read_differential(query)

    @settings(max_examples=40, deadline=None)
    @given(
        query=match_queries(),
        morphism=st.sampled_from(sorted(MORPHISMS)),
    )
    def test_match_under_all_morphisms(self, query, morphism):
        _assert_read_differential(query, morphism=morphism)


class TestUpdateDifferential:
    """Three-way agreement on updating queries, final stores included."""

    @settings(max_examples=50, deadline=None)
    @given(query=create_update_queries())
    def test_create(self, query):
        _assert_update_differential(query)

    @settings(max_examples=50, deadline=None)
    @given(query=set_remove_queries())
    def test_set_remove(self, query):
        _assert_update_differential(query)

    @settings(max_examples=25, deadline=None)
    @given(query=delete_queries())
    def test_delete(self, query):
        _assert_update_differential(query)

    @settings(max_examples=50, deadline=None)
    @given(query=merge_queries())
    def test_merge(self, query):
        _assert_update_differential(query)

    @settings(max_examples=30, deadline=None)
    @given(
        first=create_update_queries().filter(lambda q: " RETURN " not in q),
        second=set_remove_queries().filter(lambda q: " RETURN " not in q),
    )
    def test_read_after_update_stays_in_lockstep(self, first, second):
        """Mutate, then read back in all three modes on the same store."""
        clones = {
            "interpreter": GRAPH.copy(),
            "row": GRAPH.copy(),
            "batch": GRAPH.copy(),
        }
        probe = "MATCH (n) RETURN count(n) AS n"
        tables = {}
        for mode, graph in clones.items():
            engine = CypherEngine(graph)
            engine.run(first, mode=mode)
            engine.run(second, mode=mode)
            tables[mode] = engine.run(probe, mode=mode).table
        reference_state = graph_state(clones["interpreter"])
        assert reference_state == graph_state(clones["row"])
        assert reference_state == graph_state(clones["batch"])
        assert tables["interpreter"].same_bag(tables["row"])
        assert tables["interpreter"].same_bag(tables["batch"])


class TestBatchClaimSweep:
    """The published claim set is consistent with the corpus shapes."""

    def test_every_read_strategy_reaches_batch_mode(self):
        """Each strategy family contains plans the batch engine claims.

        Guards against the claim set silently shrinking to nothing for a
        whole query family (e.g. a new operator sneaking into every
        aggregation plan without a batch implementation).
        """
        samples = {
            "match": "MATCH (a:A)-[:R]->(b) RETURN a.v AS av, b.v AS bv",
            "two_hop": "MATCH (a)-[:R]->(b)-[:S]->(c) RETURN count(*) AS n",
            "pipeline": (
                "MATCH (a:A)-[:R]->(b) WITH a.v AS g, count(b) AS c "
                "RETURN g, c ORDER BY g"
            ),
            "aggregate": "MATCH (n) RETURN n.v AS v, count(*) AS c",
            "top_k": "MATCH (n) RETURN n.v AS v ORDER BY v DESC LIMIT 3",
        }
        assert set(READ_STRATEGIES) >= {"match", "two_hop", "pipeline"}
        for name, query in samples.items():
            result = CypherEngine(GRAPH).run(query, mode="batch")
            assert result.execution_mode == "batch", (name, query)

    def test_unsupported_shapes_report_row_mode(self):
        engine = CypherEngine(GRAPH)
        for query in (
            "MATCH (a)-[:R*1..2]->(b) RETURN count(*) AS n",  # var-length
            "MATCH p = (a)-[:R]->(b) RETURN length(p) AS l",  # named path
            "MATCH (a:A) OPTIONAL MATCH (a)-[:S]->(c) RETURN a, c",
            "RETURN 1 AS x UNION RETURN 2 AS x",
        ):
            result = engine.run(query, mode="batch")
            assert result.executed_by == "planner", query
            assert result.execution_mode == "row", query
