"""Differential harness: interpreter ≡ row ≡ batch ≡ parallel planner.

Runs the *full* fuzz corpus (reads and updates, same generators as
``test_fuzz_queries`` via :mod:`fuzztools`) through all four executors
and holds them to:

* **identical result bags** — duplicates included, on every query;
* **byte-identical final stores** on updating queries (canonical,
  id-inclusive snapshots of clones, one per executor);
* **honest mode reporting** — a read plan the batch engine claims
  (:func:`repro.planner.batch.plan_supports_batch`) must actually run
  batched (``execution_mode == "batch"``), mode ``"row"`` must always
  run row-wise, and update statements must run row-wise even when batch
  execution is requested (their mutations batch through the store
  transaction instead).

The parallel executor is held to a *stronger* bar than bag equality:
every read runs at several worker counts and morsel sizes
(:data:`PARALLEL_CONFIGS`), and a parallel-claimed plan
(:func:`repro.planner.parallel.plan_supports_parallel`) must produce
**record-identical output, order included**, to the serial batch engine
— the deterministic-merge guarantee — while its published
``parallelism`` record proves the run really partitioned (never silent
serial).  Merge determinism across *runs* and reads under snapshot pins
get their own test classes below.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CypherEngine
from repro.planner.batch import plan_supports_batch
from repro.planner.parallel import plan_supports_parallel

from fuzztools import (
    GRAPH,
    MORPHISMS,
    READ_STRATEGIES,
    comprehension_queries,
    create_update_queries,
    delete_queries,
    graph_state,
    match_queries,
    merge_queries,
    named_path_queries,
    pipeline_queries,
    set_remove_queries,
    two_clause_queries,
    two_hop_queries,
)


#: ``(workers, morsel_size)`` grid for the parallel sweep: the single
#: worker proves the degenerate case, the small morsel sizes force the
#: 9-node corpus graph into several partitions per run.
PARALLEL_CONFIGS = ((1, 7), (2, 4), (4, 4))


def _assert_read_differential(query, morphism=None):
    kwargs = {} if morphism is None else {"morphism": MORPHISMS[morphism]}
    engine = CypherEngine(GRAPH, **kwargs)
    interpreted = engine.run(query, mode="interpreter")
    row = engine.run(query, mode="row")
    batch = engine.run(query, mode="batch")
    assert row.executed_by == "planner", query
    assert row.execution_mode == "row", query
    assert batch.executed_by == "planner", query
    if plan_supports_batch(batch.plan):
        # The claim is binding: a supported read plan must not silently
        # degrade to row execution.
        assert batch.execution_mode == "batch", query
    assert interpreted.table.same_bag(row.table), query
    assert interpreted.table.same_bag(batch.table), query
    for workers, morsel_size in PARALLEL_CONFIGS:
        parallel_engine = CypherEngine(
            GRAPH, workers=workers, morsel_size=morsel_size, **kwargs
        )
        parallel = parallel_engine.run(query, mode="parallel")
        assert parallel.executed_by == "planner", (query, workers)
        assert interpreted.table.same_bag(parallel.table), (query, workers)
        if not plan_supports_parallel(parallel.plan):
            continue
        # Claimed plans must really run through the exchange, with the
        # exact record order of the serial batch engine (the
        # deterministic-merge contract) and — given enough source rows
        # — more than one partition (no silent serial).
        assert parallel.execution_mode == "parallel", (query, workers)
        assert parallel.records == batch.records, (query, workers)
        info = parallel.parallelism
        assert info["workers"] == workers, (query, workers)
        if workers > 1 and info["source_rows"] >= 2 * morsel_size:
            assert info["partitions"] > 1, (query, workers, info)


def _assert_update_differential(query):
    clones = {
        "interpreter": GRAPH.copy(),
        "row": GRAPH.copy(),
        "batch": GRAPH.copy(),
    }
    results = {
        mode: CypherEngine(graph).run(query, mode=mode)
        for mode, graph in clones.items()
    }
    assert results["row"].executed_by == "planner", query
    assert results["batch"].executed_by == "planner", query
    # Updates stay row-wise by design, whatever mode was requested.
    assert results["batch"].execution_mode == "row", query
    reference = results["interpreter"].table
    assert reference.same_bag(results["row"].table), query
    assert reference.same_bag(results["batch"].table), query
    reference_state = graph_state(clones["interpreter"])
    assert reference_state == graph_state(clones["row"]), query
    assert reference_state == graph_state(clones["batch"]), query


class TestReadDifferential:
    """Three-way agreement on every read strategy of the corpus."""

    @settings(max_examples=60, deadline=None)
    @given(query=match_queries())
    def test_match(self, query):
        _assert_read_differential(query)

    @settings(max_examples=50, deadline=None)
    @given(query=two_hop_queries())
    def test_two_hop(self, query):
        _assert_read_differential(query)

    @settings(max_examples=50, deadline=None)
    @given(query=pipeline_queries())
    def test_pipeline(self, query):
        _assert_read_differential(query)

    @settings(max_examples=40, deadline=None)
    @given(query=two_clause_queries())
    def test_optional_chain(self, query):
        _assert_read_differential(query)

    @settings(max_examples=50, deadline=None)
    @given(query=named_path_queries())
    def test_named_path(self, query):
        _assert_read_differential(query)

    @settings(max_examples=50, deadline=None)
    @given(query=comprehension_queries())
    def test_comprehension(self, query):
        _assert_read_differential(query)

    @settings(max_examples=40, deadline=None)
    @given(
        query=match_queries(),
        morphism=st.sampled_from(sorted(MORPHISMS)),
    )
    def test_match_under_all_morphisms(self, query, morphism):
        _assert_read_differential(query, morphism=morphism)


class TestUpdateDifferential:
    """Three-way agreement on updating queries, final stores included."""

    @settings(max_examples=50, deadline=None)
    @given(query=create_update_queries())
    def test_create(self, query):
        _assert_update_differential(query)

    @settings(max_examples=50, deadline=None)
    @given(query=set_remove_queries())
    def test_set_remove(self, query):
        _assert_update_differential(query)

    @settings(max_examples=25, deadline=None)
    @given(query=delete_queries())
    def test_delete(self, query):
        _assert_update_differential(query)

    @settings(max_examples=50, deadline=None)
    @given(query=merge_queries())
    def test_merge(self, query):
        _assert_update_differential(query)

    @settings(max_examples=30, deadline=None)
    @given(
        first=create_update_queries().filter(lambda q: " RETURN " not in q),
        second=set_remove_queries().filter(lambda q: " RETURN " not in q),
    )
    def test_read_after_update_stays_in_lockstep(self, first, second):
        """Mutate, then read back in all three modes on the same store."""
        clones = {
            "interpreter": GRAPH.copy(),
            "row": GRAPH.copy(),
            "batch": GRAPH.copy(),
        }
        probe = "MATCH (n) RETURN count(n) AS n"
        tables = {}
        for mode, graph in clones.items():
            engine = CypherEngine(graph)
            engine.run(first, mode=mode)
            engine.run(second, mode=mode)
            tables[mode] = engine.run(probe, mode=mode).table
        reference_state = graph_state(clones["interpreter"])
        assert reference_state == graph_state(clones["row"])
        assert reference_state == graph_state(clones["batch"])
        assert tables["interpreter"].same_bag(tables["row"])
        assert tables["interpreter"].same_bag(tables["batch"])


class TestBatchClaimSweep:
    """The published claim set is consistent with the corpus shapes."""

    def test_every_read_strategy_reaches_batch_mode(self):
        """Each strategy family contains plans the batch engine claims.

        Guards against the claim set silently shrinking to nothing for a
        whole query family (e.g. a new operator sneaking into every
        aggregation plan without a batch implementation).
        """
        samples = {
            "match": "MATCH (a:A)-[:R]->(b) RETURN a.v AS av, b.v AS bv",
            "two_hop": "MATCH (a)-[:R]->(b)-[:S]->(c) RETURN count(*) AS n",
            "pipeline": (
                "MATCH (a:A)-[:R]->(b) WITH a.v AS g, count(b) AS c "
                "RETURN g, c ORDER BY g"
            ),
            "aggregate": "MATCH (n) RETURN n.v AS v, count(*) AS c",
            "top_k": "MATCH (n) RETURN n.v AS v ORDER BY v DESC LIMIT 3",
            # In the claim since the frontier-BFS batch implementation.
            "var_length": "MATCH (a)-[:R*1..2]->(b) RETURN count(*) AS n",
        }
        assert set(READ_STRATEGIES) >= {"match", "two_hop", "pipeline"}
        for name, query in samples.items():
            result = CypherEngine(GRAPH).run(query, mode="batch")
            assert result.execution_mode == "batch", (name, query)

    def test_unsupported_shapes_report_row_mode(self):
        engine = CypherEngine(GRAPH)
        for query in (
            "MATCH p = (a)-[:R]->(b) RETURN length(p) AS l",  # named path
            "MATCH (a:A) OPTIONAL MATCH (a)-[:S]->(c) RETURN a, c",
            "RETURN 1 AS x UNION RETURN 2 AS x",
        ):
            result = engine.run(query, mode="batch")
            assert result.executed_by == "planner", query
            assert result.execution_mode == "row", query


#: Fixed shapes exercising each deterministic merge strategy.
_MERGE_QUERIES = (
    ("ordered", "MATCH (a)-[:R]->(b) RETURN a.v AS av, b.v AS bv"),
    ("aggregate", "MATCH (n) RETURN n.v AS v, count(*) AS c, collect(n.w) AS ws"),
    ("sort", "MATCH (n) RETURN n.v AS v, n.w AS w ORDER BY n.v DESC, n.w"),
    ("top", "MATCH (n) RETURN n.v AS v ORDER BY n.v LIMIT 4"),
    ("distinct", "MATCH (n) RETURN DISTINCT n.v AS v"),
)


class TestParallelMergeDeterminism:
    """Same records, same order, every run, every worker count."""

    @pytest.mark.parametrize("workers,morsel_size", PARALLEL_CONFIGS)
    @pytest.mark.parametrize(
        "merge,query", _MERGE_QUERIES, ids=[m for m, _q in _MERGE_QUERIES]
    )
    def test_merge_is_deterministic_across_runs(
        self, merge, query, workers, morsel_size
    ):
        serial = CypherEngine(GRAPH).run(query, mode="batch")
        engine = CypherEngine(GRAPH, workers=workers, morsel_size=morsel_size)
        first = engine.run(query, mode="parallel")
        second = engine.run(query, mode="parallel")
        assert first.execution_mode == "parallel"
        assert first.parallelism["merge"] == merge
        assert first.records == second.records
        assert first.records == serial.records

    def test_claimed_plans_never_run_silent_serial(self):
        """Multi-worker configs really partition and really leave the
        calling thread — the published-claim proof."""
        import threading

        engine = CypherEngine(GRAPH, workers=4, morsel_size=2)
        for _merge, query in _MERGE_QUERIES:
            result = engine.run(query, mode="parallel")
            info = result.parallelism
            assert info["partitions"] > 1, (query, info)
            assert any(
                ident != threading.get_ident()
                for ident in info["worker_threads"]
            ), (query, info)


class TestParallelSnapshotReads:
    """Workers read one pinned version, never a mid-transaction state."""

    def test_parallel_snapshot_ignores_concurrent_commits(self):
        graph = GRAPH.copy()
        engine = CypherEngine(graph, workers=4, morsel_size=2)
        with engine.session() as session:
            snapshot = session.snapshot()
            before = snapshot.run("MATCH (n) RETURN count(*) AS c", mode="parallel")
            engine.run("CREATE (:Zed {v: 1})")  # commits a new version
            after = snapshot.run("MATCH (n) RETURN count(*) AS c", mode="parallel")
            assert after.execution_mode == "parallel"
            assert after.parallelism["partitions"] > 1
            assert before.value() == after.value()
        assert engine.run("MATCH (n) RETURN count(*) AS c").value() == before.value() + 1

    def test_parallel_snapshot_invisible_to_uncommitted_writes(self):
        graph = GRAPH.copy()
        engine = CypherEngine(graph, workers=4, morsel_size=2)
        baseline = engine.run("MATCH (n) RETURN count(*) AS c").value()
        with engine.session() as writer:
            writer.begin()
            with engine.session() as reader:
                snapshot = reader.snapshot()
                writer.run("CREATE (:Zed {v: 1})")  # uncommitted
                seen = snapshot.run(
                    "MATCH (n) RETURN count(*) AS c", mode="parallel"
                )
                assert seen.parallelism["partitions"] > 1
                assert seen.value() == baseline
            writer.rollback()
        assert engine.run("MATCH (n) RETURN count(*) AS c").value() == baseline
