"""Streaming CSV ingest: batching, deferred indexes, exact rollback.

The contracts under test, in the order the module docstring states
them: (1) deferred-index ingest produces a store *and* indexes
byte-identical to incremental per-row maintenance (and to the direct
dataset emission the CSV came from); (2) a mid-stream failure of any
kind — dangling reference, duplicate id, malformed row, injected store
fault — rolls the store back to its exact pre-ingest state with the
declared indexes restored; (3) the header parser rejects malformed
table shapes up front.
"""

import os

import pytest

from repro import CypherEngine
from repro.datasets import ldbc_social
from repro.graph.ingest import IngestError, ingest_csv
from repro.graph.store import InjectedFault, MemoryGraph
from repro.selftest import graph_state

SCALE = 0.01
SEED = 11

PROPERTY_INDEXES = (("Person", "id"), ("Post", "id"))
REACHABILITY_INDEXES = (["KNOWS"], None)


def dataset():
    return ldbc_social(scale=SCALE, seed=SEED)


def tables(ds):
    return [
        (table.name + ".csv", list(ds.csv_lines(table)))
        for table in ds.tables
    ]


def indexed_graph():
    graph = MemoryGraph()
    for label, key in PROPERTY_INDEXES:
        graph.create_index(label, key)
    for types in REACHABILITY_INDEXES:
        graph.create_reachability_index(types)
    return graph


def index_snapshots(graph):
    return (
        [graph.index_snapshot(l, k) for l, k in PROPERTY_INDEXES],
        [graph.reachability_snapshot(t) for t in REACHABILITY_INDEXES],
    )


PEOPLE = [
    ":ID(P),:LABEL,name,age:int",
    "a,Person,Alice,31",
    "b,Person,Bob,",
]

KNOWS = [
    ":START_ID(P),:END_ID(P),:TYPE,since:int",
    "a,b,KNOWS,2010",
]


# ---------------------------------------------------------------------------
# Loading and batching
# ---------------------------------------------------------------------------

def test_ingest_small_tables_and_typed_columns():
    graph = MemoryGraph()
    report = ingest_csv(graph, [("people.csv", PEOPLE), ("knows.csv", KNOWS)])
    assert report.nodes_created == 2
    assert report.relationships_created == 1
    assert report.tables == [
        ("people.csv", "nodes", 2), ("knows.csv", "relationships", 1)
    ]
    engine = CypherEngine(graph)
    assert engine.run(
        "MATCH (p:Person {name: 'Alice'}) RETURN p.age AS a"
    ).values("a") == [31]
    # Empty cells are absent properties, not empty strings.
    assert engine.run(
        "MATCH (p:Person {name: 'Bob'}) RETURN p.age IS NULL AS missing"
    ).values("missing") == [True]
    assert engine.run(
        "MATCH (:Person {name: 'Alice'})-[k:KNOWS]->(b) "
        "RETURN k.since AS s, b.name AS n"
    ).records == [{"s": 2010, "n": "Bob"}]


def test_ingest_order_insensitive_relationships_before_nodes():
    """Node tables load first regardless of the argument order."""
    forward = MemoryGraph()
    ingest_csv(forward, [("people.csv", PEOPLE), ("knows.csv", KNOWS)])
    reversed_args = MemoryGraph()
    ingest_csv(reversed_args, [("knows.csv", KNOWS), ("people.csv", PEOPLE)])
    assert graph_state(forward) == graph_state(reversed_args)


def test_ingest_matches_direct_emission_across_batch_sizes():
    """CSV round-trip equals to_graph, any batch size, ids included."""
    ds = dataset()
    reference = graph_state(ds.to_graph("batch"))
    for batch_size in (1, 7, 1000):
        graph = MemoryGraph()
        ingest_csv(graph, tables(ds), batch_size=batch_size)
        assert graph_state(graph) == reference, batch_size


def test_ingest_from_directory_and_file_paths(tmp_path):
    ds = dataset()
    paths = ds.write_csv(str(tmp_path))
    assert all(os.path.exists(path) for path in paths)
    reference = graph_state(ds.to_graph("batch"))
    # File paths in canonical order: byte-identical to direct emission.
    from_files = MemoryGraph()
    ingest_csv(from_files, paths)
    assert graph_state(from_files) == reference
    # A directory loads its tables alphabetically — a different (but
    # deterministic) id assignment: same content, repeatable ids.
    from_dir = MemoryGraph()
    ingest_csv(from_dir, str(tmp_path))
    assert from_dir.node_count() == from_files.node_count()
    assert from_dir.relationship_count() == from_files.relationship_count()
    again = MemoryGraph()
    ingest_csv(again, str(tmp_path))
    assert graph_state(from_dir) == graph_state(again)


def test_engine_ingest_delegates():
    engine = CypherEngine()
    report = engine.ingest([("people.csv", PEOPLE), ("knows.csv", KNOWS)])
    assert report.nodes_created == 2
    assert engine.run("MATCH (p:Person) RETURN count(p) AS c").value() == 2


# ---------------------------------------------------------------------------
# Deferred vs incremental index maintenance
# ---------------------------------------------------------------------------

def test_deferred_indexes_identical_to_incremental():
    ds = dataset()
    deferred = indexed_graph()
    ingest_csv(deferred, tables(ds), defer_indexes=True)
    incremental = indexed_graph()
    ingest_csv(incremental, tables(ds), batch_size=1, defer_indexes=False)
    assert graph_state(deferred) == graph_state(incremental)
    assert index_snapshots(deferred) == index_snapshots(incremental)


def test_ingest_report_records_maintenance_strategy():
    ds = dataset()
    graph = indexed_graph()
    report = ingest_csv(graph, tables(ds), defer_indexes=True)
    assert report.deferred
    assert sorted(report.property_indexes) == sorted(PROPERTY_INDEXES)
    assert report.batches > 0
    assert "deferred" in report.summary()
    assert repr(report).startswith("IngestReport(")
    incremental = ingest_csv(
        indexed_graph(), tables(ds), defer_indexes=False
    )
    assert not incremental.deferred
    assert "incremental" in incremental.summary()


# ---------------------------------------------------------------------------
# Mid-stream failure: exact rollback, indexes restored
# ---------------------------------------------------------------------------

def pristine():
    """An indexed graph with unrelated pre-existing content."""
    graph = indexed_graph()
    engine = CypherEngine(graph)
    engine.run(
        "CREATE (a:Person {id: 'seed', name: 'Seed'})"
        "-[:KNOWS]->(b:Person {id: 'seed2'})"
    )
    return graph


def assert_rolled_back(graph, before_state, before_indexes):
    assert graph_state(graph) == before_state
    assert index_snapshots(graph) == before_indexes


@pytest.mark.parametrize("defer", [True, False], ids=["deferred", "incremental"])
def test_unresolved_reference_rolls_back(defer):
    graph = pristine()
    state, indexes = graph_state(graph), index_snapshots(graph)
    bad_rels = [
        ":START_ID(P),:END_ID(P),:TYPE",
        "a,b,KNOWS",
        "a,missing,KNOWS",
    ]
    with pytest.raises(IngestError, match="unresolved end id"):
        ingest_csv(
            graph, [("people.csv", PEOPLE), ("knows.csv", bad_rels)],
            defer_indexes=defer,
        )
    assert_rolled_back(graph, state, indexes)


def test_duplicate_id_rolls_back_across_and_within_batches():
    graph = pristine()
    state, indexes = graph_state(graph), index_snapshots(graph)
    duplicated = [
        ":ID(P),:LABEL,name",
        "a,Person,First",
        "a,Person,Again",
    ]
    for batch_size in (1, 1000):  # within one batch and across flushes
        with pytest.raises(IngestError, match="duplicate id"):
            ingest_csv(
                graph, [("people.csv", duplicated)], batch_size=batch_size
            )
        assert_rolled_back(graph, state, indexes)


def test_malformed_row_mid_stream_rolls_back():
    graph = pristine()
    state, indexes = graph_state(graph), index_snapshots(graph)
    bad_value = [
        ":ID(P),:LABEL,age:int",
        "a,Person,31",
        "b,Person,not-a-number",
    ]
    with pytest.raises(ValueError):
        ingest_csv(graph, [("people.csv", bad_value)])
    assert_rolled_back(graph, state, indexes)


class _SiteFault:
    """Raise :class:`InjectedFault` at one named mutation site."""

    def __init__(self, site):
        self.site = site

    def trip(self, site):
        if site == self.site:
            raise InjectedFault("injected crash at %r" % site)


@pytest.mark.parametrize("site", ["create_nodes", "create_rels"])
def test_injected_store_fault_rolls_back(site):
    graph = pristine()
    state, indexes = graph_state(graph), index_snapshots(graph)
    graph.install_fault_injector(_SiteFault(site))
    try:
        with pytest.raises(InjectedFault):
            ingest_csv(graph, [("people.csv", PEOPLE), ("knows.csv", KNOWS)])
    finally:
        graph.install_fault_injector(None)
    assert_rolled_back(graph, state, indexes)
    # And the same ingest succeeds once the fault is cleared.
    ingest_csv(graph, [("people.csv", PEOPLE), ("knows.csv", KNOWS)])
    assert graph.node_count() > 2


# ---------------------------------------------------------------------------
# Header and argument validation
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "header,message",
    [
        (":ID(P),:START_ID(P),:END_ID(P),:TYPE", "not both"),
        (":START_ID(P),:END_ID(P)", "without a :TYPE"),
        ("name,age:int", "neither :ID nor"),
        (":ID(P,:LABEL", "malformed id column"),
        (":ID(P),:WEIRD", "unknown reserved column"),
        (":ID(P),", "empty name"),
    ],
)
def test_malformed_headers_rejected(header, message):
    with pytest.raises(IngestError, match=message):
        ingest_csv(MemoryGraph(), [("table.csv", [header, "x,y"])])


def test_empty_file_and_empty_type_rejected():
    with pytest.raises(IngestError, match="empty file"):
        ingest_csv(MemoryGraph(), [("empty.csv", [])])
    with pytest.raises(IngestError, match="empty :TYPE"):
        ingest_csv(
            MemoryGraph(),
            [
                ("people.csv", PEOPLE),
                ("rels.csv", [":START_ID(P),:END_ID(P),:TYPE", "a,b,"]),
            ],
        )


def test_bad_bool_and_bad_batch_size_rejected():
    with pytest.raises(IngestError, match="bad bool"):
        ingest_csv(
            MemoryGraph(),
            [("people.csv", [":ID(P),ok:bool", "a,maybe"])],
        )
    with pytest.raises(ValueError, match="batch_size"):
        ingest_csv(MemoryGraph(), [("people.csv", PEOPLE)], batch_size=0)


def test_bool_and_float_values_parse():
    graph = MemoryGraph()
    ingest_csv(
        graph,
        [(
            "people.csv",
            [
                ":ID(P),:LABEL,active:bool,score:float",
                "a,Person,true,1.5",
                "b,Person,False,",
            ],
        )],
    )
    engine = CypherEngine(graph)
    assert engine.run(
        "MATCH (p:Person) RETURN p.active AS a, p.score AS s ORDER BY p.active"
    ).records == [{"a": False, "s": None}, {"a": True, "s": 1.5}]
