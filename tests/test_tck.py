"""Run every mini-TCK scenario suite on both execution paths, plus unit
tests for the runner itself."""

import pytest

from repro.tck import TckRunner, parse_feature
from repro.tck.scenarios import ALL_FEATURES


@pytest.mark.parametrize("name", sorted(ALL_FEATURES.keys()))
def test_feature_suite(name):
    TckRunner().run_feature(ALL_FEATURES[name])


class TestRunnerParsing:
    def test_parse_feature_structure(self):
        feature = parse_feature(ALL_FEATURES["match_basic"])
        assert feature.name == "MATCH basics"
        assert len(feature.scenarios) >= 10
        first = feature.scenarios[0]
        assert first.query is not None
        assert first.expected_columns is not None

    def test_unknown_step_rejected(self):
        with pytest.raises(ValueError):
            parse_feature("Scenario: x\n  Whenever something odd happens")

    def test_unterminated_block_rejected(self):
        with pytest.raises(ValueError):
            parse_feature(
                'Scenario: x\n  When executing query:\n    """\n    RETURN 1'
            )


class TestRunnerAssertions:
    def test_detects_wrong_expectation(self):
        feature = """
Feature: failing
  Scenario: wrong value
    Given an empty graph
    When executing query:
      '''
      RETURN 1 AS x
      '''
    Then the result should be, in any order:
      | x |
      | 2 |
"""
        with pytest.raises(AssertionError):
            TckRunner().run_feature(feature)

    def test_detects_extra_rows(self):
        feature = """
Feature: failing
  Scenario: extra row
    Given an empty graph
    When executing query:
      '''
      UNWIND [1, 2] AS x RETURN x
      '''
    Then the result should be, in any order:
      | x |
      | 1 |
"""
        with pytest.raises(AssertionError):
            TckRunner().run_feature(feature)

    def test_detects_wrong_order(self):
        feature = """
Feature: failing
  Scenario: order matters
    Given an empty graph
    When executing query:
      '''
      UNWIND [2, 1] AS x RETURN x ORDER BY x
      '''
    Then the result should be, in order:
      | x |
      | 2 |
      | 1 |
"""
        with pytest.raises(AssertionError):
            TckRunner().run_feature(feature)

    def test_node_descriptor_cells(self):
        feature = """
Feature: descriptors
  Scenario: node cells
    Given an empty graph
    And having executed:
      '''
      CREATE (:Person {name: 'Ann'})
      '''
    When executing query:
      '''
      MATCH (p:Person) RETURN p
      '''
    Then the result should be, in any order:
      | p                       |
      | (:Person {name: 'Ann'}) |
"""
        TckRunner().run_feature(feature)

    def test_relationship_descriptor_cells(self):
        feature = """
Feature: descriptors
  Scenario: relationship cells
    Given an empty graph
    And having executed:
      '''
      CREATE ()-[:KNOWS {since: 1999}]->()
      '''
    When executing query:
      '''
      MATCH ()-[r]->() RETURN r
      '''
    Then the result should be, in any order:
      | r                       |
      | [:KNOWS {since: 1999}]  |
"""
        TckRunner().run_feature(feature)

    def test_expected_error_mismatch_detected(self):
        feature = """
Feature: failing
  Scenario: expects an error that never comes
    Given an empty graph
    When executing query:
      '''
      RETURN 1 AS x
      '''
    Then a TypeError should be raised
"""
        with pytest.raises(AssertionError):
            TckRunner().run_feature(feature)
