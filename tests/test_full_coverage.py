"""Full-coverage planner: named paths, morphisms, comprehensions, metadata.

The planner now covers the entire read language; these tests pin that
down from several angles: bag-equality between planner and interpreter
on the constructs that used to fall back (named paths, node-isomorphism
matching, comprehensions/quantifiers/reduce), the ``executed_by``
result metadata and ``repro.cli explain`` surface, and the bounded-LRU
plan cache with statistics-insensitive invalidation.
"""

import pytest

from repro import CypherEngine
from repro.exceptions import CypherSemanticError
from repro.graph.builder import GraphBuilder
from repro.graph.store import MemoryGraph
from repro.parser import parse_query
from repro.planner import plan_query
from repro.planner.planning import plan_depends_on_statistics
from repro.semantics.morphism import (
    EDGE_ISOMORPHISM,
    HOMOMORPHISM,
    NODE_ISOMORPHISM,
    Morphism,
)
from repro.values.path import Path


def rich_graph():
    """Cycles, a self-loop, parallel-ish edges and a rare label."""
    builder = GraphBuilder()
    for index in range(7):
        builder.node("n%d" % index, ["A", "B"][index % 2], v=index)
    builder.node("rare", "Rare", v=100)
    edges = [
        (0, 1, "R"), (1, 2, "R"), (2, 0, "R"), (2, 3, "S"), (3, 4, "S"),
        (4, 5, "R"), (5, 5, "R"), (1, 4, "S"), (6, 0, "R"),
    ]
    for source, target, rel_type in edges:
        builder.rel("n%d" % source, rel_type, "n%d" % target, w=source + target)
    builder.rel("n3", "R", "rare", w=50)
    builder.rel("rare", "S", "n6", w=51)
    graph, _ = builder.build()
    return graph


GRAPH = rich_graph()

NEW_CONSTRUCT_CORPUS = [
    # named paths
    "MATCH p = (a)-[:R]->(b) RETURN length(p) AS l, a.v AS av",
    "MATCH p = (a)-[:R*1..3]->(b) RETURN [x IN nodes(p) | x.v] AS vs",
    "MATCH p = (a)-[:R*0..2]-(b) RETURN length(p) AS l, b.v AS bv",
    "MATCH p = (a:A)-[:R]->(b)-[:S]->(c) RETURN length(p) AS l",
    "MATCH p = (a) RETURN size(nodes(p)) AS n, length(p) AS l",
    "MATCH p = (a)-[:R]->(b:Rare) RETURN [x IN nodes(p) | x.v] AS vs",
    "MATCH p = (a)-[:R]->(b) RETURN p",
    "MATCH p = (a)-[:R]->(b), q = (b)-[:S]->(c) "
    "RETURN length(p) + length(q) AS l",
    "MATCH (x:Rare) MATCH p = (x)-[:S]->(y) RETURN length(p) AS l, y.v AS yv",
    "MATCH (x) OPTIONAL MATCH p = (x)-[:S]->(y) RETURN x.v AS xv, p",
    # comprehensions / quantifiers / reduce
    "MATCH (a) RETURN [x IN [1, 2, 3] WHERE x > a.v | x * 10] AS xs",
    "MATCH (a) WHERE all(x IN [a.v, 1] WHERE x >= 0) RETURN a.v AS v",
    "MATCH (a) WHERE single(x IN [a.v] WHERE x = 2) RETURN a.v AS v",
    "MATCH (a) RETURN reduce(s = 0, x IN [1, 2, a.v] | s + x) AS total",
    "MATCH (a) RETURN [(a)-[r:R]->(b) WHERE r.w > 2 | b.v] AS bs",
    "MATCH (a) WHERE exists((a)-[:S]->(b) WHERE b.v > 3) RETURN a.v AS v",
    "MATCH (a) WHERE (a)-[:R]->(:B) RETURN a.v AS v",
    # interactions
    "MATCH p = (a)-[:R*1..2]->(b) "
    "WHERE all(r IN relationships(p) WHERE r.w >= 0) RETURN length(p) AS l",
    "MATCH p = (a)-[:R]->(b) RETURN reduce(s = 0, x IN nodes(p) | s + x.v) AS s",
    "MATCH (a)-[:R]->(a) RETURN count(*) AS loops",
    "MATCH (a)-[:R*1..3]->(b)-[:R]->(c) RETURN a.v AS av, c.v AS cv",
    "MATCH (a)-[r1:R*1..2]->(b)-[r2:R*1..2]->(c) "
    "RETURN size(r1) + size(r2) AS hops",
]

ALL_MORPHISMS = [
    pytest.param(EDGE_ISOMORPHISM, id="edge"),
    pytest.param(NODE_ISOMORPHISM, id="node"),
    pytest.param(HOMOMORPHISM, id="homomorphism"),
]


class TestNewConstructCrossCheck:
    """Planner ≡ interpreter on the constructs that used to fall back."""

    @pytest.mark.parametrize("query", NEW_CONSTRUCT_CORPUS)
    @pytest.mark.parametrize("morphism", ALL_MORPHISMS)
    def test_bag_equality(self, query, morphism):
        engine = CypherEngine(GRAPH, morphism=morphism)
        interpreted = engine.run(query, mode="interpreter")
        planned = engine.run(query, mode="planner")
        assert planned.executed_by == "planner", query
        assert interpreted.table.same_bag(planned.table), (
            "disagreement on %r under %s:\n%s\nvs\n%s"
            % (query, morphism.mode, interpreted.records, planned.records)
        )

    def test_node_isomorphism_forbids_revisits(self):
        engine = CypherEngine(GRAPH, morphism=NODE_ISOMORPHISM)
        loops = engine.run(
            "MATCH (a)-[:R]->(a) RETURN count(*) AS n", mode="planner"
        )
        assert loops.value() == 0  # the n5 self-loop is a revisit
        edge = CypherEngine(GRAPH, morphism=EDGE_ISOMORPHISM)
        assert edge.run(
            "MATCH (a)-[:R]->(a) RETURN count(*) AS n", mode="planner"
        ).value() == 1

    def test_max_length_tightens_explicit_bounds(self):
        """The morphism cap must clip *m..n ranges on both paths."""
        capped = Morphism("edge-isomorphism", max_length=1)
        engine = CypherEngine(GRAPH, morphism=capped)
        interpreted = engine.run(
            "MATCH (a)-[:R*1..3]->(b) RETURN count(*) AS n", mode="interpreter"
        )
        planned = engine.run(
            "MATCH (a)-[:R*1..3]->(b) RETURN count(*) AS n", mode="planner"
        )
        assert interpreted.value() == planned.value()


class TestNamedPathValues:
    def test_path_value_is_in_pattern_order(self):
        # The planner enters through :Rare (cheap end) and walks the
        # chain backwards; the path must still read left to right.
        engine = CypherEngine(GRAPH)
        planned = engine.run(
            "MATCH p = (a)-[:R]->(b:Rare) RETURN p", mode="planner"
        )
        path = planned.value()
        assert isinstance(path, Path)
        assert len(path) == 1
        assert GRAPH.labels(path.nodes[-1]) == {"Rare"}

    def test_single_node_path(self, ):
        engine = CypherEngine(GRAPH)
        result = engine.run(
            "MATCH p = (a:Rare) RETURN length(p) AS l", mode="planner"
        )
        assert result.value() == 0

    def test_var_length_path_reconstructs_intermediates(self):
        engine = CypherEngine(GRAPH)
        planned = engine.run(
            "MATCH p = (a {v: 0})-[:R*2]->(b) RETURN [x IN nodes(p) | x.v] AS vs",
            mode="planner",
        )
        interpreted = engine.run(
            "MATCH p = (a {v: 0})-[:R*2]->(b) RETURN [x IN nodes(p) | x.v] AS vs",
            mode="interpreter",
        )
        assert planned.table.same_bag(interpreted.table)
        assert all(len(record["vs"]) == 3 for record in planned.records)


class TestExecutionMetadata:
    def test_read_query_reports_planner(self):
        engine = CypherEngine(GRAPH)
        result = engine.run("MATCH (n) RETURN count(*) AS n")
        assert result.executed_by == "planner"
        assert result.fallback_reason is None

    def test_update_reports_planner(self):
        engine = CypherEngine(MemoryGraph())
        result = engine.run("CREATE (:X)")
        assert result.executed_by == "planner"
        assert result.fallback_reason is None
        assert engine.graph.node_count() == 1

    def test_graph_clause_reports_interpreter_with_reason(self):
        engine = CypherEngine(MemoryGraph())
        result = engine.run("FROM GRAPH default MATCH (a) RETURN a")
        assert result.executed_by == "interpreter"
        assert "FromGraph" in result.fallback_reason

    def test_forced_interpreter_mode_is_recorded(self):
        engine = CypherEngine(GRAPH)
        result = engine.run("MATCH (n) RETURN count(*) AS n", mode="interpreter")
        assert result.executed_by == "interpreter"
        assert result.fallback_reason == "mode=interpreter"

    def test_cached_plan_hits_report_planner(self):
        engine = CypherEngine(GRAPH)
        engine.run("MATCH (n) RETURN count(*) AS n")
        result = engine.run("MATCH (n) RETURN count(*) AS n")  # cache hit
        assert result.executed_by == "planner"

    def test_explain_info_planner_path(self):
        engine = CypherEngine(GRAPH)
        executed_by, reason, plan_text, cache_info, mode = (
            engine.explain_info("MATCH p = (a)-->(b) RETURN p")
        )
        assert executed_by == "planner"
        assert reason is None
        assert "ProjectPath" in plan_text
        assert set(cache_info) >= {"hits", "misses", "hit_rate"}
        assert mode == "row"  # named paths stay on the row engine

    def test_explain_info_update_path_renders_barriers(self):
        engine = CypherEngine(GRAPH)
        executed_by, reason, plan_text, _cache, mode = engine.explain_info(
            "MATCH (a) SET a.v = 1"
        )
        assert executed_by == "planner"
        assert reason is None
        assert "Eager" in plan_text
        assert "SetProperties" in plan_text
        assert mode == "row"  # write plans never batch

    def test_explain_info_fallback_path(self):
        engine = CypherEngine(GRAPH)
        executed_by, reason, plan_text, _cache, mode = engine.explain_info(
            "FROM GRAPH default MATCH (a) RETURN a"
        )
        assert executed_by == "interpreter"
        assert "FromGraph" in reason
        assert plan_text is None
        assert mode is None

    def test_cli_explain_subcommand(self, capsys):
        from repro.cli import main

        assert main(["explain", "MATCH (n) RETURN n"]) == 0
        out = capsys.readouterr().out
        assert "executed by: planner" in out
        assert "AllNodesScan" in out
        assert "plan cache:" in out
        assert main(["explain", "MATCH (n) CREATE (m) SET n.x = 1"]) == 0
        out = capsys.readouterr().out
        assert "executed by: planner" in out
        assert "Eager" in out
        assert "Create(m)" in out
        assert "SetProperties" in out
        assert main(["explain", "FROM GRAPH g MATCH (a) RETURN a"]) == 0
        out = capsys.readouterr().out
        assert "executed by: interpreter" in out
        assert "fallback reason" in out


class TestPlanCache:
    def test_cache_is_bounded_lru(self):
        engine = CypherEngine(GRAPH)
        limit = engine._PLAN_CACHE_LIMIT
        for index in range(limit + 20):
            engine.run("MATCH (n) RETURN %d AS x" % index)
        assert len(engine._plan_cache) == limit

    def test_recently_used_plans_survive_eviction(self):
        engine = CypherEngine(GRAPH)
        limit = engine._PLAN_CACHE_LIMIT
        hot = "MATCH (n) RETURN -1 AS x"
        engine.run(hot)
        for index in range(limit - 1):
            engine.run("MATCH (n) RETURN %d AS x" % index)
            engine.run(hot)  # keep it recent
        assert hot in engine._plan_cache
        engine.run("MATCH (n) RETURN 999999 AS x")
        assert hot in engine._plan_cache  # an older entry was evicted instead

    def test_stats_insensitive_plans_survive_mutations(self):
        engine = CypherEngine(MemoryGraph())
        engine.run("CREATE (:X {v: 1})")
        query = "MATCH (n) RETURN n.v AS v"
        engine.run(query)
        cached_before = engine._plan_cache[query][3]
        engine.run("CREATE (:Y {v: 2})")  # mutates the store
        result = engine.run(query)
        assert sorted(result.values("v")) == [1, 2]
        assert engine._plan_cache[query][3] is cached_before

    def test_stats_sensitive_plans_replan_after_mutations(self):
        engine = CypherEngine(MemoryGraph())
        engine.run("CREATE (:X {v: 1})")
        query = "MATCH (n:X) RETURN n.v AS v"
        engine.run(query)
        cached_before = engine._plan_cache[query][3]
        engine.run("CREATE (:X {v: 2})")
        engine.run(query)
        assert engine._plan_cache[query][3] is not cached_before

    def test_parameterised_reruns_reuse_plans(self):
        engine = CypherEngine(MemoryGraph())
        engine.run("CREATE (:X {v: 1})")
        query = "MATCH (n) WHERE n.v = $target RETURN count(*) AS c"
        assert engine.run(query, parameters={"target": 1}).value() == 1
        cached = engine._plan_cache[query][3]
        engine.run("CREATE (:X {v: 2})")
        assert engine.run(query, parameters={"target": 2}).value() == 1
        assert engine._plan_cache[query][3] is cached

    def test_stats_sensitivity_classifier(self):
        graph = GRAPH
        insensitive = plan_query(parse_query("MATCH (n) RETURN n"), graph)
        assert not plan_depends_on_statistics(insensitive)
        no_match = plan_query(parse_query("RETURN 1 AS x"), graph)
        assert not plan_depends_on_statistics(no_match)
        labelled = plan_query(parse_query("MATCH (n:A) RETURN n"), graph)
        assert plan_depends_on_statistics(labelled)
        chained = plan_query(parse_query("MATCH (a)-->(b) RETURN a"), graph)
        assert plan_depends_on_statistics(chained)


class TestReduce:
    @pytest.mark.parametrize("mode", ["interpreter", "planner"])
    def test_reduce_folds(self, mode):
        engine = CypherEngine(MemoryGraph())
        result = engine.run(
            "RETURN reduce(s = 1, x IN [2, 3, 4] | s * x) AS product",
            mode=mode,
        )
        assert result.value() == 24

    @pytest.mark.parametrize("mode", ["interpreter", "planner"])
    def test_reduce_null_source(self, mode):
        engine = CypherEngine(MemoryGraph())
        result = engine.run(
            "WITH null AS xs RETURN reduce(s = 0, x IN xs | s + x) AS r",
            mode=mode,
        )
        assert result.value() is None

    @pytest.mark.parametrize("mode", ["interpreter", "planner"])
    def test_reduce_empty_list_returns_init(self, mode):
        engine = CypherEngine(MemoryGraph())
        result = engine.run(
            "RETURN reduce(s = 42, x IN [] | s + x) AS r", mode=mode
        )
        assert result.value() == 42

    def test_reduce_round_trips_through_printer(self):
        from repro.ast.printer import print_expression
        from repro.parser import parse_expression

        text = "reduce(s = 0, x IN [1, 2] | s + x)"
        printed = print_expression(parse_expression(text))
        assert printed == text

    def test_reduce_body_scope_is_checked(self):
        engine = CypherEngine(MemoryGraph())
        with pytest.raises(CypherSemanticError):
            engine.run("RETURN reduce(s = 0, x IN [1] | s + missing) AS r")

    def test_plain_reduce_function_call_still_parses(self):
        # reduce(...) without the accumulator shape is an ordinary call.
        from repro.ast import expressions as ex
        from repro.parser import parse_expression

        assert isinstance(parse_expression("reduce([1, 2])"), ex.FunctionCall)
