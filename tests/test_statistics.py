"""Unit tests for histogram statistics and the statistics snapshot.

:class:`ColumnHistogram` and :class:`GraphStatistics` sit under the
tier-1 coverage floor: every estimator branch that silently degrades to
a flat guess (unsupported bounds, missing segments, stale snapshots,
hook-free stores) is pinned here, not just exercised incidentally by
planner tests.
"""

import pytest

from repro import CypherEngine
from repro.graph.statistics import ColumnHistogram, GraphStatistics
from repro.graph.store import MemoryGraph


def _exact_histogram():
    # 10 numeric entries (0..9, one each) + 10 string entries.
    return ColumnHistogram({
        "num": [(i, 1) for i in range(10)],
        "str": [("apple", 2), ("banana", 3), ("cherry", 5)],
    })


class TestColumnHistogram:
    def test_total_and_exact_closed_open_range(self):
        histogram = _exact_histogram()
        assert histogram.total == 20
        # Numbers 3, 4, 5, 6 of the 20 entries.
        assert histogram.fraction(3, True, 7, False) == pytest.approx(4 / 20)

    def test_exclusive_low_and_open_high(self):
        histogram = _exact_histogram()
        assert histogram.fraction(3, False, None, True) == pytest.approx(
            6 / 20
        )

    def test_string_upper_bound(self):
        histogram = _exact_histogram()
        assert histogram.fraction(None, True, "banana", True) == (
            pytest.approx(5 / 20)
        )

    def test_empty_segment_is_dropped(self):
        histogram = ColumnHistogram({"num": [], "str": [("a", 1)]})
        assert histogram.total == 1
        # No numeric segment survives, so a numeric range estimates zero.
        assert histogram.fraction(0, True, 9, True) == 0.0

    def test_compression_keeps_estimates_close(self):
        # 200 distinct values forces equi-depth compression (> BUCKETS).
        histogram = ColumnHistogram({"num": [(i, 1) for i in range(200)]})
        assert histogram.total == 200
        estimate = histogram.fraction(50, True, 100, False)
        assert estimate == pytest.approx(0.25, abs=0.03)

    def test_unsupported_and_nan_bounds(self):
        histogram = _exact_histogram()
        assert histogram.fraction([1], True, None, True) is None
        assert histogram.fraction(float("nan"), True, None, True) is None

    def test_disjoint_segment_bounds_estimate_zero(self):
        histogram = _exact_histogram()
        assert histogram.fraction(1, True, "zzz", True) == 0.0

    def test_boolean_segment(self):
        histogram = ColumnHistogram({"bool": [(False, 4), (True, 6)]})
        assert histogram.fraction(False, True, True, True) == (
            pytest.approx(1.0)
        )

    def test_empty_histogram(self):
        histogram = ColumnHistogram({})
        assert histogram.total == 0
        assert histogram.fraction(1, True, None, True) == 0.0

    def test_prefix_fraction(self):
        histogram = _exact_histogram()
        assert histogram.prefix_fraction("ban") == pytest.approx(3 / 20)
        assert histogram.prefix_fraction("zebra") == 0.0

    def test_prefix_fraction_rejects_non_strings(self):
        assert _exact_histogram().prefix_fraction(5) is None

    def test_prefix_fraction_without_string_segment(self):
        histogram = ColumnHistogram({"num": [(1, 1)]})
        assert histogram.prefix_fraction("a") == 0.0


class _HookFreeGraph:
    """A minimal store without cardinality hooks (the rescan path)."""

    version = 3

    def node_count(self):
        return 3

    def relationship_count(self):
        return 2

    def nodes(self):
        return [1, 2, 3]

    def labels(self, node):
        return ("A",) if node == 1 else ("A", "B")

    def relationships(self):
        return [10, 11]

    def rel_type(self, rel):
        return "R" if rel == 10 else "S"


class _SlottedGraph:
    """A store whose instances reject weakrefs (no ``__weakref__`` slot)."""

    __slots__ = ()

    def node_count(self):
        return 0

    def relationship_count(self):
        return 0

    def nodes(self):
        return []

    def labels(self, node):
        return ()

    def relationships(self):
        return []

    def rel_type(self, rel):
        return "R"


def _indexed_graph():
    graph = MemoryGraph()
    engine = CypherEngine(graph)
    engine.run(
        "UNWIND range(0, 19) AS i "
        "CREATE (:L {a: i % 4, b: 'name-' + toString(i)})"
    )
    graph.create_index("L", "a", "b")
    return graph


class TestGraphStatistics:
    def test_rescan_fallback_without_hooks(self):
        stats = GraphStatistics(_HookFreeGraph())
        assert stats.label_counts == {"A": 3, "B": 2}
        assert stats.type_counts == {"R": 1, "S": 1}
        assert stats.relationships_with_type("R") == 1
        assert stats.label_selectivity("A") == pytest.approx(1.0)
        assert stats.average_degree(types=["R"]) == pytest.approx(1 / 3)
        assert stats.average_degree(direction="both") == pytest.approx(4 / 3)

    def test_unweakrefable_graph_disables_histograms(self):
        stats = GraphStatistics(_SlottedGraph())
        assert stats._graph_ref is None
        assert stats.column_histogram("L", ("a",), 0) is None
        assert stats.label_selectivity("A") == 1.0
        assert stats.average_degree() == 0.0
        assert stats.expand_fanout() == 0.001

    def test_graph_without_distribution_hook(self):
        stats = GraphStatistics(_HookFreeGraph())
        assert stats.column_histogram("A", ("a",), 0) is None
        assert stats.range_fraction("A", ("a",), 0, 1, True, 2, True) is None
        assert stats.starts_with_fraction("A", ("a",), 0, "x") is None

    def test_histograms_from_live_graph_and_staleness(self):
        graph = _indexed_graph()
        stats = GraphStatistics(graph)
        histogram = stats.column_histogram("L", ("a", "b"), 0)
        assert histogram is not None
        assert histogram.total == 20
        # a in {0..3}, five entries each: [1, 3) covers a = 1, 2.
        assert stats.range_fraction(
            "L", ("a", "b"), 0, 1, True, 3, False
        ) == pytest.approx(0.5)
        assert stats.starts_with_fraction(
            "L", ("a", "b"), 1, "name-1"
        ) == pytest.approx(11 / 20)
        # Second lookup reuses the cached object.
        assert stats.column_histogram("L", ("a", "b"), 0) is histogram
        # A snapshot that never built a histogram refuses to build one
        # once the graph moved past its version; a fresh snapshot can.
        stale = GraphStatistics(graph)
        CypherEngine(graph).run("CREATE (:L {a: 9, b: 'x'})")
        assert stale.column_histogram("L", ("a", "b"), 0) is None
        fresh = GraphStatistics(graph)
        assert fresh.column_histogram("L", ("a", "b"), 0) is not None

    def test_index_counters_and_prefixes(self):
        graph = _indexed_graph()
        stats = GraphStatistics(graph)
        assert stats.has_property_index("L", ("a", "b"))
        assert not stats.has_property_index("L", "a")
        assert stats.property_ndv("L", ("a", "b")) == 20
        assert stats.property_ndv("M", "a") is None
        assert stats.indexed_entries("L", ("a", "b")) == 20
        assert stats.indexed_entries("L", "missing") is None
        assert stats.composite_indexes("L") == [("a", "b")]
        assert stats.composite_indexes("M") == []
        assert stats.prefix_ndv("L", ("a", "b"), 1) == 4
        assert stats.prefix_ndv("L", ("a", "b"), 2) == 20
        assert stats.prefix_ndv("L", ("a", "b"), 0) is None
        assert stats.prefix_ndv("L", ("a", "b"), 3) is None
        assert stats.prefix_ndv("M", ("a",), 1) is None

    def test_reachability_defaults_and_repr(self):
        stats = GraphStatistics(MemoryGraph())
        assert list(stats.reachability_index_types()) == []
        assert not stats.has_reachability_index()
        assert not stats.has_reachability_index(["R"])
        text = repr(stats)
        assert text.startswith("GraphStatistics(")
        assert "nodes=0" in text
