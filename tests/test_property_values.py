"""Property-based tests (hypothesis) for the value model's algebraic laws."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.values.base import NodeId, RelId
from repro.values.comparison import and3, compare, equals, not3, or3, xor3
from repro.values.ordering import canonical_key, sort_key

ternary = st.sampled_from([True, False, None])

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=8),
    st.integers(min_value=1, max_value=50).map(NodeId),
    st.integers(min_value=1, max_value=50).map(RelId),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=4), children, max_size=3),
    ),
    max_leaves=8,
)


class TestConnectiveLaws:
    @given(a=ternary, b=ternary)
    def test_and_or_commute(self, a, b):
        assert and3(a, b) == and3(b, a)
        assert or3(a, b) == or3(b, a)
        assert xor3(a, b) == xor3(b, a)

    @given(a=ternary, b=ternary, c=ternary)
    def test_and_or_associate(self, a, b, c):
        assert and3(and3(a, b), c) == and3(a, and3(b, c))
        assert or3(or3(a, b), c) == or3(a, or3(b, c))

    @given(a=ternary, b=ternary)
    def test_de_morgan(self, a, b):
        assert not3(and3(a, b)) == or3(not3(a), not3(b))
        assert not3(or3(a, b)) == and3(not3(a), not3(b))

    @given(a=ternary)
    def test_double_negation(self, a):
        assert not3(not3(a)) == a


class TestEqualityLaws:
    @given(value=values)
    def test_equality_reflexive_or_unknown(self, value):
        verdict = equals(value, value)
        assert verdict in (True, None)  # None only when nulls are inside

    @given(a=values, b=values)
    def test_equality_symmetric(self, a, b):
        assert equals(a, b) == equals(b, a)

    @given(a=values, b=values)
    def test_equal_values_share_canonical_keys(self, a, b):
        if equals(a, b) is True:
            assert canonical_key(a) == canonical_key(b)

    @given(a=values, b=values)
    def test_distinct_canonical_keys_mean_not_equal(self, a, b):
        if canonical_key(a) == canonical_key(b):
            assert equals(a, b) in (True, None)


class TestComparisonLaws:
    @given(a=values, b=values)
    def test_compare_antisymmetric(self, a, b):
        forward = compare(a, b)
        backward = compare(b, a)
        if forward is None:
            assert backward is None
        else:
            assert backward == -forward

    @given(a=values, b=values, c=values)
    def test_compare_transitive(self, a, b, c):
        if compare(a, b) == -1 and compare(b, c) == -1:
            assert compare(a, c) == -1

    @given(a=values)
    def test_compare_with_null_is_unknown(self, a):
        assert compare(a, None) is None
        assert compare(None, a) is None


class TestOrderabilityLaws:
    @given(items=st.lists(values, max_size=8))
    def test_sort_key_is_total(self, items):
        ordered = sorted(items, key=sort_key)
        assert sorted(ordered, key=sort_key) == ordered

    @given(a=values, b=values)
    def test_orderability_refines_comparability(self, a, b):
        verdict = compare(a, b)
        if verdict == -1:
            assert sort_key(a) < sort_key(b)
        elif verdict == 1:
            assert sort_key(a) > sort_key(b)
        elif verdict == 0:
            assert sort_key(a) == sort_key(b)

    @given(a=values)
    def test_null_is_greatest(self, a):
        if a is not None:
            assert sort_key(a) < sort_key(None)

    @given(a=values)
    def test_canonical_keys_hashable(self, a):
        hash(canonical_key(a))
