"""Unit tests for identifiers, paths and the value universe (paper §4.1)."""

import pytest

from repro.values.base import NodeId, RelId, is_cypher_value, type_name
from repro.values.path import Path


class TestIdentifiers:
    def test_node_ids_equal_by_value(self):
        assert NodeId(1) == NodeId(1)
        assert NodeId(1) != NodeId(2)

    def test_node_and_rel_ids_are_disjoint(self):
        # N and R are disjoint sets in the paper's model.
        assert NodeId(1) != RelId(1)
        assert hash(NodeId(1)) != hash(RelId(1))

    def test_ids_are_hashable_and_usable_in_sets(self):
        ids = {NodeId(1), NodeId(1), NodeId(2)}
        assert len(ids) == 2

    def test_ids_are_immutable(self):
        node = NodeId(1)
        with pytest.raises(AttributeError):
            node.value = 5

    def test_ids_order_within_their_kind(self):
        assert NodeId(1) < NodeId(2)
        assert sorted([NodeId(3), NodeId(1)]) == [NodeId(1), NodeId(3)]

    def test_id_requires_integer(self):
        with pytest.raises(TypeError):
            NodeId("7")
        with pytest.raises(TypeError):
            RelId(True)

    def test_repr_and_str(self):
        assert repr(NodeId(4)) == "NodeId(4)"
        assert str(NodeId(4)) == "n4"
        assert str(RelId(2)) == "r2"


class TestPath:
    def test_single_node_path(self):
        path = Path.single(NodeId(1))
        assert len(path) == 0
        assert path.start == path.end == NodeId(1)

    def test_alternating_sequence(self):
        path = Path((NodeId(1), NodeId(2)), (RelId(1),))
        assert list(path.interleaved()) == [NodeId(1), RelId(1), NodeId(2)]

    def test_length_is_relationship_count(self):
        path = Path((NodeId(1), NodeId(2), NodeId(3)), (RelId(1), RelId(2)))
        assert len(path) == 2

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Path((NodeId(1), NodeId(2)), ())
        with pytest.raises(ValueError):
            Path((NodeId(1),), (RelId(1),))

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            Path((), ())

    def test_type_checks(self):
        with pytest.raises(TypeError):
            Path((1, 2), (RelId(1),))
        with pytest.raises(TypeError):
            Path((NodeId(1), NodeId(2)), (7,))

    def test_concat_requires_shared_endpoint(self):
        left = Path((NodeId(1), NodeId(2)), (RelId(1),))
        right = Path((NodeId(2), NodeId(3)), (RelId(2),))
        joined = left.concat(right)
        assert joined.nodes == (NodeId(1), NodeId(2), NodeId(3))
        assert joined.relationships == (RelId(1), RelId(2))

    def test_concat_mismatch_rejected(self):
        left = Path((NodeId(1), NodeId(2)), (RelId(1),))
        wrong = Path((NodeId(9), NodeId(3)), (RelId(2),))
        with pytest.raises(ValueError):
            left.concat(wrong)

    def test_equality_and_hash(self):
        a = Path((NodeId(1), NodeId(2)), (RelId(1),))
        b = Path((NodeId(1), NodeId(2)), (RelId(1),))
        assert a == b
        assert hash(a) == hash(b)

    def test_distinct_relationships_check(self):
        ok = Path((NodeId(1), NodeId(2), NodeId(1)), (RelId(1), RelId(2)))
        repeated = Path((NodeId(1), NodeId(2), NodeId(1)), (RelId(1), RelId(1)))
        assert ok.has_distinct_relationships()
        assert not repeated.has_distinct_relationships()

    def test_reverse(self):
        path = Path((NodeId(1), NodeId(2), NodeId(3)), (RelId(1), RelId(2)))
        assert path.reverse().nodes == (NodeId(3), NodeId(2), NodeId(1))
        assert path.reverse().relationships == (RelId(2), RelId(1))

    def test_paths_are_immutable(self):
        path = Path.single(NodeId(1))
        with pytest.raises(AttributeError):
            path.nodes = ()


class TestValueUniverse:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, -3, 2.5, "text", [], [1, "a", None],
         {"k": 1}, {"k": [1, {"n": None}]}, NodeId(1), RelId(2),
         Path.single(NodeId(1))],
    )
    def test_members_of_v(self, value):
        assert is_cypher_value(value)

    def test_map_keys_must_be_strings(self):
        assert not is_cypher_value({1: "x"})

    def test_nested_invalid_values_detected(self):
        assert not is_cypher_value([object()])

    @pytest.mark.parametrize(
        "value,name",
        [
            (None, "Null"),
            (True, "Boolean"),
            (1, "Integer"),
            (1.5, "Float"),
            ("s", "String"),
            ([], "List"),
            ({}, "Map"),
            (NodeId(1), "Node"),
            (RelId(1), "Relationship"),
            (Path.single(NodeId(1)), "Path"),
        ],
    )
    def test_type_names(self, value, name):
        assert type_name(value) == name
