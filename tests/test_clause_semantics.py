"""Direct table-level tests of the clause semantics (Figures 6 and 7).

These bypass the engine and exercise ``apply_clause`` / ``run_query`` on
explicit tables, mirroring how the paper presents the semantics.
"""

import pytest

from repro import parse_query
from repro.datasets.paper import figure4_graph
from repro.exceptions import CypherRuntimeError, CypherSemanticError
from repro.parser.parser import Parser
from repro.semantics.clauses import apply_clause
from repro.semantics.query import QueryState, output, run_query
from repro.semantics.table import Table


def parse_single_clause(text):
    parser = Parser(text)
    return parser._parse_clause()


@pytest.fixture
def fig4():
    graph, ids = figure4_graph()
    return graph, ids, QueryState(graph)


class TestMatchClause:
    def test_match_extends_fields(self, fig4):
        graph, ids, state = fig4
        clause = parse_single_clause("MATCH (x)-[:KNOWS]->(y)")
        result = apply_clause(clause, Table.unit(), state)
        assert set(result.fields) == {"x", "y"}
        assert len(result) == 3

    def test_match_drives_from_each_row(self, fig4):
        graph, ids, state = fig4
        clause = parse_single_clause("MATCH (x)-[:KNOWS]->(y)")
        driving = Table(("x",), [{"x": ids["n1"]}, {"x": ids["n3"]}])
        result = apply_clause(clause, driving, state)
        assert len(result) == 2  # n1->n2 and n3->n4

    def test_match_on_empty_table_is_empty(self, fig4):
        graph, ids, state = fig4
        clause = parse_single_clause("MATCH (x)")
        result = apply_clause(clause, Table(("q",), []), state)
        assert len(result) == 0

    def test_optional_match_pads_only_new_fields(self, fig4):
        graph, ids, state = fig4
        clause = parse_single_clause(
            "OPTIONAL MATCH (x)-[:KNOWS]->(y:Student)"
        )
        driving = Table(("x",), [{"x": ids["n3"]}])  # n3 knows no Student
        result = apply_clause(clause, driving, state)
        assert result.rows == [{"x": ids["n3"], "y": None}]


class TestProjectionClause:
    def test_with_renames(self, fig4):
        graph, ids, state = fig4
        clause = parse_single_clause("WITH 1 + 1 AS two")
        result = apply_clause(clause, Table.unit(), state)
        assert result.fields == ("two",)
        assert result.rows == [{"two": 2}]

    def test_return_star_requires_fields(self, fig4):
        graph, ids, state = fig4
        clause = parse_single_clause("RETURN *")
        with pytest.raises(CypherSemanticError):
            apply_clause(clause, Table.unit(), state)

    def test_alpha_naming_uses_expression_text(self, fig4):
        graph, ids, state = fig4
        clause = parse_single_clause("RETURN 1 + 2")
        result = apply_clause(clause, Table.unit(), state)
        assert result.fields == ("1 + 2",)

    def test_duplicate_output_names_rejected(self, fig4):
        graph, ids, state = fig4
        clause = parse_single_clause("RETURN 1 AS x, 2 AS x")
        with pytest.raises(CypherSemanticError):
            apply_clause(clause, Table.unit(), state)

    def test_negative_limit_rejected(self, fig4):
        graph, ids, state = fig4
        clause = parse_single_clause("RETURN 1 AS x LIMIT -1")
        with pytest.raises(CypherRuntimeError):
            apply_clause(clause, Table.unit(), state)

    def test_order_by_is_stable(self, fig4):
        graph, ids, state = fig4
        clause = parse_single_clause("WITH x, y ORDER BY x")
        driving = Table(
            ("x", "y"),
            [{"x": 1, "y": "b"}, {"x": 1, "y": "a"}, {"x": 0, "y": "z"}],
        )
        result = apply_clause(clause, driving, state)
        assert [row["y"] for row in result.rows] == ["z", "b", "a"]


class TestQuerySemantics:
    def test_output_starts_from_unit_table(self, fig4):
        graph, ids, state = fig4
        table = output(parse_query("RETURN 1 AS one"), graph)
        assert table.rows == [{"one": 1}]

    def test_union_applies_to_the_same_input(self, fig4):
        graph, ids, state = fig4
        query = parse_query("RETURN 1 AS x UNION ALL RETURN 1 AS x")
        table = run_query(query, state)
        assert len(table) == 2

    def test_union_reorders_mismatched_field_order(self, fig4):
        graph, ids, state = fig4
        query = parse_query(
            "RETURN 1 AS a, 2 AS b UNION RETURN 2 AS b, 1 AS a"
        )
        table = run_query(query, state)
        assert len(table) == 1  # identical records after reordering

    def test_linear_composition(self, fig4):
        graph, ids, state = fig4
        query = parse_query(
            "UNWIND [1, 2, 3] AS x WITH x WHERE x > 1 "
            "WITH x * 10 AS y RETURN sum(y) AS total"
        )
        table = run_query(query, state)
        assert table.rows == [{"total": 50}]
