"""Unit tests for the dataset generators (determinism and shape)."""

import pytest

from repro.datasets.citations import citation_network
from repro.datasets.datacenter import datacenter_graph
from repro.datasets.fraud import fraud_graph
from repro.datasets.paper import figure1_graph, figure4_graph, self_loop_graph
from repro.datasets.social import social_graph, social_with_registry
from repro.graph.io import graph_to_dict


class TestPaperGraphs:
    def test_figure1_matches_example_41(self):
        graph, ids = figure1_graph()
        assert graph.node_count() == 10
        assert graph.relationship_count() == 11
        # spot-check src/tgt against Example 4.1
        assert graph.src(ids["r3"]) == ids["n4"]
        assert graph.tgt(ids["r3"]) == ids["n2"]
        assert graph.src(ids["r11"]) == ids["n9"]
        assert graph.tgt(ids["r11"]) == ids["n5"]
        assert graph.rel_type(ids["r6"]) == "SUPERVISES"
        assert graph.property_value(ids["n2"], "acmid") == 220
        assert graph.labels(ids["n7"]) == frozenset({"Student"})

    def test_figure4_shape(self):
        graph, ids = figure4_graph()
        assert graph.node_count() == 4
        assert graph.relationship_count() == 3
        assert graph.labels(ids["n2"]) == frozenset({"Student"})
        assert graph.src(ids["r2"]) == ids["n2"]

    def test_self_loop(self):
        graph, ids = self_loop_graph()
        assert graph.src(ids["r"]) == graph.tgt(ids["r"]) == ids["n"]


class TestGenerators:
    def test_citation_network_deterministic(self):
        first, _ = citation_network(publications=15, seed=3)
        second, _ = citation_network(publications=15, seed=3)
        assert graph_to_dict(first) == graph_to_dict(second)

    def test_citation_network_is_a_dag(self):
        graph, handles = citation_network(publications=25, seed=1)
        order = {node: node.value for node in handles["publications"]}
        for rel in graph.relationships_with_type("CITES"):
            assert order[graph.src(rel)] > order[graph.tgt(rel)]

    def test_datacenter_layering(self):
        graph, layers = datacenter_graph(layers=3, width=4, fanout=2, seed=0)
        assert len(layers) == 3
        for rel in graph.relationships_with_type("DEPENDS_ON"):
            src_layer = graph.property_value(graph.src(rel), "layer")
            tgt_layer = graph.property_value(graph.tgt(rel), "layer")
            assert src_layer == tgt_layer + 1

    def test_fraud_rings_are_planted_as_promised(self):
        graph, planted = fraud_graph(holders=20, rings=3, ring_size=3, seed=4)
        assert len(planted) == 3
        for ring in planted:
            for member in ring["members"]:
                has_edge = any(
                    graph.tgt(rel) == ring["pii"]
                    for rel in graph.outgoing(member, {"HAS"})
                )
                assert has_edge

    def test_social_graph_no_duplicate_pairs(self):
        graph, people = social_graph(people=20, avg_friends=4, seed=6)
        seen = set()
        for rel in graph.relationships_with_type("FRIEND"):
            pair = frozenset((graph.src(rel), graph.tgt(rel)))
            assert pair not in seen
            seen.add(pair)

    def test_social_with_registry_shares_node_ids(self):
        catalog, people, cities = social_with_registry(people=10, seed=1)
        soc_net = catalog.resolve(name="soc_net")
        register = catalog.resolve(name="register")
        for person in people:
            assert soc_net.has_node(person)
            assert register.has_node(person)
            assert soc_net.property_value(person, "name") == (
                register.property_value(person, "name")
            )

    def test_registry_assigns_every_person_one_city(self):
        catalog, people, cities = social_with_registry(people=12, seed=2)
        register = catalog.resolve(name="register")
        for person in people:
            assert sum(1 for _ in register.outgoing(person, {"IN"})) == 1
