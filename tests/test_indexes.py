"""Property indexes: store maintenance, cost model, pushdown, profiling.

Four layers, mirroring the subsystem's vertical slice:

* **store** — `_PropertyIndex` content under every mutation path
  (creates, bulk creates, SET/REMOVE/merge/replace, label changes,
  deletes, transactions), probe semantics on the nasty values (NaN,
  int-vs-float buckets, mixed-type segments, unsupported range bounds),
  and clone/restore behaviour;
* **statistics / cost** — NDV and entry counters flowing into
  selectivities, including the regression test for the stale-selectivity
  bug class: the chosen entry point must flip when NDV does;
* **planner** — which predicates are sargable, which WHEREs are vetoed
  by the infallibility gate, and what the residual keeps;
* **engines** — profiled access paths (estimated vs actual rows) on row
  and batch execution, plan-cache interplay with ``create_index``, and
  the ColumnCompiler's memoised property-column reads.
"""

import pytest

from repro import CypherEngine
from repro.graph.statistics import GraphStatistics
from repro.graph.store import MemoryGraph
from repro.planner import logical as lg
from repro.planner.cost import CostModel, PROPERTY_SELECTIVITY
from repro.planner.planning import plan_depends_on_statistics


def entry_operator(plan):
    """The scan at the bottom of the plan (child of Init/Argument)."""
    op = plan
    while True:
        children = op._children()
        if not children:
            return None
        child = children[0]
        if isinstance(child, (lg.Init, lg.Argument)):
            return op
        op = child


def plan_operators(plan):
    stack = [plan]
    while stack:
        op = stack.pop()
        yield op
        stack.extend(op._children())


def small_graph():
    graph = MemoryGraph()
    for i in range(12):
        graph.create_node(
            ("L",), {"v": i % 4, "name": "n%02d" % i}
        )
    return graph


# ---------------------------------------------------------------------------
# Store maintenance
# ---------------------------------------------------------------------------


class TestStoreMaintenance:
    def test_create_index_builds_from_existing_data(self):
        graph = small_graph()
        assert graph.create_index("L", "v") is True
        assert graph.create_index("L", "v") is False  # idempotent
        assert graph.has_index("L", "v")
        assert graph.indexes() == [("L", "v")]
        assert graph.index_statistics() == {("L", "v"): (4, 12)}

    def test_bulk_build_equals_incremental_maintenance(self):
        """create_index after the data (one-sort bulk build) must equal
        create_index before the data (per-write incremental adds)."""
        values = [3, 1, "b", "a", True, 2, 1.0, float("nan"), [1], 1]
        incremental = MemoryGraph()
        incremental.create_index("L", "v")
        bulk = MemoryGraph()
        for value in values:
            incremental.create_node(("L",), {"v": value})
            bulk.create_node(("L",), {"v": value})
        bulk.create_index("L", "v")
        assert bulk.index_snapshot("L", "v") == incremental.index_snapshot(
            "L", "v"
        )
        assert bulk.index_statistics() == incremental.index_statistics()
        probe = ("L", "v", 0, True, None, True)
        assert bulk.index_range(*probe) == incremental.index_range(*probe)

    def test_drop_index(self):
        graph = small_graph()
        graph.create_index("L", "v")
        version = graph.version
        assert graph.drop_index("L", "v") is True
        assert graph.drop_index("L", "v") is False
        assert not graph.has_index("L", "v")
        assert graph.version > version

    def test_bad_index_spec_rejected(self):
        graph = MemoryGraph()
        with pytest.raises(ValueError):
            graph.create_index("", "v")
        with pytest.raises(ValueError):
            graph.create_index("L", 3)

    def test_creates_update_entries(self):
        graph = MemoryGraph()
        graph.create_index("L", "v")
        node = graph.create_node(("L",), {"v": 7})
        assert graph.index_lookup("L", "v", 7) == [node]
        other = graph.create_node(("M",), {"v": 7})  # different label
        assert graph.index_lookup("L", "v", 7) == [node]
        bare = graph.create_node(("L",), {})  # no value: no entry
        assert graph.index_statistics()[("L", "v")] == (1, 1)
        assert other != bare

    def test_set_remove_and_null_set_update_entries(self):
        graph = MemoryGraph()
        graph.create_index("L", "v")
        node = graph.create_node(("L",), {"v": 1})
        graph.set_property(node, "v", 2)
        assert graph.index_lookup("L", "v", 1) == []
        assert graph.index_lookup("L", "v", 2) == [node]
        graph.set_property(node, "v", None)  # null removes
        assert graph.index_lookup("L", "v", 2) == []
        graph.set_property(node, "v", 3)
        graph.remove_property(node, "v")
        assert graph.index_statistics()[("L", "v")] == (0, 0)

    def test_replace_and_merge_properties_update_entries(self):
        graph = MemoryGraph()
        graph.create_index("L", "v")
        graph.create_index("L", "w")
        node = graph.create_node(("L",), {"v": 1, "w": 1})
        graph.replace_properties(node, {"v": 5})
        assert graph.index_lookup("L", "v", 5) == [node]
        assert graph.index_statistics()[("L", "w")] == (0, 0)
        graph.merge_properties(node, {"w": 9, "v": None})
        assert graph.index_lookup("L", "w", 9) == [node]
        assert graph.index_statistics()[("L", "v")] == (0, 0)

    def test_failed_replace_leaves_map_and_index_untouched(self):
        """A rejected SET n = {map} must not desynchronise the index:
        validation happens before the old map is cleared."""
        graph = MemoryGraph()
        graph.create_index("L", "v")
        node = graph.create_node(("L",), {"v": 1})
        with pytest.raises(ValueError):
            graph.replace_properties(node, {"v": object()})
        assert graph.properties(node) == {"v": 1}
        assert graph.index_lookup("L", "v", 1) == [node]
        assert graph.index_snapshot("L", "v") == graph.copy().index_snapshot(
            "L", "v"
        )

    def test_sorted_bucket_cache_tracks_mutations(self):
        """Repeated probes reuse the sorted bucket; writes invalidate it."""
        graph = MemoryGraph()
        graph.create_index("L", "v")
        first = graph.create_node(("L",), {"v": 1})
        assert graph.index_lookup("L", "v", 1) == [first]
        assert graph.index_lookup("L", "v", 1) is graph.index_lookup(
            "L", "v", 1
        )  # memoised between writes
        second = graph.create_node(("L",), {"v": 1})
        assert graph.index_lookup("L", "v", 1) == [first, second]
        graph.delete_node(first)
        assert graph.index_lookup("L", "v", 1) == [second]

    def test_label_changes_move_entries(self):
        graph = MemoryGraph()
        graph.create_index("L", "v")
        node = graph.create_node(("M",), {"v": 1})
        graph.add_label(node, "L")
        assert graph.index_lookup("L", "v", 1) == [node]
        graph.add_label(node, "L")  # re-adding must not double-count
        assert graph.index_statistics()[("L", "v")] == (1, 1)
        graph.remove_label(node, "L")
        assert graph.index_lookup("L", "v", 1) == []
        graph.remove_label(node, "L")  # idempotent
        assert graph.index_statistics()[("L", "v")] == (0, 0)

    def test_delete_node_removes_entries(self):
        graph = MemoryGraph()
        graph.create_index("L", "v")
        node = graph.create_node(("L",), {"v": 1})
        keep = graph.create_node(("L",), {"v": 1})
        graph.delete_node(node)
        assert graph.index_lookup("L", "v", 1) == [keep]

    def test_transaction_bulk_create_maintains_entries(self):
        graph = MemoryGraph()
        graph.create_index("L", "v")
        transaction = graph.write_transaction()
        created = transaction.create_nodes(
            ("L",), [{"v": 1}, {"v": 2}, {"v": 1}]
        )
        # Visible inside the transaction (MERGE reads mid-statement).
        assert graph.index_lookup("L", "v", 1) == [created[0], created[2]]
        transaction.commit()
        assert graph.index_statistics()[("L", "v")] == (2, 3)

    def test_transaction_deferred_delete_updates_on_flush(self):
        graph = MemoryGraph()
        graph.create_index("L", "v")
        node = graph.create_node(("L",), {"v": 1})
        transaction = graph.write_transaction()
        transaction.delete_node(node, detach=True)
        assert graph.index_lookup("L", "v", 1) == [node]  # still buffered
        transaction.commit()
        assert graph.index_lookup("L", "v", 1) == []

    def test_adopt_node_indexes_entries(self):
        from repro.values.base import NodeId

        graph = MemoryGraph()
        graph.create_index("L", "v")
        graph.adopt_node(NodeId(41), ("L",), {"v": 6})
        assert graph.index_lookup("L", "v", 6) == [NodeId(41)]

    def test_copy_and_restore_preserve_indexes(self):
        graph = small_graph()
        graph.create_index("L", "v")
        clone = graph.copy()
        assert clone.indexes() == [("L", "v")]
        assert clone.index_snapshot("L", "v") == graph.index_snapshot(
            "L", "v"
        )
        snapshot = graph.copy()
        graph.create_node(("L",), {"v": 0})
        graph.restore_from(snapshot)
        assert graph.index_statistics() == {("L", "v"): (4, 12)}


class TestProbeSemantics:
    def test_lookup_null_and_nan_match_nothing(self):
        graph = MemoryGraph()
        graph.create_index("L", "v")
        graph.create_node(("L",), {"v": float("nan")})
        assert graph.index_lookup("L", "v", None) == []
        assert graph.index_lookup("L", "v", float("nan")) == []
        assert graph.index_lookup_many("L", "v", [None, float("nan")]) == []

    def test_int_and_float_share_buckets(self):
        graph = MemoryGraph()
        graph.create_index("L", "v")
        a = graph.create_node(("L",), {"v": 1})
        b = graph.create_node(("L",), {"v": 1.0})
        assert graph.index_lookup("L", "v", 1) == [a, b]
        assert graph.index_lookup("L", "v", 1.0) == [a, b]
        assert graph.index_statistics()[("L", "v")] == (1, 2)

    def test_range_segments_are_type_separated(self):
        graph = MemoryGraph()
        graph.create_index("L", "v")
        nodes = {}
        for value in (3, 7, "a", "b", True, False):
            nodes[value] = graph.create_node(("L",), {"v": value})
        assert graph.index_range("L", "v", 4, True, None, True) == [nodes[7]]
        assert graph.index_range("L", "v", "a", False, None, True) == [
            nodes["b"]
        ]
        assert graph.index_range("L", "v", False, False, None, True) == [
            nodes[True]
        ]
        # bool bounds never see numbers, and vice versa
        assert nodes[3] not in graph.index_range(
            "L", "v", False, True, None, True
        )

    def test_range_unsupported_bound_reports_none(self):
        graph = MemoryGraph()
        graph.create_index("L", "v")
        graph.create_node(("L",), {"v": [1, 2]})
        assert graph.index_range("L", "v", [1], True, None, True) is None

    def test_range_nan_or_conflicting_bounds_match_nothing(self):
        graph = MemoryGraph()
        graph.create_index("L", "v")
        graph.create_node(("L",), {"v": 5})
        assert graph.index_range(
            "L", "v", float("nan"), True, None, True
        ) == []
        assert graph.index_range("L", "v", 1, True, "z", True) == []

    def test_range_is_value_then_id_ordered(self):
        graph = MemoryGraph()
        graph.create_index("L", "v")
        c = graph.create_node(("L",), {"v": 2})
        a = graph.create_node(("L",), {"v": 1})
        b = graph.create_node(("L",), {"v": 1})
        assert graph.index_range("L", "v", 0, True, None, True) == [a, b, c]

    def test_prefix_probe(self):
        graph = MemoryGraph()
        graph.create_index("L", "name")
        ab = graph.create_node(("L",), {"name": "ab"})
        b = graph.create_node(("L",), {"name": "b"})
        abc = graph.create_node(("L",), {"name": "abc"})
        graph.create_node(("L",), {"name": 5})
        assert graph.index_prefix("L", "name", "ab") == [ab, abc]
        # the empty prefix matches every string, never the number
        assert graph.index_prefix("L", "name", "") == [ab, abc, b]
        assert graph.index_prefix("L", "name", 7) == []


# ---------------------------------------------------------------------------
# Statistics and the cost model
# ---------------------------------------------------------------------------


class TestStatisticsAndCost:
    def test_statistics_expose_ndv_and_entries(self):
        graph = small_graph()
        graph.create_index("L", "v")
        statistics = GraphStatistics(graph)
        assert statistics.has_property_index("L", "v")
        assert statistics.property_ndv("L", "v") == 4
        assert statistics.indexed_entries("L", "v") == 12
        assert statistics.property_ndv("L", "missing") is None

    def test_equality_selectivity_uses_ndv_with_fallback(self):
        graph = small_graph()
        graph.create_index("L", "v")
        model = CostModel(graph)
        assert model.equality_selectivity(("L",), "v") == 0.25
        assert (
            model.equality_selectivity(("L",), "name")
            == PROPERTY_SELECTIVITY
        )
        assert (
            model.equality_selectivity((), "v") == PROPERTY_SELECTIVITY
        )

    def test_entry_point_flips_when_ndv_changes(self):
        """The stale-selectivity regression: same query, NDV decides.

        With a highly selective index (NDV == label count) the planner
        must enter through ``a``'s index seek; after the data degrades to
        two distinct values the index estimate exceeds |M| and the entry
        point must flip to ``b``'s label scan.
        """
        query = "MATCH (a:L)-[:T]->(b:M) WHERE a.k = 5 RETURN count(*) AS c"

        selective = MemoryGraph()
        for i in range(200):
            selective.create_node(("L",), {"k": i})
        for i in range(20):
            selective.create_node(("M",), {})
        selective.create_index("L", "k")
        entry = entry_operator(
            CypherEngine(selective).run(query, mode="row").plan
        )
        assert isinstance(entry, lg.IndexScan)
        assert entry.variable == "a"

        degraded = MemoryGraph()
        for i in range(200):
            degraded.create_node(("L",), {"k": i % 2})
        for i in range(20):
            degraded.create_node(("M",), {})
        degraded.create_index("L", "k")
        entry = entry_operator(
            CypherEngine(degraded).run(query, mode="row").plan
        )
        assert isinstance(entry, lg.NodeByLabelScan)
        assert entry.variable == "b"

    def test_empty_in_list_estimates_zero_rows(self):
        graph = small_graph()
        graph.create_index("L", "v")
        from repro.planner.access import Sargable

        model = CostModel(graph)
        empty = Sargable("n", "v", "in", size_hint=0)
        assert model.index_entry_estimate("L", "v", empty) == 0.0
        assert model.sargable_selectivity(("L",), empty) == 0.0

    def test_index_scan_estimates_recorded_on_plan(self):
        graph = small_graph()
        graph.create_index("L", "v")
        result = CypherEngine(graph).run(
            "MATCH (n:L) WHERE n.v = 1 RETURN count(*) AS c"
        )
        entry = entry_operator(result.plan)
        assert isinstance(entry, lg.IndexScan)
        assert entry.estimated_rows == pytest.approx(3.0)
        assert "est≈3" in result.plan.describe()


# ---------------------------------------------------------------------------
# Planner: what is pushed down, what is vetoed
# ---------------------------------------------------------------------------


class TestPushdownChoices:
    def run_plan(self, graph, query):
        return CypherEngine(graph).run(query, mode="row").plan

    def indexed_graph(self):
        graph = small_graph()
        graph.create_index("L", "v")
        graph.create_index("L", "name")
        return graph

    def test_equality_where_uses_index_and_keeps_filter(self):
        plan = self.run_plan(
            self.indexed_graph(),
            "MATCH (n:L) WHERE n.v = 1 RETURN count(*) AS c",
        )
        kinds = [type(op) for op in plan_operators(plan)]
        assert lg.IndexScan in kinds
        assert lg.Filter in kinds  # the residual stays

    def test_inline_property_map_uses_index_without_filter(self):
        plan = self.run_plan(
            self.indexed_graph(),
            "MATCH (n:L {v: 1}) RETURN count(*) AS c",
        )
        entry = entry_operator(plan)
        assert isinstance(entry, lg.IndexScan)
        # the node check re-verifies the map; no Filter operator exists
        assert lg.Filter not in {type(op) for op in plan_operators(plan)}

    def test_anonymous_inline_map_uses_index(self):
        plan = self.run_plan(
            self.indexed_graph(),
            "MATCH (:L {v: 2})-[:T]->(b) RETURN count(*) AS c",
        )
        assert isinstance(entry_operator(plan), lg.IndexScan)

    def test_range_conjuncts_merge_into_one_bounded_scan(self):
        plan = self.run_plan(
            self.indexed_graph(),
            "MATCH (n:L) WHERE n.v >= 1 AND n.v < 3 RETURN count(*) AS c",
        )
        entry = entry_operator(plan)
        assert isinstance(entry, lg.IndexRangeScan)
        assert entry.low is not None and entry.high is not None
        assert entry.low_inclusive and not entry.high_inclusive

    def test_prefix_predicate_uses_range_scan(self):
        plan = self.run_plan(
            self.indexed_graph(),
            "MATCH (n:L) WHERE n.name STARTS WITH 'n0' RETURN count(*) AS c",
        )
        entry = entry_operator(plan)
        assert isinstance(entry, lg.IndexRangeScan)
        assert entry.prefix is not None

    def test_in_predicate_uses_many_probe(self):
        plan = self.run_plan(
            self.indexed_graph(),
            "MATCH (n:L) WHERE n.v IN [1, 2] RETURN count(*) AS c",
        )
        entry = entry_operator(plan)
        assert isinstance(entry, lg.IndexScan)
        assert entry.many

    def test_equality_beats_range_when_both_available(self):
        plan = self.run_plan(
            self.indexed_graph(),
            "MATCH (n:L) WHERE n.v = 1 AND n.name >= 'n' "
            "RETURN count(*) AS c",
        )
        entry = entry_operator(plan)
        assert isinstance(entry, lg.IndexScan)
        assert entry.key == "v"

    def test_no_index_means_label_scan(self):
        plan = self.run_plan(
            small_graph(), "MATCH (n:L) WHERE n.v = 1 RETURN count(*) AS c"
        )
        assert isinstance(entry_operator(plan), lg.NodeByLabelScan)

    def test_fallible_where_vetoes_pushdown(self):
        """A conjunct that can raise per row keeps the label scan: the
        index would skip rows whose evaluation the reference performs."""
        for query in [
            "MATCH (n:L) WHERE n.v = 1 AND 1 / n.v > 0 RETURN count(*) AS c",
            "MATCH (n:L) WHERE n.v = size([n.name]) RETURN count(*) AS c",
            "MATCH (n:L) WHERE n.v = toInteger('1') RETURN count(*) AS c",
        ]:
            plan = self.run_plan(self.indexed_graph(), query)
            assert isinstance(
                entry_operator(plan), lg.NodeByLabelScan
            ), query

    def test_in_over_non_literal_container_vetoes_pushdown(self):
        """``IN $p`` can raise per row (non-list container), so any WHERE
        containing it must keep the label scan — pruning rows through a
        sibling conjunct's index would suppress that error."""
        import pytest as _pytest

        from repro.exceptions import CypherTypeError

        graph = MemoryGraph()
        graph.create_index("A", "v")
        graph.create_node(("A",), {"v": 5, "w": 1})
        graph.create_node(("A",), {"w": 2})  # v missing: null = 1 is unknown
        engine = CypherEngine(graph)
        query = "MATCH (a:A) WHERE a.v = 1 AND a.w IN $p RETURN count(*) AS c"
        result = engine.run(query, parameters={"p": [1]}, mode="row")
        assert isinstance(entry_operator(result.plan), lg.NodeByLabelScan)
        for mode in ("interpreter", "row", "batch"):
            with _pytest.raises(CypherTypeError):
                engine.run(query, parameters={"p": "not-a-list"}, mode=mode)

    def test_in_over_list_literal_still_pushes_down(self):
        plan = self.run_plan(
            self.indexed_graph(),
            "MATCH (n:L) WHERE n.v = 1 AND n.v IN [1, 2] "
            "RETURN count(*) AS c",
        )
        assert isinstance(entry_operator(plan), lg.IndexScan)

    def test_probe_reading_the_scan_variable_is_rejected(self):
        plan = self.run_plan(
            self.indexed_graph(),
            "MATCH (n:L) WHERE n.v = n.v RETURN count(*) AS c",
        )
        assert isinstance(entry_operator(plan), lg.NodeByLabelScan)

    def test_outer_probe_makes_nested_loop_join(self):
        graph = self.indexed_graph()
        plan = self.run_plan(
            graph,
            "MATCH (a:L) WHERE a.v = 0 MATCH (b:L) WHERE b.name = a.name "
            "RETURN count(*) AS c",
        )
        scans = [
            op for op in plan_operators(plan) if isinstance(op, lg.IndexScan)
        ]
        assert {scan.variable for scan in scans} == {"a", "b"}

    def test_index_plans_are_statistics_sensitive(self):
        graph = self.indexed_graph()
        plan = self.run_plan(
            graph, "MATCH (n:L) WHERE n.v = 1 RETURN count(*) AS c"
        )
        assert plan_depends_on_statistics(plan)

    def test_parameter_probe_is_sargable(self):
        graph = self.indexed_graph()
        engine = CypherEngine(graph)
        result = engine.run(
            "MATCH (n:L) WHERE n.v = $x RETURN count(*) AS c",
            parameters={"x": 2},
        )
        assert isinstance(entry_operator(result.plan), lg.IndexScan)
        assert result.value("c") == 3


# ---------------------------------------------------------------------------
# Engines: profiling, plan cache, column caching
# ---------------------------------------------------------------------------


class CountingGraph(MemoryGraph):
    """MemoryGraph counting bulk property-column reads."""

    def __init__(self):
        super().__init__()
        self.bulk_reads = 0

    def node_property_column(self, node_ids, key):
        self.bulk_reads += 1
        return super().node_property_column(node_ids, key)


class TestEngineObservability:
    def profiled(self, mode):
        graph = small_graph()
        graph.create_index("L", "v")
        engine = CypherEngine(graph)
        return engine.run(
            "MATCH (n:L) WHERE n.v = 1 RETURN count(*) AS c",
            mode=mode,
            profile=True,
        )

    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_profile_reports_estimated_vs_actual(self, mode):
        result = self.profiled(mode)
        assert result.execution_mode == mode
        (record,) = result.access_paths
        assert record["operator"] == "IndexScan"
        assert record["entry"] == "index seek :L(v)"
        assert record["estimated_rows"] == pytest.approx(3.0)
        assert record["actual_rows"] == 3

    def test_unprofiled_runs_carry_no_access_paths(self):
        graph = small_graph()
        result = CypherEngine(graph).run("MATCH (n:L) RETURN count(*) AS c")
        assert result.access_paths is None

    def test_profile_covers_label_scans_too(self):
        graph = small_graph()
        result = CypherEngine(graph).run(
            "MATCH (n:L) WHERE n.v = 1 RETURN count(*) AS c", profile=True
        )
        (record,) = result.access_paths
        assert record["entry"] == "label scan :L"
        assert record["actual_rows"] == 12

    def test_create_index_invalidates_stats_sensitive_plans(self):
        graph = small_graph()
        engine = CypherEngine(graph)
        query = "MATCH (n:L) WHERE n.v = 1 RETURN count(*) AS c"
        before = engine.run(query)
        assert isinstance(entry_operator(before.plan), lg.NodeByLabelScan)
        engine.create_index("L", "v")
        after = engine.run(query)
        assert isinstance(entry_operator(after.plan), lg.IndexScan)
        assert engine.drop_index("L", "v") is True

    def test_update_plans_restamp_on_indexed_graphs(self):
        graph = small_graph()
        graph.create_index("L", "v")
        engine = CypherEngine(graph)
        update = "MATCH (n:L) WHERE n.v = 1 SET n.touched = true"
        engine.run(update)
        hits = engine.plan_cache_hits
        engine.run(update)
        assert engine.plan_cache_hits == hits + 1

    def test_index_backed_update_leaves_consistent_index(self):
        graph = small_graph()
        graph.create_index("L", "v")
        engine = CypherEngine(graph)
        engine.run("MATCH (n:L) WHERE n.v = 1 SET n.v = 100")
        assert engine.run(
            "MATCH (n:L) WHERE n.v = 100 RETURN count(*) AS c"
        ).value("c") == 3
        rebuilt = graph.copy()
        assert graph.index_snapshot("L", "v") == rebuilt.index_snapshot(
            "L", "v"
        )


class TestColumnPropertyCaching:
    def counting_engine(self, nodes=100):
        graph = CountingGraph()
        for i in range(nodes):
            graph.create_node(("L",), {"v": i})
        return graph, CypherEngine(graph)

    def test_repeated_reads_share_one_bulk_access(self):
        graph, engine = self.counting_engine()
        engine.run(
            "MATCH (n:L) WHERE n.v >= 0 "
            "RETURN n.v AS a, n.v + n.v AS b",
            mode="batch",
        )
        # filter + three projection occurrences, one store read (one
        # morsel): the memoised reader is shared structurally.
        assert graph.bulk_reads == 1

    def test_cache_is_per_morsel(self):
        from repro.planner.batch import DEFAULT_MORSEL_SIZE

        graph, engine = self.counting_engine(DEFAULT_MORSEL_SIZE + 10)
        engine.run(
            "MATCH (n:L) RETURN n.v AS a, n.v AS b", mode="batch"
        )
        assert graph.bulk_reads == 2  # one per morsel, not per item

    def test_cache_never_leaks_across_filtered_columns(self):
        graph, engine = self.counting_engine(50)
        result = engine.run(
            "MATCH (n:L) WHERE n.v >= 25 RETURN n.v AS v ORDER BY v",
            mode="batch",
        )
        assert result.values("v") == list(range(25, 50))
        assert graph.bulk_reads == 2  # pre-filter column + selected column
