"""Unit tests for the MemoryGraph store (the ⟨N,R,src,tgt,ι,λ,τ⟩ tuple)."""

import pytest

from repro.exceptions import ConstraintViolation, EntityNotFound
from repro.graph.store import MemoryGraph
from repro.values.base import NodeId, RelId


@pytest.fixture
def graph():
    return MemoryGraph()


class TestNodes:
    def test_create_node_assigns_fresh_ids(self, graph):
        first = graph.create_node()
        second = graph.create_node()
        assert first != second
        assert graph.node_count() == 2

    def test_labels_and_properties(self, graph):
        node = graph.create_node(("Person", "Admin"), {"name": "Ann"})
        assert graph.labels(node) == frozenset({"Person", "Admin"})
        assert graph.property_value(node, "name") == "Ann"
        assert graph.properties(node) == {"name": "Ann"}

    def test_iota_is_partial(self, graph):
        node = graph.create_node()
        assert graph.property_value(node, "missing") is None

    def test_null_properties_are_not_stored(self, graph):
        node = graph.create_node((), {"a": None, "b": 1})
        assert graph.properties(node) == {"b": 1}

    def test_label_index(self, graph):
        ann = graph.create_node(("Person",))
        graph.create_node(("Animal",))
        assert list(graph.nodes_with_label("Person")) == [ann]
        assert list(graph.nodes_with_label("Nothing")) == []

    def test_add_and_remove_label_updates_index(self, graph):
        node = graph.create_node()
        graph.add_label(node, "X")
        assert list(graph.nodes_with_label("X")) == [node]
        graph.remove_label(node, "X")
        assert list(graph.nodes_with_label("X")) == []

    def test_unknown_node_raises(self, graph):
        with pytest.raises(EntityNotFound):
            graph.labels(NodeId(99))
        with pytest.raises(EntityNotFound):
            graph.properties(NodeId(99))

    def test_invalid_property_values_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.create_node((), {"bad": object()})
        with pytest.raises(ValueError):
            graph.create_node((), {1: "x"})


class TestRelationships:
    def test_src_tgt_tau(self, graph):
        a, b = graph.create_node(), graph.create_node()
        rel = graph.create_relationship(a, b, "KNOWS", {"since": 1999})
        assert graph.src(rel) == a
        assert graph.tgt(rel) == b
        assert graph.rel_type(rel) == "KNOWS"
        assert graph.property_value(rel, "since") == 1999

    def test_adjacency_lists(self, graph):
        a, b, c = (graph.create_node() for _ in range(3))
        ab = graph.create_relationship(a, b, "R")
        ac = graph.create_relationship(a, c, "R")
        cb = graph.create_relationship(c, b, "S")
        assert set(graph.outgoing(a)) == {ab, ac}
        assert set(graph.incoming(b)) == {ab, cb}
        assert set(graph.outgoing(a, {"R"})) == {ab, ac}
        assert set(graph.incoming(b, {"S"})) == {cb}

    def test_touching_counts_self_loop_once(self, graph):
        node = graph.create_node()
        loop = graph.create_relationship(node, node, "LOOP")
        assert list(graph.touching(node)) == [loop]

    def test_other_end(self, graph):
        a, b = graph.create_node(), graph.create_node()
        rel = graph.create_relationship(a, b, "R")
        assert graph.other_end(rel, a) == b
        assert graph.other_end(rel, b) == a
        stranger = graph.create_node()
        with pytest.raises(EntityNotFound):
            graph.other_end(rel, stranger)

    def test_type_index(self, graph):
        a, b = graph.create_node(), graph.create_node()
        rel = graph.create_relationship(a, b, "R")
        assert list(graph.relationships_with_type("R")) == [rel]
        assert list(graph.relationships_with_type("X")) == []

    def test_endpoints_must_exist(self, graph):
        node = graph.create_node()
        with pytest.raises(EntityNotFound):
            graph.create_relationship(node, NodeId(99), "R")

    def test_type_must_be_nonempty_string(self, graph):
        a, b = graph.create_node(), graph.create_node()
        with pytest.raises(ValueError):
            graph.create_relationship(a, b, "")

    def test_degree(self, graph):
        a, b = graph.create_node(), graph.create_node()
        graph.create_relationship(a, b, "R")
        graph.create_relationship(a, b, "S")
        assert graph.degree(a, "out") == 2
        assert graph.degree(a, "in") == 0
        assert graph.degree(b, "both") == 2
        assert graph.degree(a, "out", rel_type="R") == 1


class TestDeletion:
    def test_delete_relationship(self, graph):
        a, b = graph.create_node(), graph.create_node()
        rel = graph.create_relationship(a, b, "R")
        graph.delete_relationship(rel)
        assert graph.relationship_count() == 0
        assert list(graph.outgoing(a)) == []
        assert list(graph.incoming(b)) == []

    def test_delete_connected_node_requires_detach(self, graph):
        a, b = graph.create_node(), graph.create_node()
        graph.create_relationship(a, b, "R")
        with pytest.raises(ConstraintViolation):
            graph.delete_node(a)
        graph.delete_node(a, detach=True)
        assert graph.node_count() == 1
        assert graph.relationship_count() == 0

    def test_detach_delete_self_loop(self, graph):
        node = graph.create_node()
        graph.create_relationship(node, node, "LOOP")
        graph.delete_node(node, detach=True)
        assert graph.node_count() == 0
        assert graph.relationship_count() == 0

    def test_delete_unknown_entities_raise(self, graph):
        with pytest.raises(EntityNotFound):
            graph.delete_node(NodeId(9))
        with pytest.raises(EntityNotFound):
            graph.delete_relationship(RelId(9))


class TestMutation:
    def test_set_property_and_remove(self, graph):
        node = graph.create_node()
        graph.set_property(node, "k", 5)
        assert graph.property_value(node, "k") == 5
        graph.set_property(node, "k", None)  # null erases
        assert graph.property_value(node, "k") is None
        graph.set_property(node, "k", 1)
        graph.remove_property(node, "k")
        assert graph.properties(node) == {}

    def test_replace_properties(self, graph):
        node = graph.create_node((), {"a": 1, "b": 2})
        graph.replace_properties(node, {"c": 3})
        assert graph.properties(node) == {"c": 3}

    def test_merge_properties(self, graph):
        node = graph.create_node((), {"a": 1, "b": 2})
        graph.merge_properties(node, {"b": 20, "c": 30, "a": None})
        assert graph.properties(node) == {"b": 20, "c": 30}


class TestCopyAndAdopt:
    def test_copy_is_deep(self, graph):
        node = graph.create_node(("L",), {"list": [1, 2]})
        clone = graph.copy()
        graph.set_property(node, "list", [9])
        graph.add_label(node, "Extra")
        assert clone.property_value(node, "list") == [1, 2]
        assert clone.labels(node) == frozenset({"L"})

    def test_copy_preserves_id_sequence(self, graph):
        graph.create_node()
        clone = graph.copy()
        new_in_clone = clone.create_node()
        new_in_original = graph.create_node()
        assert new_in_clone == new_in_original  # same next id

    def test_adopt_node_preserves_identity(self, graph):
        foreign = NodeId(42)
        graph.adopt_node(foreign, ("Person",), {"name": "Ann"})
        assert graph.has_node(foreign)
        assert graph.labels(foreign) == frozenset({"Person"})
        # and the id counter moved past the adopted id
        assert graph.create_node().value > 42

    def test_adopt_duplicate_rejected(self, graph):
        node = graph.create_node()
        with pytest.raises(ValueError):
            graph.adopt_node(node)

    def test_views(self, graph):
        a = graph.create_node(("Person",), {"name": "Ann"})
        b = graph.create_node()
        rel = graph.create_relationship(a, b, "KNOWS", {"w": 1})
        view = graph.node(a)
        assert view.labels == frozenset({"Person"})
        assert view["name"] == "Ann"
        rel_view = graph.relationship(rel)
        assert rel_view.type == "KNOWS"
        assert rel_view.source == a and rel_view.target == b
        assert rel_view["w"] == 1


class TestTypeSegmentedAdjacency:
    """The segmented access paths behind the slotted executor's Expand."""

    def test_multi_type_filter_preserves_insertion_order(self, graph):
        a, b = graph.create_node(), graph.create_node()
        r1 = graph.create_relationship(a, b, "R")
        s1 = graph.create_relationship(a, b, "S")
        r2 = graph.create_relationship(a, b, "R")
        t1 = graph.create_relationship(a, b, "T")
        assert list(graph.outgoing(a, {"R", "S", "T"})) == [r1, s1, r2, t1]
        assert list(graph.outgoing(a, {"R"})) == [r1, r2]
        assert list(graph.outgoing(a, {"X"})) == []
        assert list(graph.incoming(b, {"S", "T"})) == [s1, t1]

    def test_segments_shrink_on_deletion(self, graph):
        a, b = graph.create_node(), graph.create_node()
        r1 = graph.create_relationship(a, b, "R")
        r2 = graph.create_relationship(a, b, "R")
        graph.delete_relationship(r1)
        assert list(graph.outgoing(a, {"R"})) == [r2]
        graph.delete_relationship(r2)
        assert list(graph.outgoing(a, {"R"})) == []
        assert graph.degree(a, "out", rel_type="R") == 0

    def test_copy_and_restore_keep_segments(self, graph):
        a, b = graph.create_node(), graph.create_node()
        rel = graph.create_relationship(a, b, "R")
        clone = graph.copy()
        assert list(clone.outgoing(a, {"R"})) == [rel]
        graph.delete_relationship(rel)
        graph.restore_from(clone)
        assert list(graph.outgoing(a, {"R"})) == [rel]
        assert graph.degree(b, "in", rel_type="R") == 1

    def test_cardinality_hooks_match_indexes(self, graph):
        a = graph.create_node(("Person",))
        graph.create_node(("Person", "Admin"))
        graph.create_relationship(a, a, "LOOP")
        assert graph.label_cardinalities() == {"Person": 2, "Admin": 1}
        assert graph.type_cardinalities() == {"LOOP": 1}

    def test_scan_cache_tracks_mutations(self, graph):
        first = graph.create_node(("L",))
        assert list(graph.nodes_with_label("L")) == [first]
        assert list(graph.nodes_with_label("L")) == [first]  # cached call
        second = graph.create_node(("L",))
        assert list(graph.nodes_with_label("L")) == [first, second]
        graph.delete_node(first)
        assert list(graph.nodes_with_label("L")) == [second]


class TestIncrementalDegree:
    """degree() is O(1) off the segment lengths; check every transition."""

    def test_degree_after_create(self, graph):
        a, b = graph.create_node(), graph.create_node()
        assert graph.degree(a) == 0
        graph.create_relationship(a, b, "R")
        graph.create_relationship(b, a, "S")
        assert graph.degree(a, "out") == 1
        assert graph.degree(a, "in") == 1
        assert graph.degree(a, "both") == 2
        assert graph.degree(a, "out", rel_type="S") == 0
        assert graph.degree(a, "in", rel_type="S") == 1

    def test_degree_after_delete(self, graph):
        a, b = graph.create_node(), graph.create_node()
        rel = graph.create_relationship(a, b, "R")
        graph.create_relationship(a, b, "R")
        graph.delete_relationship(rel)
        assert graph.degree(a, "out") == 1
        assert graph.degree(a, "out", rel_type="R") == 1
        assert graph.degree(b, "in") == 1

    def test_degree_after_detach_delete(self, graph):
        a, b, c = (graph.create_node() for _ in range(3))
        graph.create_relationship(a, b, "R")
        graph.create_relationship(c, b, "R")
        graph.delete_node(a, detach=True)
        assert graph.degree(b, "in") == 1
        assert graph.degree(b, "in", rel_type="R") == 1
        assert graph.degree(c, "out") == 1

    def test_self_loop_counts_twice_in_both(self, graph):
        node = graph.create_node()
        graph.create_relationship(node, node, "LOOP")
        assert graph.degree(node, "out") == 1
        assert graph.degree(node, "in") == 1
        assert graph.degree(node, "both") == 2


class TestSelfLoopDeletion:
    """Regression: incident-edge collection must not double-count loops.

    delete_node gathers outgoing plus incoming-minus-outgoing (now via a
    set, not an O(d) list probe); a self-loop appears in both lists and
    must be deleted exactly once.
    """

    def test_delete_node_with_self_loop_and_neighbours(self, graph):
        node, other = graph.create_node(), graph.create_node()
        graph.create_relationship(node, node, "LOOP")
        graph.create_relationship(node, other, "OUT")
        graph.create_relationship(other, node, "IN")
        graph.delete_node(node, detach=True)
        assert graph.node_count() == 1
        assert graph.relationship_count() == 0
        assert list(graph.outgoing(other)) == []
        assert list(graph.incoming(other)) == []

    def test_loop_still_blocks_undetached_delete(self, graph):
        node = graph.create_node()
        graph.create_relationship(node, node, "LOOP")
        with pytest.raises(ConstraintViolation):
            graph.delete_node(node)
        assert graph.has_node(node)

    def test_many_loops_deleted_once_each(self, graph):
        node = graph.create_node()
        for _ in range(5):
            graph.create_relationship(node, node, "LOOP")
        graph.delete_node(node, detach=True)
        assert graph.relationship_count() == 0


class TestIndexAliasing:
    """``copy()`` / ``restore_from`` must never alias index internals.

    Regression guard for PR 6: rollback and snapshot correctness both
    assume a copied graph's indexes are independent — a shared segment
    list or postings set would let mutations on one graph corrupt the
    other's index silently (reads would drift from a rebuild).
    """

    def make_indexed(self):
        graph = MemoryGraph()
        for value in (1, 1, 2, 3):
            graph.create_node(["L"], {"v": value})
        graph.create_index("L", "v")
        return graph

    def test_mutating_the_copy_leaves_the_original_index_alone(self):
        original = self.make_indexed()
        before = original.index_snapshot("L", "v")
        clone = original.copy()
        clone.create_node(["L"], {"v": 99})
        for node in list(clone.nodes()):
            if clone.property_value(node, "v") == 1:
                clone.set_property(node, "v", 42)
        assert original.index_snapshot("L", "v") == before

    def test_mutating_the_original_leaves_the_copy_alone(self):
        original = self.make_indexed()
        clone = original.copy()
        before = clone.index_snapshot("L", "v")
        original.create_node(["L"], {"v": 77})
        assert clone.index_snapshot("L", "v") == before

    def test_restore_from_detaches_from_the_donor(self):
        graph = self.make_indexed()
        donor = graph.copy()
        graph.restore_from(donor)
        graph.create_node(["L"], {"v": 123})
        assert donor.index_lookup("L", "v", 123) == []
        assert graph.index_lookup("L", "v", 123) != []

    def test_restored_index_equals_a_rebuild(self):
        graph = self.make_indexed()
        pristine = graph.copy()
        graph.create_node(["L"], {"v": 5})
        graph.restore_from(pristine)
        rebuilt = graph.copy()
        assert graph.index_snapshot("L", "v") == rebuilt.index_snapshot(
            "L", "v"
        )
