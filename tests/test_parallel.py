"""Parallel morsel execution: scheduler, claim, exchange, merges.

The differential sweep in ``test_batched_differential.py`` already
holds parallel runs to record-identical output across the fuzz corpus;
this file tests the machinery itself — the scheduler contract (task
-order results and errors), the ``plan_supports_parallel`` claim and
plan split, cost-gated mode selection, cancellation fan-out, and the
observability surfaces (``QueryResult.parallelism``, the profile's
``Exchange`` record, the ``Gather``/``Exchange`` explain rendering).
"""

import threading

import pytest

from repro import CypherEngine
from repro.exceptions import CypherRuntimeError, QueryCancelled, QueryTimeout
from repro.planner import logical as lg
from repro.planner.cost import estimated_source_rows
from repro.planner.parallel import (
    DEFAULT_PARALLEL_THRESHOLD,
    _partition,
    _split,
    describe_parallel,
    plan_supports_parallel,
)
from repro.runtime.cancel import AbortToken, CancelToken
from repro.runtime.scheduler import (
    Scheduler,
    SerialScheduler,
    ThreadScheduler,
    get_scheduler,
)


def build_engine(n=120, **kwargs):
    engine = CypherEngine(**kwargs)
    engine.run(
        "UNWIND range(0, %d) AS i "
        "CREATE (:P {v: i %% 10, name: 'p' + toString(i)})" % (n - 1)
    )
    engine.run(
        "MATCH (a:P), (b:P) WHERE a.v = b.v AND a.name < b.name AND a.v < 2 "
        "CREATE (a)-[:R]->(b)"
    )
    return engine


class TestScheduler:
    def test_serial_runs_in_task_order(self):
        order = []
        tasks = [lambda i=i: (order.append(i), i)[1] for i in range(5)]
        assert SerialScheduler().run_tasks(tasks) == [0, 1, 2, 3, 4]
        assert order == [0, 1, 2, 3, 4]

    def test_thread_results_in_task_order_not_completion_order(self):
        import time

        def make(i):
            def task():
                time.sleep(0.02 * (4 - i))  # later tasks finish first
                return i

            return task

        results = ThreadScheduler(workers=4).run_tasks(
            [make(i) for i in range(4)]
        )
        assert results == [0, 1, 2, 3]

    def test_thread_uses_worker_threads(self):
        idents = []
        tasks = [
            lambda: idents.append(threading.get_ident()) for _ in range(4)
        ]
        ThreadScheduler(workers=4).run_tasks(tasks)
        assert any(ident != threading.get_ident() for ident in idents)

    def test_single_task_runs_inline(self):
        idents = []
        ThreadScheduler(workers=4).run_tasks(
            [lambda: idents.append(threading.get_ident())]
        )
        assert idents == [threading.get_ident()]

    def test_lowest_index_error_wins_and_abort_fires(self):
        aborted = []

        def ok():
            return "fine"

        def boom_a():
            raise ValueError("a")

        def boom_b():
            raise KeyError("b")

        for scheduler in (SerialScheduler(), ThreadScheduler(workers=4)):
            with pytest.raises(ValueError):
                scheduler.run_tasks(
                    [ok, boom_a, boom_b], abort=lambda: aborted.append(1)
                )
        assert len(aborted) == 2

    def test_get_scheduler_factory(self):
        assert isinstance(get_scheduler(None, 1), SerialScheduler)
        assert isinstance(get_scheduler(None, 4), ThreadScheduler)
        assert get_scheduler(None, 4).workers == 4
        assert isinstance(get_scheduler("serial", 4), SerialScheduler)
        instance = ThreadScheduler(workers=2)
        assert get_scheduler(instance, 8) is instance
        with pytest.raises(ValueError):
            get_scheduler("fibers", 4)
        assert issubclass(ThreadScheduler, Scheduler)


class TestClaimAndSplit:
    def _plan(self, engine, query):
        plan, _updating = engine._plan_for_explain(query)
        return plan

    def test_scan_rooted_reads_are_claimed(self):
        engine = build_engine(n=20)
        for query in (
            "MATCH (n:P) RETURN n.v AS v",
            "MATCH (n) RETURN count(*) AS c",
            "MATCH (a:P)-[:R]->(b) RETURN a.v AS v ORDER BY v LIMIT 3",
            "MATCH (a:P)-[:R*1..2]->(b) RETURN count(*) AS c",
        ):
            assert plan_supports_parallel(self._plan(engine, query)), query

    def test_unclaimed_shapes(self):
        engine = build_engine(n=20)
        for query in (
            "RETURN 1 AS x",  # no source scan above Init
            "UNWIND [1, 2] AS x RETURN x",
            "MATCH (a:P) OPTIONAL MATCH (a)-[:R]->(b) RETURN a, b",
            "CREATE (:Q) RETURN 1 AS x",
        ):
            assert not plan_supports_parallel(self._plan(engine, query)), query

    def test_split_places_partial_and_tail(self):
        engine = build_engine(n=20)
        plan = self._plan(
            engine,
            "MATCH (n:P) RETURN n.v AS v ORDER BY n.v SKIP 2 LIMIT 3",
        )
        worker_ops, partial, tail_ops, source = _split(plan)
        assert isinstance(source, lg.NodeByLabelScan)
        assert isinstance(partial, lg.Top)  # Sort+Skip+Limit fuse to Top
        plain = self._plan(engine, "MATCH (n:P) WHERE n.v > 2 RETURN n.v AS v")
        worker_ops, partial, tail_ops, source = _split(plain)
        assert partial is None
        assert any(isinstance(op, lg.Filter) for op in worker_ops)

    def test_partition_contiguous_and_deterministic(self):
        items = list(range(100))
        chunks = _partition(items, workers=4, morsel_size=8)
        assert chunks == _partition(items, workers=4, morsel_size=8)
        assert [x for chunk in chunks for x in chunk] == items
        assert 1 < len(chunks) <= 8
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1
        assert _partition(items, workers=1, morsel_size=8) == [items]
        assert _partition([], workers=4, morsel_size=8) == [[]]


class TestModeSelection:
    def test_auto_stays_serial_below_threshold(self):
        engine = build_engine(n=50, workers=4)
        result = engine.run("MATCH (n:P) RETURN count(*) AS c")
        assert result.execution_mode == "batch"
        assert result.parallelism is None

    def test_auto_parallelises_above_threshold(self):
        engine = build_engine(
            n=50, workers=4, parallel_threshold=10, morsel_size=8
        )
        result = engine.run("MATCH (n:P) RETURN count(*) AS c")
        assert result.execution_mode == "parallel"
        assert result.parallelism["partitions"] > 1

    def test_single_worker_engine_never_parallelises_in_auto(self):
        engine = build_engine(n=50, parallel_threshold=10)
        result = engine.run("MATCH (n:P) RETURN count(*) AS c")
        assert result.execution_mode == "batch"

    def test_pinned_parallel_ignores_threshold(self):
        engine = build_engine(n=12, workers=2, morsel_size=4)
        result = engine.run("MATCH (n:P) RETURN count(*) AS c", mode="parallel")
        assert result.execution_mode == "parallel"

    def test_pinned_parallel_degrades_to_batch_outside_claim(self):
        engine = build_engine(n=12, workers=2)
        result = engine.run("UNWIND [1, 2] AS x RETURN x", mode="parallel")
        assert result.execution_mode == "batch"

    def test_estimated_source_rows(self):
        engine = build_engine(n=50)
        plan, _ = engine._plan_for_explain("MATCH (n:P) RETURN n.v AS v")
        assert estimated_source_rows(plan, engine.graph) == 50.0
        plan, _ = engine._plan_for_explain("MATCH (n) RETURN count(*) AS c")
        assert estimated_source_rows(plan, engine.graph) == 50.0
        assert DEFAULT_PARALLEL_THRESHOLD > 0


class TestCancellation:
    def test_pre_cancelled_token_refuses(self):
        engine = build_engine(n=30, workers=4, morsel_size=4)
        token = CancelToken()
        token.cancel()
        with pytest.raises(QueryCancelled):
            engine.run(
                "MATCH (n:P) RETURN count(*) AS c",
                mode="parallel",
                cancel=token,
            )

    def test_timeout_interrupts_all_workers(self):
        engine = build_engine(n=60, workers=4, morsel_size=4)
        with pytest.raises(QueryTimeout):
            engine.run(
                "MATCH (a:P), (b:P), (c:P), (d:P) RETURN count(*) AS c",
                mode="parallel",
                timeout=0.05,
            )

    def test_worker_error_propagates_once(self):
        engine = build_engine(n=60, workers=4, morsel_size=4)
        with pytest.raises(CypherRuntimeError):
            engine.run(
                "MATCH (n:P) RETURN n.v AS v ORDER BY n.v LIMIT -1",
                mode="parallel",
            )
        # The engine stays usable after a failed parallel run.
        assert engine.run(
            "MATCH (n:P) RETURN count(*) AS c", mode="parallel"
        ).value() == 60

    def test_abort_token_relays_inner_and_own_flag(self):
        inner = CancelToken()
        token = AbortToken(inner)
        assert not token._cancelled
        inner.cancel()
        assert token._cancelled
        own = AbortToken(None)
        own.abort()
        assert own._cancelled


class TestObservability:
    def test_parallelism_record_shape(self):
        engine = build_engine(n=40, workers=4, morsel_size=4)
        result = engine.run("MATCH (n:P) RETURN n.v AS v", mode="parallel")
        info = result.parallelism
        assert info["workers"] == 4
        assert info["scheduler"] == "thread"
        assert info["merge"] == "ordered"
        assert info["source_rows"] == 40
        assert sum(info["worker_rows"]) == 40
        assert len(info["worker_rows"]) == info["partitions"] > 1
        assert len(info["worker_threads"]) == info["partitions"]

    def test_profile_carries_exchange_record(self):
        engine = build_engine(n=40, workers=4, morsel_size=4)
        result = engine.run(
            "MATCH (n:P) WHERE n.v > 1 RETURN n.v AS v",
            mode="parallel",
            profile=True,
        )
        exchange = [
            record
            for record in result.access_paths
            if record["operator"] == "Exchange"
        ]
        assert len(exchange) == 1
        record = exchange[0]
        assert record["partitions"] > 1
        assert len(record["worker_morsels"]) == record["partitions"]
        assert sum(record["worker_rows"]) == record["actual_rows"]
        # The scan record survives, with summed actuals.
        scans = [
            r for r in result.access_paths if r["operator"] == "NodeByLabelScan"
        ]
        assert scans and scans[0]["actual_rows"] == 40

    def test_profile_matches_cli_rendering(self):
        from repro.cli import _access_path_lines

        engine = build_engine(n=40, workers=4, morsel_size=4)
        result = engine.run(
            "MATCH (n:P) RETURN n.v AS v", mode="parallel", profile=True
        )
        lines = _access_path_lines(result.access_paths)
        assert any("morsels/worker" in line for line in lines)

    def test_explain_renders_exchange_and_gather(self):
        engine = build_engine(n=40, workers=4, morsel_size=4, mode="parallel")
        _by, _reason, text, _cache, mode = engine.explain_info(
            "MATCH (n:P) RETURN n.v AS v, count(*) AS c"
        )
        assert mode == "parallel"
        assert "Exchange(workers=4" in text
        assert "Gather(merge=aggregate)" in text

    def test_describe_parallel_tail_keeps_skip_limit_outside(self):
        engine = build_engine(n=40)
        plan, _ = engine._plan_for_explain(
            "MATCH (n:P) RETURN n.v AS v SKIP 2"
        )
        shown = describe_parallel(plan, 2, graph=engine.graph)
        text = shown.describe()
        assert text.index("Skip") < text.index("Exchange")


class TestSessionIntegration:
    def test_snapshot_overlay_inherits_parallel_knobs(self):
        engine = build_engine(n=40, workers=4, morsel_size=4, mode="parallel")
        with engine.session() as session:
            snapshot = session.snapshot()
            result = snapshot.run("MATCH (n:P) RETURN count(*) AS c")
            assert result.execution_mode == "parallel"
            assert result.parallelism["partitions"] > 1
            assert result.value() == 40
