"""Integration: the paper's Section 3 industry queries on synthetic data
(E2 network management, E3 fraud detection)."""

from collections import Counter

import networkx as nx
import pytest

from repro.datasets.datacenter import datacenter_graph
from repro.datasets.fraud import fraud_graph
from tests.conftest import run_both

NETWORK_QUERY = (
    "MATCH (svc:Service)<-[:DEPENDS_ON*]-(dep:Service) "
    "RETURN svc, count(DISTINCT dep) AS dependents "
    "ORDER BY dependents DESC "
    "LIMIT 1"
)

FRAUD_QUERY = (
    "MATCH (accHolder:AccountHolder)-[:HAS]->(pInfo) "
    "WHERE pInfo:SSN OR pInfo:PhoneNumber OR pInfo:Address "
    "WITH pInfo, "
    "collect(accHolder.uniqueId) AS accountHolders, "
    "count(*) AS fraudRingCount "
    "WHERE fraudRingCount > 1 "
    "RETURN accountHolders, "
    "labels(pInfo) AS personalInformation, "
    "fraudRingCount"
)


class TestNetworkManagement:
    """'returns the component that is depended upon — both directly and
    indirectly — by the largest number of entities.'"""

    def test_against_networkx_ground_truth(self):
        graph, _layers = datacenter_graph(layers=4, width=5, fanout=2, seed=3)
        # ground truth: transitive dependents per service, via networkx
        digraph = nx.DiGraph()
        for rel in graph.relationships():
            digraph.add_edge(graph.src(rel), graph.tgt(rel))
        for node in graph.nodes():
            digraph.add_node(node)
        dependents = {
            node: len(nx.ancestors(digraph, node)) for node in digraph.nodes
        }
        best_count = max(dependents.values())

        result = run_both(graph, NETWORK_QUERY)
        record = result.single()
        assert record["dependents"] == best_count
        assert dependents[record["svc"]] == best_count

    def test_core_layer_wins(self):
        graph, layers = datacenter_graph(layers=3, width=4, fanout=2, seed=1)
        result = run_both(graph, NETWORK_QUERY)
        winner = result.single()["svc"]
        assert winner in layers[0]  # the core layer accumulates dependents


class TestFraudDetection:
    """'returns details regarding a potential fraud ring, in which distinct
    account holders share personal information.'"""

    def test_planted_rings_are_found(self):
        graph, planted = fraud_graph(holders=20, rings=3, ring_size=3, seed=7)
        result = run_both(graph, FRAUD_QUERY)
        found_counts = {
            tuple(sorted(record["accountHolders"])): record["fraudRingCount"]
            for record in result.records
        }
        assert len(result) == len(planted)
        for ring in planted:
            members = tuple(
                sorted(
                    graph.property_value(member, "uniqueId")
                    for member in ring["members"]
                )
            )
            assert members in found_counts
            assert found_counts[members] == len(ring["members"])

    def test_labels_function_reports_pii_kind(self):
        graph, planted = fraud_graph(holders=12, rings=1, ring_size=4, seed=5)
        result = run_both(graph, FRAUD_QUERY)
        record = result.single()
        assert record["personalInformation"] == [planted[0]["label"]]

    def test_no_rings_no_rows(self):
        graph, _ = fraud_graph(holders=10, rings=0, seed=2)
        result = run_both(graph, FRAUD_QUERY)
        assert len(result) == 0


class TestCitationWorkload:
    def test_supervision_counts_match_direct_count(self):
        from repro.datasets.citations import citation_network

        graph, handles = citation_network(
            publications=25, researchers=6, students=8, seed=11
        )
        result = run_both(
            graph,
            "MATCH (r:Researcher) "
            "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
            "RETURN r, count(s) AS supervised",
        )
        for record in result.records:
            expected = sum(
                1
                for rel in graph.outgoing(record["r"])
                if graph.rel_type(rel) == "SUPERVISES"
            )
            assert record["supervised"] == expected

    def test_citation_dag_terminates_and_counts(self):
        from repro.datasets.citations import citation_network

        graph, handles = citation_network(publications=20, seed=4)
        result = run_both(
            graph,
            "MATCH (p:Publication)<-[:CITES*]-(q:Publication) "
            "RETURN p, count(DISTINCT q) AS citers",
        )
        digraph = nx.DiGraph()
        for rel in graph.relationships_with_type("CITES"):
            digraph.add_edge(graph.src(rel), graph.tgt(rel))
        for record in result.records:
            expected = len(nx.ancestors(digraph, record["p"]))
            assert record["citers"] == expected
