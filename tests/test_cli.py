"""Unit tests for the interactive shell (driven through StringIO)."""

import io

import pytest

from repro.cli import Shell, main
from repro.graph.builder import GraphBuilder
from repro.runtime.engine import CypherEngine


def make_shell(graph=None):
    output = io.StringIO()
    engine = CypherEngine(graph) if graph is not None else None
    shell = Shell(engine=engine, output=output)
    return shell, output


class TestQueries:
    def test_query_prints_table_and_row_count(self):
        shell, output = make_shell()
        shell.handle("RETURN 1 AS x;")
        text = output.getvalue()
        assert "x" in text
        assert "(1 row)" in text

    def test_updates_print_ok(self):
        shell, output = make_shell()
        shell.handle("CREATE (:Person {name: 'Ann'})")
        assert "ok" in output.getvalue()
        shell.handle("MATCH (p:Person) RETURN p.name AS name")
        assert "Ann" in output.getvalue()

    def test_errors_are_reported_not_raised(self):
        shell, output = make_shell()
        shell.handle("MATCH (")
        assert "error:" in output.getvalue()

    def test_blank_lines_ignored(self):
        shell, output = make_shell()
        assert shell.handle("   ") is True
        assert output.getvalue() == ""


class TestCommands:
    def test_quit_stops_the_loop(self):
        shell, _ = make_shell()
        assert shell.handle(":quit") is False

    def test_help(self):
        shell, output = make_shell()
        shell.handle(":help")
        assert ":schema" in output.getvalue()

    def test_schema(self):
        graph, _ = (
            GraphBuilder()
            .node("a", "Person").node("b", "City")
            .rel("a", "IN", "b")
            .build()
        )
        shell, output = make_shell(graph)
        shell.handle(":schema")
        text = output.getvalue()
        assert "2 nodes, 1 relationships" in text
        assert "City" in text and "Person" in text and "IN" in text

    def test_mode_switch(self):
        shell, output = make_shell()
        shell.handle(":mode planner")
        assert shell.engine.mode == "planner"
        shell.handle(":mode bogus")
        assert "usage" in output.getvalue()

    def test_explain(self):
        shell, output = make_shell()
        shell.handle(":explain MATCH (n) RETURN n")
        text = output.getvalue()
        assert "AllNodesScan" in text
        assert "execution mode: batch" in text

    def test_unknown_command(self):
        shell, output = make_shell()
        shell.handle(":frobnicate")
        assert "unknown command" in output.getvalue()

    def test_save_and_load(self, tmp_path):
        graph, _ = GraphBuilder().node("a", "L", v=1).build()
        shell, output = make_shell(graph)
        path = str(tmp_path / "g.json")
        shell.handle(":save %s" % path)
        assert "saved" in output.getvalue()

        fresh, fresh_output = make_shell()
        fresh.handle(":load %s" % path)
        assert "loaded 1 nodes" in fresh_output.getvalue()
        fresh.handle("MATCH (n:L) RETURN n.v AS v")
        assert "1" in fresh_output.getvalue()

    def test_load_missing_file(self):
        shell, output = make_shell()
        shell.handle(":load /nonexistent/file.json")
        assert "error:" in output.getvalue()

    def test_reach_lifecycle(self):
        graph, _ = (
            GraphBuilder()
            .node("a", "L", name="x").node("b", "L", name="y")
            .rel("a", "R", "b")
            .build()
        )
        shell, output = make_shell(graph)
        shell.handle(":reach")
        assert "no reachability indexes" in output.getvalue()
        shell.handle(":reach :R")
        assert "created reachability index :R" in output.getvalue()
        shell.handle(":reach *")
        assert "created reachability index <any type>" in output.getvalue()
        shell.handle(":reach :R")
        assert "already exists" in output.getvalue()
        shell.handle(":reach")
        assert "2 node(s), 1 edge(s), 2 component(s)" in output.getvalue()
        shell.handle(":schema")
        assert "reachability indexes: <any type>, :R" in output.getvalue()
        shell.handle(
            ":explain MATCH (a {name:'x'}), (b {name:'y'}) "
            "MATCH (a)-[:R*]->(b) RETURN count(*) AS c"
        )
        assert "ReachabilityProbe" in output.getvalue()
        assert "via reach(:R, forward)" in output.getvalue()
        shell.handle(":reach drop :R")
        assert "dropped reachability index :R" in output.getvalue()
        shell.handle(":reach drop :R")
        assert "no reachability index :R" in output.getvalue()
        shell.handle(":reach bad(spec)")
        assert "usage: :reach" in output.getvalue()

    def test_run_drives_multiple_lines(self):
        shell, output = make_shell()
        shell.run(["CREATE (:A)", "MATCH (a:A) RETURN count(*) AS n", ":quit",
                   "RETURN 'never' AS x"])
        text = output.getvalue()
        assert "never" not in text
        assert "1" in text


class TestMain:
    def test_one_shot_query(self, capsys):
        exit_code = main(["--query", "RETURN 40 + 2 AS answer"])
        assert exit_code == 0
        assert "42" in capsys.readouterr().out

    def test_graph_loading(self, tmp_path, capsys):
        from repro.graph.io import dump_json

        graph, _ = GraphBuilder().node("a", "Person", name="Ann").build()
        path = str(tmp_path / "g.json")
        dump_json(graph, path)
        main(["--graph", path, "--query",
              "MATCH (p:Person) RETURN p.name AS name"])
        assert "Ann" in capsys.readouterr().out


class TestExplainSubcommand:
    def test_reach_index_flag_takes_the_probe(self, tmp_path, capsys):
        from repro.graph.io import dump_json

        graph, _ = (
            GraphBuilder()
            .node("a", "L", name="x").node("b", "L", name="y")
            .rel("a", "R", "b")
            .build()
        )
        path = str(tmp_path / "g.json")
        dump_json(graph, path)
        code = main([
            "explain",
            "MATCH (a {name:'x'}), (b {name:'y'}) "
            "MATCH (a)-[:R*]->(b) RETURN count(*) AS c",
            "--graph", path, "--reach-index", ":R", "--profile",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "ReachabilityProbe" in text
        assert "reachability probe :R (forward)" in text

    def test_bad_reach_spec_is_rejected(self, capsys):
        code = main([
            "explain", "RETURN 1 AS x", "--reach-index", "totally bad",
        ])
        assert code == 2
        assert "bad reachability spec" in capsys.readouterr().err


class TestSelftestSubcommand:
    def test_selftest_passes_on_healthy_build(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "differential reads" in out
        assert "tck smoke set" in out
        assert "selftest passed" in out

    def test_selftest_reports_divergence(self, monkeypatch, capsys):
        """A diverging executor must flip the exit code, not just print."""
        from repro import selftest as selftest_module
        from repro.semantics.table import Table

        real_run = CypherEngine.run

        def lying_run(self, query_text, parameters=None, mode=None, **options):
            result = real_run(self, query_text, parameters, mode, **options)
            if mode == "batch" and result.columns:
                result._table = Table(result.table.fields, [])  # drop rows
            return result

        monkeypatch.setattr(CypherEngine, "run", lying_run)
        monkeypatch.setattr(selftest_module, "TCK_SMOKE", ())
        assert main(["selftest"]) == 1
        assert "FAIL" in capsys.readouterr().out


class TestBenchSubcommand:
    def test_bench_invokes_pytest_on_bench_files(self, monkeypatch):
        import pytest as pytest_module

        captured = {}

        def fake_main(argv):
            captured["argv"] = argv
            return 0

        monkeypatch.setattr(pytest_module, "main", fake_main)
        assert main(["bench", "--pipeline-only", "-k", "expand"]) == 0
        argv = captured["argv"]
        assert "-k" in argv and "expand" in argv
        targets = [arg for arg in argv if arg.endswith(".py")]
        assert targets, "bench files must be passed explicitly"
        assert all("bench_p" in target for target in targets)

    def test_bench_output_override_scoped_to_run(self, monkeypatch, tmp_path):
        import os

        import pytest as pytest_module

        seen = {}

        def fake_main(argv):
            seen["env"] = os.environ.get("BENCH_PIPELINE_PATH")
            return 0

        monkeypatch.setattr(pytest_module, "main", fake_main)
        out = str(tmp_path / "perf.json")
        main(["bench", "--output", out])
        assert seen["env"] == out  # visible to the benchmark session...
        assert "BENCH_PIPELINE_PATH" not in os.environ  # ...then restored


class TestTransactions:
    """:begin / :commit / :rollback / :timeout (PR 6)."""

    def test_begin_commit_makes_changes_durable(self):
        shell, output = make_shell()
        shell.handle(":begin")
        shell.handle("CREATE (:P {name: 'Ann'})")
        shell.handle(":commit")
        shell.handle("MATCH (p:P) RETURN count(*) AS c")
        text = output.getvalue()
        assert "transaction begun" in text
        assert "transaction committed" in text
        assert "1" in text.splitlines()[-2]

    def test_rollback_discards_everything_since_begin(self):
        shell, output = make_shell()
        shell.handle(":begin")
        shell.handle("CREATE (:P {name: 'Gone'})")
        shell.handle("CREATE (:P {name: 'AlsoGone'})")
        shell.handle(":rollback")
        assert "transaction rolled back" in output.getvalue()
        assert shell.engine.graph.node_count() == 0

    def test_commit_without_begin_is_a_one_line_error(self):
        shell, output = make_shell()
        shell.handle(":commit")
        assert "error: no open transaction" in output.getvalue()

    def test_double_begin_is_a_one_line_error(self):
        shell, output = make_shell()
        shell.handle(":begin")
        shell.handle(":begin")
        assert "error: a transaction is already open" in output.getvalue()
        shell.handle(":rollback")

    def test_load_refused_during_transaction(self):
        shell, output = make_shell()
        shell.handle(":begin")
        shell.handle(":load somewhere.json")
        assert ":commit or :rollback before :load" in output.getvalue()
        shell.handle(":rollback")

    def test_timeout_fires_as_one_line_error_not_traceback(self):
        shell, output = make_shell()
        shell.handle("UNWIND range(1, 40) AS i CREATE (:N {v: i})")
        shell.handle(":timeout 1")
        shell.handle("MATCH (a:N), (b:N), (c:N), (d:N) RETURN count(*) AS c")
        text = output.getvalue()
        assert "timeout set to 1 ms" in text
        assert "error: query exceeded its time limit" in text
        assert "Traceback" not in text

    def test_interrupted_write_is_rolled_back(self):
        shell, output = make_shell()
        shell.handle("UNWIND range(1, 40) AS i CREATE (:N {v: i})")
        shell.handle(":timeout 1")
        shell.handle(
            "MATCH (a:N), (b:N), (c:N) CREATE (:Cross {v: a.v + b.v + c.v})"
        )
        assert "error: query exceeded its time limit" in output.getvalue()
        shell.handle(":timeout off")
        shell.handle("MATCH (x:Cross) RETURN count(*) AS c")
        assert shell.engine.graph.node_count() == 40

    def test_timeout_off_and_status(self):
        shell, output = make_shell()
        shell.handle(":timeout")
        shell.handle(":timeout 250")
        shell.handle(":timeout")
        shell.handle(":timeout off")
        shell.handle(":timeout banana")
        text = output.getvalue()
        assert "timeout: unlimited" in text
        assert "timeout: 250 ms" in text
        assert "timeout disabled" in text
        assert "usage: :timeout" in text

    def test_overload_is_a_one_line_error(self):
        shell, output = make_shell()
        shell.engine.max_sessions = 1
        import threading

        shell.engine._admission = threading.BoundedSemaphore(1)
        with shell.engine.session() as _held:
            shell.handle(":begin")
        assert "error: engine is at its 1 in-flight session" in output.getvalue()
