"""Differential harness for transactional sessions (PR 6).

Fuzzes multi-statement transaction scripts — begin → mixed updates →
commit/rollback, statements drawn from the shared update corpus — and
holds the session machinery to two invariants:

* **executor agreement**: the same script replayed through sessions on
  the reference interpreter, the row engine and the batch engine leaves
  byte-identical final stores (the single-statement differential's
  guarantee, lifted to transactions);
* **semantic baseline**: the final store equals replaying only the
  *durable* statements (auto-committed plus committed-transaction ones,
  rolled-back blocks dropped) with plain auto-commit — transactions add
  atomicity, never new semantics.

Indexed clones run the same scripts so rollback's index restoration is
fuzzed too (checked against a from-scratch rebuild every time).
"""

from hypothesis import given, settings

from repro import CypherEngine
from repro.exceptions import CypherError

from fuzztools import (
    apply_script,
    assert_indexes_consistent,
    committed_statements,
    fixture_graph,
    graph_state,
    indexed_fixture_graph,
    transaction_scripts,
)

_MODES = ("interpreter", "row", "batch")


def _replay(script, make_graph, mode):
    graph = make_graph()
    apply_script(CypherEngine(graph), script, mode=mode)
    return graph


class TestScriptedSessions:
    @settings(max_examples=40, deadline=None)
    @given(script=transaction_scripts())
    def test_three_executor_agreement(self, script):
        states = {
            mode: graph_state(_replay(script, fixture_graph, mode))
            for mode in _MODES
        }
        assert states["row"] == states["interpreter"], script
        assert states["batch"] == states["interpreter"], script

    @settings(max_examples=40, deadline=None)
    @given(script=transaction_scripts())
    def test_equals_durable_statement_replay(self, script):
        scripted = _replay(script, fixture_graph, None)
        baseline = fixture_graph()
        engine = CypherEngine(baseline)
        for statement in committed_statements(script):
            try:
                engine.run(statement)
            except CypherError:
                # identical partial-failure semantics, statement by
                # statement — the state comparison holds them to it
                pass
        assert graph_state(scripted) == graph_state(baseline), script

    @settings(max_examples=30, deadline=None)
    @given(script=transaction_scripts())
    def test_indexes_survive_scripted_transactions(self, script):
        graph = _replay(script, indexed_fixture_graph, None)
        assert_indexes_consistent(graph)
        plain = _replay(script, fixture_graph, None)
        assert graph_state(graph) == graph_state(plain), script
