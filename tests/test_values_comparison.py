"""Unit tests for ternary equality, comparison and connectives (paper §4.3:
"just like SQL, Cypher uses 3-value logic for dealing with nulls")."""

import math

import pytest

from repro.values.base import NodeId, RelId
from repro.values.comparison import (
    and3,
    compare,
    equals,
    greater,
    is_true,
    less,
    less_equal,
    not3,
    not_equals,
    or3,
    xor3,
)
from repro.values.path import Path


class TestConnectives:
    # The SQL truth tables, row by row.
    @pytest.mark.parametrize(
        "left,right,expected",
        [
            (True, True, True), (True, False, False), (True, None, None),
            (False, True, False), (False, False, False), (False, None, False),
            (None, True, None), (None, False, False), (None, None, None),
        ],
    )
    def test_and3(self, left, right, expected):
        assert and3(left, right) is expected

    @pytest.mark.parametrize(
        "left,right,expected",
        [
            (True, True, True), (True, False, True), (True, None, True),
            (False, True, True), (False, False, False), (False, None, None),
            (None, True, True), (None, False, None), (None, None, None),
        ],
    )
    def test_or3(self, left, right, expected):
        assert or3(left, right) is expected

    @pytest.mark.parametrize(
        "left,right,expected",
        [
            (True, True, False), (True, False, True), (True, None, None),
            (False, False, False), (None, False, None), (None, None, None),
        ],
    )
    def test_xor3(self, left, right, expected):
        assert xor3(left, right) is expected

    def test_not3(self):
        assert not3(True) is False
        assert not3(False) is True
        assert not3(None) is None

    def test_is_true_is_strict(self):
        assert is_true(True)
        assert not is_true(None)
        assert not is_true(1)


class TestEquality:
    def test_null_propagates(self):
        assert equals(None, None) is None
        assert equals(1, None) is None
        assert equals(None, "x") is None

    def test_numbers_compare_across_int_and_float(self):
        assert equals(1, 1.0) is True
        assert equals(1, 2) is False

    def test_nan_is_not_equal_to_itself(self):
        assert equals(float("nan"), float("nan")) is False

    def test_mixed_types_are_not_equal(self):
        assert equals(1, "1") is False
        assert equals(True, 1) is False
        assert equals([], {}) is False

    def test_entity_identity(self):
        assert equals(NodeId(1), NodeId(1)) is True
        assert equals(NodeId(1), NodeId(2)) is False
        assert equals(NodeId(1), RelId(1)) is False

    def test_paths_by_sequence(self):
        a = Path((NodeId(1), NodeId(2)), (RelId(1),))
        b = Path((NodeId(1), NodeId(2)), (RelId(1),))
        assert equals(a, b) is True

    def test_list_equality_elementwise(self):
        assert equals([1, 2], [1, 2]) is True
        assert equals([1, 2], [1, 3]) is False
        assert equals([1, 2], [1]) is False

    def test_list_equality_with_null_is_unknown(self):
        assert equals([1, None], [1, 2]) is None
        # ... but a definite mismatch dominates the unknown:
        assert equals([1, None], [2, None]) is False

    def test_map_equality(self):
        assert equals({"a": 1}, {"a": 1}) is True
        assert equals({"a": 1}, {"a": 2}) is False
        assert equals({"a": 1}, {"b": 1}) is False
        assert equals({"a": None}, {"a": 1}) is None

    def test_nested_structures(self):
        assert equals({"a": [1, {"b": 2}]}, {"a": [1, {"b": 2}]}) is True

    def test_not_equals_negates(self):
        assert not_equals(1, 2) is True
        assert not_equals(1, 1) is False
        assert not_equals(1, None) is None


class TestComparison:
    def test_numeric_ordering(self):
        assert compare(1, 2) == -1
        assert compare(2.5, 1) == 1
        assert compare(3, 3.0) == 0

    def test_string_ordering(self):
        assert compare("a", "b") == -1
        assert compare("b", "a") == 1

    def test_boolean_ordering(self):
        assert compare(False, True) == -1

    def test_null_is_incomparable(self):
        assert compare(None, 1) is None
        assert less(None, 1) is None
        assert less_equal(1, None) is None

    def test_cross_type_is_incomparable(self):
        assert compare(1, "a") is None
        assert compare(True, 1) is None
        assert greater(NodeId(1), NodeId(2)) is None

    def test_nan_is_incomparable(self):
        assert compare(float("nan"), 1.0) is None

    def test_list_lexicographic(self):
        assert compare([1, 2], [1, 3]) == -1
        assert compare([1, 2], [1, 2]) == 0
        assert compare([1], [1, 0]) == -1   # prefix is smaller
        assert compare([2], [1, 9]) == 1

    def test_list_with_null_element_unknown(self):
        assert compare([None], [1]) is None

    def test_comparison_helpers(self):
        assert less(1, 2) is True
        assert less_equal(2, 2) is True
        assert greater(3, 2) is True
        assert greater(2, 3) is False

    def test_infinity_orders(self):
        assert compare(math.inf, 1e308) == 1
        assert compare(-math.inf, 0) == -1
