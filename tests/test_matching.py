"""The paper's Section 4.2 examples, verified against the matcher.

Each test cites the example it reproduces; the graphs are the paper's
Figure 4 (teachers/students) and Figure 1 (academic graph).
"""

import pytest

from repro import parse_pattern
from repro.semantics.expressions import Evaluator
from repro.semantics.matching import (
    match_pattern_tuple,
    rigid_extensions,
    satisfies,
)
from repro.values.path import Path


def match_bag(graph, pattern_text, record=None, **kwargs):
    pattern = parse_pattern(pattern_text)
    evaluator = Evaluator(graph)
    return match_pattern_tuple(
        (pattern,), graph, record or {}, evaluator, **kwargs
    )


class TestExample42NodePatterns:
    """Example 4.2: node pattern satisfaction on Figure 4."""

    def test_teacher_pattern(self, figure4):
        graph, ids = figure4
        chi1 = parse_pattern("(x:Teacher)")
        for node_name, expected in [("n1", True), ("n2", False),
                                    ("n3", True), ("n4", True)]:
            node = ids[node_name]
            path = Path.single(node)
            assignment = {"x": node}
            assert satisfies(path, graph, assignment, chi1) is expected

    def test_wrong_binding_fails(self, figure4):
        graph, ids = figure4
        chi1 = parse_pattern("(x:Teacher)")
        # u maps x elsewhere: (n1, G, u) |= χ1 requires u(x) = n1
        assert not satisfies(
            Path.single(ids["n1"]), graph, {"x": ids["n3"]}, chi1
        )

    def test_unlabelled_pattern_matches_all(self, figure4):
        graph, ids = figure4
        chi2 = parse_pattern("(y)")
        for name in ("n1", "n2", "n3", "n4"):
            assert satisfies(
                Path.single(ids[name]), graph, {"y": ids[name]}, chi2
            )


class TestExample43RigidPatterns:
    """Example 4.3: (x:Teacher)-[:KNOWS*2]->(y) on Figure 4."""

    def test_path_satisfies(self, figure4):
        graph, ids = figure4
        pattern = parse_pattern("(x:Teacher)-[:KNOWS*2]->(y)")
        path = Path(
            (ids["n1"], ids["n2"], ids["n3"]), (ids["r1"], ids["r2"])
        )
        assignment = {"x": ids["n1"], "y": ids["n3"]}
        assert satisfies(path, graph, assignment, pattern)

    def test_rigid_pattern_determines_assignment(self, figure4):
        """Only one assignment of free variables can satisfy a rigid
        pattern for a given path."""
        graph, ids = figure4
        matches = match_bag(graph, "(x:Teacher)-[:KNOWS*2]->(y)")
        # The KNOWS-paths of length exactly 2 are n1->n2->n3 and
        # n2->n3->n4; only n1 carries the Teacher label, so exactly one
        # assignment survives.
        assert [(m["x"], m["y"]) for m in matches] == [(ids["n1"], ids["n3"])]

    def test_wrong_assignment_fails(self, figure4):
        graph, ids = figure4
        pattern = parse_pattern("(x:Teacher)-[:KNOWS*2]->(y)")
        path = Path((ids["n1"], ids["n2"], ids["n3"]), (ids["r1"], ids["r2"]))
        assert not satisfies(
            path, graph, {"x": ids["n1"], "y": ids["n4"]}, pattern
        )


class TestExample44VariableLength:
    """Example 4.4: rigid(π) and multi-assignment paths."""

    PATTERN = "(x:Teacher)-[:KNOWS*1..2]->(z)-[:KNOWS*1..2]->(y:Teacher)"

    def test_rigid_extension_has_four_members(self):
        pattern = parse_pattern(self.PATTERN)
        assert len(rigid_extensions(pattern, 2)) == 4

    def test_p1_satisfies_pi1(self, figure4):
        graph, ids = figure4
        pattern = parse_pattern(self.PATTERN)
        p1 = Path((ids["n1"], ids["n2"], ids["n3"]), (ids["r1"], ids["r2"]))
        u1 = {"x": ids["n1"], "y": ids["n3"], "z": ids["n2"]}
        assert satisfies(p1, graph, u1, pattern)

    def test_p2_satisfies_under_two_assignments(self, figure4):
        graph, ids = figure4
        pattern = parse_pattern(self.PATTERN)
        p2 = Path(
            (ids["n1"], ids["n2"], ids["n3"], ids["n4"]),
            (ids["r1"], ids["r2"], ids["r3"]),
        )
        u2 = {"x": ids["n1"], "y": ids["n4"], "z": ids["n2"]}
        u2_prime = {"x": ids["n1"], "y": ids["n4"], "z": ids["n3"]}
        assert satisfies(p2, graph, u2, pattern)
        assert satisfies(p2, graph, u2_prime, pattern)


class TestExample45BagMultiplicity:
    """Example 4.5: the anonymous-middle variant adds the same record
    twice to match(π, G, ∅)."""

    PATTERN = "(x:Teacher)-[:KNOWS*1..2]->()-[:KNOWS*1..2]->(y:Teacher)"

    def test_two_copies_of_the_same_binding(self, figure4):
        graph, ids = figure4
        matches = match_bag(graph, self.PATTERN)
        target = {"x": ids["n1"], "y": ids["n4"]}
        copies = [m for m in matches if m == target]
        assert len(copies) == 2

    def test_other_binding_occurs_once(self, figure4):
        graph, ids = figure4
        matches = match_bag(graph, self.PATTERN)
        once = [m for m in matches if m == {"x": ids["n1"], "y": ids["n3"]}]
        assert len(once) == 1


class TestExample46MatchClause:
    """Example 4.6: [[MATCH (x)-[:KNOWS*]->(y)]] on T = {(x:n1); (x:n3)}."""

    def test_resulting_table(self, figure4):
        graph, ids = figure4
        pattern = parse_pattern("(x)-[:KNOWS*]->(y)")
        evaluator = Evaluator(graph)
        rows = []
        for record in ({"x": ids["n1"]}, {"x": ids["n3"]}):
            for bindings in match_pattern_tuple(
                (pattern,), graph, record, evaluator
            ):
                merged = dict(record)
                merged.update(bindings)
                rows.append((merged["x"], merged["y"]))
        assert sorted(rows, key=lambda pair: (pair[0].value, pair[1].value)) == [
            (ids["n1"], ids["n2"]),
            (ids["n1"], ids["n3"]),
            (ids["n1"], ids["n4"]),
            (ids["n3"], ids["n4"]),
        ]


class TestEdgeIsomorphism:
    def test_repeated_relationship_forbidden_within_a_path(self, figure4):
        graph, ids = figure4
        # A path reusing r1 twice can never satisfy any pattern.
        path = Path(
            (ids["n1"], ids["n2"], ids["n1"], ids["n2"]),
            (ids["r1"], ids["r1"], ids["r1"]),
        )
        pattern = parse_pattern("(a)-[:KNOWS*3]-(b)")
        assert not satisfies(
            path, graph, {"a": ids["n1"], "b": ids["n2"]}, pattern
        )

    def test_uniqueness_across_pattern_tuple(self, figure4):
        graph, ids = figure4
        evaluator = Evaluator(graph)
        patterns = (
            parse_pattern("(a)-[r1:KNOWS]->(b)"),
            parse_pattern("(c)-[r2:KNOWS]->(d)"),
        )
        matches = match_pattern_tuple(patterns, graph, {}, evaluator)
        for match in matches:
            assert match["r1"] != match["r2"]
        # 3 relationships, ordered pairs without repetition: 3 * 2
        assert len(matches) == 6


class TestBindingConsistency:
    def test_prebound_node_restricts_matches(self, figure4):
        graph, ids = figure4
        matches = match_bag(
            graph, "(x)-[:KNOWS]->(y)", record={"x": ids["n2"]}
        )
        assert matches == [{"y": ids["n3"]}]

    def test_prebound_relationship_must_coincide(self, figure4):
        graph, ids = figure4
        matches = match_bag(
            graph, "(x)-[r:KNOWS]->(y)", record={"r": ids["r2"]}
        )
        assert matches == [{"x": ids["n2"], "y": ids["n3"]}]

    def test_null_bound_variable_never_matches(self, figure4):
        graph, _ids = figure4
        assert match_bag(graph, "(x)-[:KNOWS]->(y)", record={"x": None}) == []

    def test_named_path_binding(self, figure4):
        graph, ids = figure4
        pattern = parse_pattern("p = (x)-[:KNOWS]->(y)")
        evaluator = Evaluator(graph)
        matches = match_pattern_tuple((pattern,), graph, {}, evaluator)
        for match in matches:
            path = match["p"]
            assert isinstance(path, Path)
            assert path.start == match["x"]
            assert path.end == match["y"]
            assert len(path) == 1

    def test_cyclic_pattern_same_variable(self, figure1):
        graph, ids = figure1
        # No CITES cycle exists in Figure 1 of length 2.
        matches = match_bag(graph, "(a)-[:CITES]->(b)-[:CITES]->(a)")
        assert matches == []


class TestPropertiesInPatterns:
    def test_node_property_filter(self, figure1):
        graph, ids = figure1
        matches = match_bag(graph, "(p:Publication {acmid: 240})")
        assert matches == [{"p": ids["n5"]}]

    def test_property_must_equal_not_just_exist(self, figure1):
        graph, _ids = figure1
        assert match_bag(graph, "(p:Publication {acmid: -1})") == []

    def test_null_property_comparison_never_matches(self, figure1):
        graph, _ids = figure1
        # ι(n, missing) is undefined; null = null is unknown, not true.
        assert match_bag(graph, "(p:Publication {missing: null})") == []


class TestZeroLength:
    def test_zero_length_binds_same_node(self, figure4):
        graph, ids = figure4
        matches = match_bag(graph, "(x:Student)-[:KNOWS*0..0]->(y)")
        assert matches == [{"x": ids["n2"], "y": ids["n2"]}]

    def test_zero_or_one(self, figure4):
        graph, ids = figure4
        matches = match_bag(graph, "(x:Student)-[:KNOWS*0..1]->(y)")
        pairs = {(m["x"], m["y"]) for m in matches}
        assert pairs == {(ids["n2"], ids["n2"]), (ids["n2"], ids["n3"])}
