"""Unit tests for the incremental reachability index.

The core contract, checked by brute force on small random graphs:
``reachable(u, v)`` equals membership in the transitive closure after
*every* mutation, and the canonical snapshot of the incrementally
maintained condensation equals a from-scratch ``build`` at every step.
The shape-specific paths — interval containment on forests, GRAIL
pruning on DAGs, SCC merge on cycle-closing inserts and local re-split
on intra-component deletes — all funnel through the same two checks.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.reachability import (
    ReachabilityIndex,
    best_covering,
    reachability_key,
)

from fuzztools import fixture_graph


def brute_closure(edges):
    """Transitive-closure pairs of ``{rel: (src, tgt)}`` by iteration."""
    adjacency = {}
    for source, target in edges.values():
        adjacency.setdefault(source, set()).add(target)
    closure = {
        (node, node)
        for pair in edges.values()
        for node in pair
    }
    closure.update(
        (source, target)
        for source, targets in adjacency.items()
        for target in targets
    )
    changed = True
    while changed:
        changed = False
        for source, middle in list(closure):
            for target in adjacency.get(middle, ()):
                if (source, target) not in closure:
                    closure.add((source, target))
                    changed = True
    return closure


def assert_matches_brute_force(index, edges):
    nodes = sorted({node for pair in edges.values() for node in pair})
    closure = brute_closure(edges)
    for source in nodes:
        for target in nodes:
            expected = source == target or (source, target) in closure
            assert index.reachable(source, target) == expected, (
                source, target, sorted(edges.items())
            )
    rebuilt = ReachabilityIndex(index.types)
    rebuilt.build(
        (rel, source, target)
        for rel, (source, target) in edges.items()
    )
    assert index.snapshot() == rebuilt.snapshot(), sorted(edges.items())


@st.composite
def mutation_scripts(draw):
    """Interleaved adds and removes over a small node universe."""
    count = draw(st.integers(min_value=2, max_value=8))
    steps = []
    live = []
    next_rel = 0
    for _ in range(draw(st.integers(min_value=1, max_value=24))):
        if live and draw(st.integers(min_value=0, max_value=3)) == 0:
            victim = live.pop(draw(
                st.integers(min_value=0, max_value=len(live) - 1)
            ))
            steps.append(("remove", victim, None, None))
        else:
            source = draw(st.integers(min_value=0, max_value=count - 1))
            target = draw(st.integers(min_value=0, max_value=count - 1))
            steps.append(("add", next_rel, source, target))
            live.append(next_rel)
            next_rel += 1
    return steps


class TestBruteForceDifferential:
    @settings(max_examples=60, deadline=None)
    @given(script=mutation_scripts())
    def test_incremental_equals_closure_and_rebuild(self, script):
        index = ReachabilityIndex(None)
        edges = {}
        for action, rel, source, target in script:
            if action == "add":
                index.add_edge(rel, source, target)
                edges[rel] = (source, target)
            else:
                index.remove_edge(rel)
                del edges[rel]
            assert_matches_brute_force(index, edges)

    def test_deep_chain_is_iterative(self):
        index = ReachabilityIndex(None)
        depth = 5000
        for step in range(depth):
            index.add_edge(step, step, step + 1)
        assert index.reachable(0, depth)
        assert not index.reachable(depth, 0)
        assert index.statistics()["components"] == depth + 1

    def test_deep_cycle_merge_and_resplit(self):
        index = ReachabilityIndex(None)
        size = 2000
        for step in range(size):
            index.add_edge(step, step, (step + 1) % size)
        assert index.statistics()["components"] == 1
        assert index.reachable(size - 1, 0)
        index.remove_edge(size - 1)
        assert index.statistics()["components"] == size
        assert index.reachable(0, size - 1)
        assert not index.reachable(size - 1, 0)


class TestEdgeCases:
    def test_zero_length_and_untracked_nodes(self):
        index = ReachabilityIndex(None)
        assert index.reachable("ghost", "ghost")
        assert not index.reachable("ghost", "other")
        index.add_edge(0, "a", "b")
        assert index.reachable("a", "a")
        assert not index.reachable("b", "a")
        assert not index.reachable("a", "ghost")

    def test_self_loop(self):
        index = ReachabilityIndex(None)
        index.add_edge(0, "a", "a")
        assert index.reachable("a", "a")
        index.remove_edge(0)
        assert index.snapshot() == ReachabilityIndex(None).snapshot()

    def test_add_and_remove_are_idempotent(self):
        index = ReachabilityIndex(None)
        index.add_edge(0, "a", "b")
        before = index.snapshot()
        index.add_edge(0, "a", "b")
        assert index.snapshot() == before
        index.remove_edge(0)
        after = index.snapshot()
        index.remove_edge(0)
        assert index.snapshot() == after

    def test_parallel_edges_keep_reachability_until_last_removal(self):
        index = ReachabilityIndex(None)
        index.add_edge(0, "a", "b")
        index.add_edge(1, "a", "b")
        index.remove_edge(0)
        assert index.reachable("a", "b")
        index.remove_edge(1)
        assert not index.reachable("a", "b")

    def test_covers_respects_the_type_set(self):
        assert ReachabilityIndex(None).covers("anything")
        typed = ReachabilityIndex(frozenset(["R", "S"]))
        assert typed.covers("R")
        assert not typed.covers("T")


class TestCoveringSelection:
    def test_key_normalisation(self):
        assert reachability_key(None) is None
        assert reachability_key([]) is None
        assert reachability_key(["R", "R", "S"]) == frozenset(["R", "S"])

    def test_exact_beats_superset_beats_all_types(self):
        available = {
            None: "all",
            frozenset(["R"]): "exact",
            frozenset(["R", "S"]): "small",
            frozenset(["R", "S", "T"]): "large",
        }
        assert best_covering(frozenset(["R"]), available) == frozenset(["R"])
        assert best_covering(
            frozenset(["S"]), available
        ) == frozenset(["R", "S"])
        assert best_covering(frozenset(["Q"]), available) is None
        assert best_covering(None, available) is None

    def test_untyped_patterns_need_the_all_types_index(self):
        typed_only = {frozenset(["R"]): "exact"}
        assert best_covering(None, typed_only) is best_covering.MISS
        assert best_covering(
            frozenset(["T"]), typed_only
        ) is best_covering.MISS


class TestStoreApi:
    def test_create_drop_and_statistics(self):
        graph = fixture_graph()
        assert graph.create_reachability_index(["R"])
        assert not graph.create_reachability_index(["R"])
        assert graph.has_reachability_index(["R"])
        assert not graph.has_reachability_index()
        assert graph.create_reachability_index()
        assert graph.reachability_indexes() == [None, ("R",)]
        statistics = graph.reachability_statistics()
        assert statistics[("R",)]["types"] == ("R",)
        assert statistics[None]["edges"] == 12
        assert statistics[None]["nodes"] == 9
        assert graph.drop_reachability_index(["R"])
        assert not graph.drop_reachability_index(["R"])
        assert graph.reachability_indexes() == [None]

    def test_invalid_types_raise(self):
        graph = fixture_graph()
        with pytest.raises(ValueError):
            graph.create_reachability_index([""])
        with pytest.raises(ValueError):
            graph.create_reachability_index([1])

    def test_index_for_prefers_the_tightest_cover(self):
        graph = fixture_graph()
        graph.create_reachability_index()
        graph.create_reachability_index(["R"])
        graph.create_reachability_index(["R", "S"])
        assert graph.reachability_index_for(["R"]).types == frozenset(["R"])
        assert graph.reachability_index_for(["S"]).types == frozenset(
            ["R", "S"]
        )
        assert graph.reachability_index_for(["R", "T"]).types is None
        assert graph.reachability_index_for().types is None
        assert fixture_graph().reachability_index_for(["R"]) is None

    def test_shortest_path_agrees_with_and_without_index(self):
        from repro.algorithms.paths import shortest_path

        from fuzztools import reachability_fixture_graph

        plain = fixture_graph()
        indexed = reachability_fixture_graph()
        nodes = sorted(plain.nodes())
        for rel_types in (None, ["R"], ["S"]):
            for directed in (True, False):
                for source in nodes:
                    for target in nodes:
                        without = shortest_path(
                            plain, source, target, rel_types, directed
                        )
                        with_index = shortest_path(
                            indexed, source, target, rel_types, directed
                        )
                        assert (without is None) == (with_index is None), (
                            source, target, rel_types, directed
                        )
                        if without is not None:
                            # Equal-length ties may resolve differently
                            # once dead subtrees are pruned.
                            assert len(without) == len(with_index)

    def test_maintenance_tracks_only_covered_types(self):
        graph = fixture_graph()
        graph.create_reachability_index(["S"])
        engine_edges = graph.reachability_statistics()[("S",)]["edges"]
        assert engine_edges == 5  # the fixture's :S relationships
        snapshot = graph.reachability_snapshot(["S"])
        rebuilt = graph.copy()
        assert rebuilt.reachability_snapshot(["S"]) == snapshot
