"""Integration: the paper's Section 3 walkthrough, table by table (E1).

The running query is executed in staged prefixes and every intermediate
table the paper prints — Figure 2(a), Figure 2(b), the line-4 table, the
line-5 table with its two † duplicate rows, and the final result — is
checked cell for cell, on both execution paths.
"""

from collections import Counter

import pytest

from tests.conftest import run_both


def bag(result, *columns):
    return Counter(
        tuple(record[column] for column in columns)
        for record in result.records
    )


class TestFigure2a:
    """Variable bindings after lines 1–2 (Figure 2a)."""

    def test_bindings(self, figure1):
        graph, ids = figure1
        result = run_both(
            graph,
            "MATCH (r:Researcher) "
            "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
            "RETURN r, s",
        )
        assert bag(result, "r", "s") == Counter(
            {
                (ids["n1"], None): 1,
                (ids["n6"], ids["n7"]): 1,
                (ids["n6"], ids["n8"]): 1,
                (ids["n10"], ids["n7"]): 1,
            }
        )


class TestFigure2b:
    """Bindings after the WITH in line 3 (Figure 2b)."""

    def test_bindings(self, figure1):
        graph, ids = figure1
        result = run_both(
            graph,
            "MATCH (r:Researcher) "
            "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
            "WITH r, count(s) AS studentsSupervised "
            "RETURN r, studentsSupervised",
        )
        assert bag(result, "r", "studentsSupervised") == Counter(
            {
                (ids["n1"], 0): 1,
                (ids["n6"], 2): 1,
                (ids["n10"], 1): 1,
            }
        )

    def test_s_goes_out_of_scope(self, figure1):
        from repro import CypherEngine
        from repro.exceptions import CypherSemanticError

        graph, _ = figure1
        engine = CypherEngine(graph)
        with pytest.raises(CypherSemanticError):
            engine.run(
                "MATCH (r:Researcher) "
                "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
                "WITH r, count(s) AS c RETURN s"
            )


class TestLine4Table:
    """After MATCH (r)-[:AUTHORS]->(p1:Publication): Thor drops out."""

    def test_bindings(self, figure1):
        graph, ids = figure1
        result = run_both(
            graph,
            "MATCH (r:Researcher) "
            "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
            "WITH r, count(s) AS studentsSupervised "
            "MATCH (r)-[:AUTHORS]->(p1:Publication) "
            "RETURN r, studentsSupervised, p1",
        )
        assert bag(result, "r", "studentsSupervised", "p1") == Counter(
            {
                (ids["n1"], 0, ids["n2"]): 1,
                (ids["n6"], 2, ids["n5"]): 1,
                (ids["n6"], 2, ids["n9"]): 1,
            }
        )


class TestLine5Table:
    """After OPTIONAL MATCH (p1)<-[:CITES*]-(p2): six rows, two identical
    (the † rows — n9 reaches n2 through both n5 and n4)."""

    def test_bindings_with_duplicates(self, figure1):
        graph, ids = figure1
        result = run_both(
            graph,
            "MATCH (r:Researcher) "
            "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
            "WITH r, count(s) AS studentsSupervised "
            "MATCH (r)-[:AUTHORS]->(p1:Publication) "
            "OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication) "
            "RETURN r, studentsSupervised, p1, p2",
        )
        assert bag(result, "r", "studentsSupervised", "p1", "p2") == Counter(
            {
                (ids["n1"], 0, ids["n2"], ids["n4"]): 1,
                (ids["n1"], 0, ids["n2"], ids["n9"]): 2,  # the † rows
                (ids["n1"], 0, ids["n2"], ids["n5"]): 1,
                (ids["n6"], 2, ids["n5"], ids["n9"]): 1,
                (ids["n6"], 2, ids["n9"], None): 1,
            }
        )

    def test_exactly_six_rows(self, figure1):
        graph, _ = figure1
        result = run_both(
            graph,
            "MATCH (r:Researcher) "
            "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
            "WITH r, count(s) AS studentsSupervised "
            "MATCH (r)-[:AUTHORS]->(p1:Publication) "
            "OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication) "
            "RETURN r, studentsSupervised, p1, p2",
        )
        assert len(result) == 6


FULL_QUERY = (
    "MATCH (r:Researcher) "
    "OPTIONAL MATCH (r)-[:SUPERVISES]->(s:Student) "
    "WITH r, count(s) AS studentsSupervised "
    "MATCH (r)-[:AUTHORS]->(p1:Publication) "
    "OPTIONAL MATCH (p1)<-[:CITES*]-(p2:Publication) "
    "RETURN r.name, studentsSupervised, "
    "count(DISTINCT p2) AS citedCount"
)


class TestFinalResult:
    """The paper's final table: Nils 0 3 / Elin 2 1."""

    def test_result(self, figure1):
        graph, _ = figure1
        result = run_both(graph, FULL_QUERY)
        assert bag(result, "r.name", "studentsSupervised", "citedCount") == (
            Counter({("Nils", 0, 3): 1, ("Elin", 2, 1): 1})
        )

    def test_column_names_match_the_paper(self, figure1):
        graph, _ = figure1
        result = run_both(graph, FULL_QUERY)
        assert result.columns == [
            "r.name", "studentsSupervised", "citedCount",
        ]

    def test_count_distinct_matters(self, figure1):
        # Without DISTINCT, Nils would count the duplicate n9 twice.
        graph, _ = figure1
        result = run_both(
            graph,
            FULL_QUERY.replace("count(DISTINCT p2)", "count(p2)"),
        )
        assert bag(result, "r.name", "citedCount") == Counter(
            {("Nils", 4): 1, ("Elin", 1): 1}
        )
