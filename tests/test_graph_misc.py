"""Unit tests for GraphBuilder, GraphStatistics and GraphCatalog."""

import pytest

from repro.exceptions import GraphNotFound
from repro.graph.builder import GraphBuilder
from repro.graph.catalog import GraphCatalog
from repro.graph.statistics import GraphStatistics
from repro.graph.store import MemoryGraph


class TestGraphBuilder:
    def test_builds_nodes_and_relationships(self):
        graph, ids = (
            GraphBuilder()
            .node("a", "Person", name="Ann")
            .node("b", "Person", name="Bob")
            .rel("a", "KNOWS", "b", handle="ab", since=2001)
            .build()
        )
        assert graph.node_count() == 2
        assert graph.relationship_count() == 1
        assert graph.property_value(ids["a"], "name") == "Ann"
        assert graph.rel_type(ids["ab"]) == "KNOWS"
        assert graph.property_value(ids["ab"], "since") == 2001
        assert graph.src(ids["ab"]) == ids["a"]

    def test_duplicate_handle_rejected(self):
        builder = GraphBuilder().node("a")
        with pytest.raises(ValueError):
            builder.node("a")

    def test_unknown_endpoint_rejected(self):
        builder = GraphBuilder().node("a").rel("a", "R", "missing")
        with pytest.raises(ValueError):
            builder.build()

    def test_name_property_does_not_collide_with_handle(self):
        graph, ids = GraphBuilder().node("x", name="real-name").build()
        assert graph.property_value(ids["x"], "name") == "real-name"


class TestGraphStatistics:
    def test_counts(self):
        graph, _ = (
            GraphBuilder()
            .node("a", "Person")
            .node("b", "Person")
            .node("c", "City")
            .rel("a", "KNOWS", "b")
            .rel("a", "IN", "c")
            .rel("b", "IN", "c")
            .build()
        )
        stats = GraphStatistics(graph)
        assert stats.node_count == 3
        assert stats.relationship_count == 3
        assert stats.label_counts == {"Person": 2, "City": 1}
        assert stats.type_counts == {"KNOWS": 1, "IN": 2}

    def test_selectivity(self):
        graph, _ = (
            GraphBuilder().node("a", "P").node("b", "P").node("c", "Q").build()
        )
        stats = GraphStatistics(graph)
        assert stats.label_selectivity("P") == pytest.approx(2 / 3)
        assert stats.label_selectivity("Missing") == 0.0

    def test_average_degree(self):
        graph, _ = (
            GraphBuilder()
            .node("a").node("b")
            .rel("a", "R", "b")
            .rel("a", "R", "b")
            .build()
        )
        stats = GraphStatistics(graph)
        assert stats.average_degree() == pytest.approx(1.0)
        assert stats.average_degree(direction="both") == pytest.approx(2.0)
        assert stats.average_degree(types=("R",)) == pytest.approx(1.0)
        assert stats.average_degree(types=("X",)) == 0.0

    def test_empty_graph(self):
        stats = GraphStatistics(MemoryGraph())
        assert stats.node_count == 0
        assert stats.label_selectivity("Any") == 1.0
        assert stats.average_degree() == 0.0
        assert stats.expand_fanout() > 0  # strictly positive floor


class TestGraphCatalog:
    def test_default_resolution(self):
        default = MemoryGraph()
        catalog = GraphCatalog(default)
        assert catalog.resolve() is default
        assert catalog.default() is default

    def test_register_and_resolve_by_name_and_uri(self):
        catalog = GraphCatalog(MemoryGraph())
        other = MemoryGraph()
        catalog.register("social", other, uri="hdfs://x/y")
        assert catalog.resolve(name="social") is other
        assert catalog.resolve(uri="hdfs://x/y") is other
        assert "social" in catalog

    def test_missing_graph_raises(self):
        catalog = GraphCatalog(MemoryGraph())
        with pytest.raises(GraphNotFound):
            catalog.resolve(name="nope")

    def test_no_default_raises(self):
        catalog = GraphCatalog()
        with pytest.raises(GraphNotFound):
            catalog.default()

    def test_set_default(self):
        catalog = GraphCatalog(MemoryGraph())
        other = catalog.register("other", MemoryGraph())
        catalog.set_default("other")
        assert catalog.default() is other
        with pytest.raises(GraphNotFound):
            catalog.set_default("missing")

    def test_names_sorted(self):
        catalog = GraphCatalog(MemoryGraph(), default_name="zzz")
        catalog.register("aaa", MemoryGraph())
        assert catalog.names() == ["aaa", "zzz"]
