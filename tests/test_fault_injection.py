"""Crash-point fault injection: every mutation site, rollback proven exact.

The harness replays a fixed transactional workload (drawn from the fuzz
update corpus's shapes: create, set, remove, merge, delete, label flips
— all against indexed labels) twice per crash point:

* **pass 1** counts the mutation sites the workload reaches (an
  unarmed :class:`FaultInjector` traces ``create_node``, ``set_property``,
  ``index_update``, ``commit_flush``, …);
* **pass 2** re-runs on a fresh clone with the injector armed at site
  *k*; the session dies at exactly that point, rolls back, and the
  store, every index (compared entry-by-entry against an untouched
  clone **and** a from-scratch rebuild), the version counter and the id
  counters must all be byte-identical to never having run.

Sweeping *k* over every site proves the undo log is correct from any
interior crash point — not just at statement boundaries.
"""

import pytest

from repro.graph.store import FaultInjector, InjectedFault
from repro.runtime.engine import CypherEngine

from fuzztools import (
    assert_indexes_consistent,
    graph_state,
    indexed_fixture_graph,
)

#: The crash workload: one transaction touching every mutation kind.
#: Statements target the indexed labels/keys (:A(v), :B(v), :B(name),
#: :C(v)) so index maintenance sites appear throughout the trace.
WORKLOAD = (
    # variable-only property map: takes the bulk create_nodes path
    "UNWIND range(10, 13) AS i CREATE (:A {v: i})",
    "MATCH (a:A) WITH a ORDER BY a.name LIMIT 2 "
    "CREATE (a)-[:W {src: a.v}]->(:B {v: a.v})",
    "MATCH (a:A) WHERE a.v >= 10 SET a.v = a.v + 100, a:Hot",
    "MATCH (a:B) WITH a ORDER BY a.name LIMIT 2 SET a += {v: null, z: 1}",
    "MATCH (a:B) WITH a ORDER BY a.name LIMIT 1 SET a = {name: 'reset'}",
    "UNWIND [0, 1] AS v MERGE (n:A {v: v}) "
    "ON CREATE SET n.created = 1 ON MATCH SET n.hits = 1",
    "MATCH (a:C) WITH a ORDER BY a.name LIMIT 1 REMOVE a.v, a:C",
    "MATCH ()-[r:S]->() DELETE r",
    "MATCH (a:C) DETACH DELETE a",
)


def run_workload(graph):
    """The whole workload in one session transaction, committed."""
    with CypherEngine(graph).session() as session:
        session.begin()
        for statement in WORKLOAD:
            session.run(statement)
        session.commit()


def store_fingerprint(graph):
    """Everything rollback must restore: data, indexes, counters."""
    return (
        graph_state(graph),
        graph.version,
        {pair: graph.index_snapshot(*pair) for pair in graph.indexes()},
        graph.index_statistics(),
        (graph._next_node_id, graph._next_rel_id),
    )


def trace_sites():
    """Pass 1: count the mutation sites the workload reaches."""
    graph = indexed_fixture_graph()
    injector = FaultInjector()
    graph.install_fault_injector(injector)
    try:
        run_workload(graph)
    finally:
        graph.install_fault_injector(None)
    return injector


TRACE = trace_sites()

#: Sites that must appear in the trace — a workload that stops reaching
#: one of these silently weakens the whole sweep.
REQUIRED_SITES = {
    "create_node",
    "create_nodes",
    "create_relationship",
    "delete_node",
    "delete_relationship",
    "set_property",
    "remove_property",
    "replace_properties",
    "merge_properties",
    "add_label",
    "remove_label",
    "index_add",
    "index_remove",
    "index_update",
    "commit_flush",
}


class TestTrace:
    def test_workload_reaches_every_mutation_site_kind(self):
        missing = REQUIRED_SITES - set(TRACE.counts)
        assert not missing, "workload no longer reaches: %s" % sorted(missing)

    def test_workload_is_deterministic(self):
        assert trace_sites().counts == TRACE.counts


class TestCrashEverySite:
    @pytest.mark.parametrize("ordinal", range(1, TRACE.total + 1))
    def test_crash_then_rollback_is_exact(self, ordinal):
        pristine = store_fingerprint(indexed_fixture_graph())
        graph = indexed_fixture_graph()
        injector = FaultInjector(arm_at=ordinal)
        graph.install_fault_injector(injector)
        try:
            with pytest.raises(InjectedFault):
                run_workload(graph)
        finally:
            graph.install_fault_injector(None)
        assert injector.fired is not None
        site, _ = injector.fired
        assert store_fingerprint(graph) == pristine, (
            "rollback after crash at site #%d (%s) was not exact"
            % (ordinal, site)
        )
        assert_indexes_consistent(graph)

    def test_engine_usable_after_any_crash(self):
        # spot-check the extremes: first site and the commit flush
        for ordinal in (1, TRACE.total):
            graph = indexed_fixture_graph()
            injector = FaultInjector(arm_at=ordinal)
            graph.install_fault_injector(injector)
            try:
                with pytest.raises(InjectedFault):
                    run_workload(graph)
            finally:
                graph.install_fault_injector(None)
            engine = CypherEngine(graph)
            result = engine.run("MATCH (a:A) RETURN count(*) AS c")
            assert list(result.table) == [{"c": 3}]
            engine.run("CREATE (:AfterCrash)")
            assert list(
                engine.run("MATCH (n:AfterCrash) RETURN count(*) AS c").table
            ) == [{"c": 1}]


class TestInjectorMechanics:
    def test_commit_flush_is_the_final_site(self):
        graph = indexed_fixture_graph()
        injector = FaultInjector(arm_at=TRACE.total)
        graph.install_fault_injector(injector)
        try:
            with pytest.raises(InjectedFault):
                run_workload(graph)
        finally:
            graph.install_fault_injector(None)
        assert injector.fired[0] == "commit_flush"

    def test_injector_fires_exactly_once(self):
        graph = indexed_fixture_graph()
        injector = FaultInjector(arm_at=1)
        graph.install_fault_injector(injector)
        try:
            with pytest.raises(InjectedFault):
                run_workload(graph)
            # the rollback replay and later statements must not re-fire
            run_workload(graph)
        finally:
            graph.install_fault_injector(None)
        assert injector.fired == (injector.fired[0], 1)

    def test_install_returns_previous_injector(self):
        graph = indexed_fixture_graph()
        first = FaultInjector()
        assert graph.install_fault_injector(first) is None
        assert graph.install_fault_injector(None) is first
