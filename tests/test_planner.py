"""Unit tests for the planner: plan shapes, cost-driven choices, fallback."""

import pytest

from repro import CypherEngine, parse_query
from repro.datasets.paper import figure1_graph
from repro.exceptions import UnsupportedFeature
from repro.graph.builder import GraphBuilder
from repro.graph.store import MemoryGraph
from repro.planner import execute_plan, plan_query
from repro.planner import logical as lg
from repro.semantics.morphism import HOMOMORPHISM, NODE_ISOMORPHISM, Morphism


def plan(graph, text, **kwargs):
    return plan_query(parse_query(text), graph, **kwargs)


def operators(root):
    found = [root]
    index = 0
    while index < len(found):
        found.extend(found[index]._children())
        index += 1
    return [type(op).__name__ for op in found]


class TestPlanShapes:
    def test_label_scan_chosen_when_label_present(self, figure1):
        graph, _ = figure1
        root = plan(graph, "MATCH (r:Researcher) RETURN r")
        assert "NodeByLabelScan" in operators(root)
        assert "AllNodesScan" not in operators(root)

    def test_all_nodes_scan_without_label(self, figure1):
        graph, _ = figure1
        root = plan(graph, "MATCH (n) RETURN n")
        assert "AllNodesScan" in operators(root)

    def test_expand_for_relationships(self, figure1):
        graph, _ = figure1
        root = plan(graph, "MATCH (a:Researcher)-[:AUTHORS]->(p) RETURN p")
        assert "Expand" in operators(root)

    def test_var_length_expand(self, figure1):
        graph, _ = figure1
        root = plan(graph, "MATCH (p)<-[:CITES*]-(q) RETURN q")
        assert "VarLengthExpand" in operators(root)

    def test_planner_starts_from_most_selective_label(self):
        # Student is rarer than Person, so the chain should start there.
        builder = GraphBuilder()
        for index in range(10):
            builder.node("p%d" % index, "Person")
        builder.node("s", "Student")
        builder.rel("p0", "KNOWS", "s")
        graph, _ = builder.build()
        root = plan(graph, "MATCH (p:Person)-[:KNOWS]->(s:Student) RETURN p")
        names = operators(root)
        scan_index = names.index("NodeByLabelScan")
        scan_op = [
            op for op in _walk_ops(root) if type(op).__name__ == "NodeByLabelScan"
        ][0]
        assert scan_op.label == "Student"

    def test_optional_match_becomes_optional_apply(self, figure1):
        graph, _ = figure1
        root = plan(
            graph,
            "MATCH (r:Researcher) OPTIONAL MATCH (r)-[:SUPERVISES]->(s) RETURN s",
        )
        assert "OptionalApply" in operators(root)
        assert "Argument" in operators(root)

    def test_aggregate_operator(self, figure1):
        graph, _ = figure1
        root = plan(graph, "MATCH (n) RETURN labels(n) AS l, count(*) AS c")
        assert "Aggregate" in operators(root)

    def test_sort_skip_limit_operators(self, figure1):
        graph, _ = figure1
        root = plan(
            graph, "MATCH (n) RETURN n.name AS name ORDER BY name SKIP 1 LIMIT 2"
        )
        names = operators(root)
        # ORDER BY + LIMIT fuses the Sort into a bounded Top heap; the
        # Skip/Limit operators still follow it for validation/slicing.
        assert "Top" in names and "Skip" in names and "Limit" in names
        assert "Sort" not in names

    def test_order_by_without_limit_keeps_sort(self, figure1):
        graph, _ = figure1
        root = plan(
            graph, "MATCH (n) RETURN n.name AS name ORDER BY name SKIP 1"
        )
        names = operators(root)
        assert "Sort" in names and "Top" not in names

    def test_union_operator(self, figure1):
        graph, _ = figure1
        root = plan(graph, "RETURN 1 AS x UNION RETURN 2 AS x")
        assert isinstance(root, lg.Union)

    def test_describe_is_indented_tree(self, figure1):
        graph, _ = figure1
        text = plan(graph, "MATCH (r:Researcher)-[:AUTHORS]->(p) RETURN p").describe()
        lines = text.splitlines()
        assert len(lines) >= 3
        assert lines[-1].strip() == "Init"
        assert lines[0][0] != " "  # root unindented


class TestPlannerRefusals:
    def test_updates_plan_natively(self):
        graph = MemoryGraph()
        root = plan(graph, "MATCH (n) CREATE (a)")
        assert "CreatePattern" in operators(root)
        assert "Eager" in operators(root)

    def test_named_paths_plan_natively(self):
        graph = MemoryGraph()
        root = plan(graph, "MATCH p = (a)-->(b) RETURN p")
        assert "ProjectPath" in operators(root)

    def test_node_isomorphism_plans_natively(self):
        graph = MemoryGraph()
        root = plan(graph, "MATCH (a)-->(b) RETURN a", morphism=NODE_ISOMORPHISM)
        expand = [
            op for op in _walk_ops(root) if type(op).__name__ == "Expand"
        ][0]
        assert expand.unique_nodes  # the chain's earlier nodes are enforced

    def test_graph_clauses_unsupported(self):
        graph = MemoryGraph()
        with pytest.raises(UnsupportedFeature):
            plan(graph, "FROM GRAPH g MATCH (a) RETURN a")

    def test_auto_mode_falls_back(self):
        engine = CypherEngine(MemoryGraph(), mode="auto")
        engine.run("CREATE (:X)")  # must not raise
        assert engine.graph.node_count() == 1


class TestPhysicalExecution:
    def test_execute_plan_returns_table(self, figure1):
        graph, _ = figure1
        root = plan(graph, "MATCH (r:Researcher) RETURN r.name AS name")
        table = execute_plan(root, graph)
        assert sorted(table.column("name")) == ["Elin", "Nils", "Thor"]

    def test_hidden_fields_are_stripped(self, figure1):
        graph, _ = figure1
        root = plan(graph, "MATCH (a)-[:AUTHORS]->(p) RETURN p.acmid AS acmid")
        table = execute_plan(root, graph)
        assert table.fields == ("acmid",)
        assert all(set(row.keys()) == {"acmid"} for row in table.rows)

    def test_homomorphism_mode_with_cap(self, figure1):
        graph, _ = figure1
        root = plan(
            graph,
            "MATCH (x)-[:KNOWS*]->(y) RETURN x, y",
            morphism=HOMOMORPHISM,
        )
        table = execute_plan(root, graph, morphism=HOMOMORPHISM)
        assert len(table) == 0  # figure1 has no KNOWS edges

    def test_expand_into_for_cyclic_patterns(self):
        graph, ids = (
            GraphBuilder()
            .node("a").node("b")
            .rel("a", "X", "b")
            .rel("a", "Y", "b")
            .build()
        )
        root = plan(graph, "MATCH (a)-[:X]->(b)<-[:Y]-(a) RETURN a")
        table = execute_plan(root, graph)
        assert len(table) == 1

    def test_limit_short_circuits(self, figure1):
        graph, _ = figure1
        root = plan(graph, "MATCH (n) RETURN n LIMIT 0")
        assert len(execute_plan(root, graph)) == 0


def _walk_ops(root):
    stack = [root]
    while stack:
        op = stack.pop()
        yield op
        stack.extend(op._children())
