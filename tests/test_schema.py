"""Unit + integration tests for schema constraints (paper §8)."""

import pytest

from repro import CypherEngine
from repro.exceptions import ConstraintViolation
from repro.graph.builder import GraphBuilder
from repro.graph.store import MemoryGraph
from repro.schema import (
    ExistenceConstraint,
    Schema,
    TypeConstraint,
    UniquenessConstraint,
)


class TestExistence:
    def test_missing_property_is_a_violation(self):
        graph, ids = (
            GraphBuilder().node("ok", "Person", name="Ann").node("bad", "Person").build()
        )
        violations = list(ExistenceConstraint("Person", "name").check(graph))
        assert len(violations) == 1
        assert violations[0].entity == ids["bad"]
        assert "name" in str(violations[0])

    def test_other_labels_unconstrained(self):
        graph, _ = GraphBuilder().node("a", "Animal").build()
        assert list(ExistenceConstraint("Person", "name").check(graph)) == []


class TestUniqueness:
    def test_duplicates_detected(self):
        graph, _ = (
            GraphBuilder()
            .node("a", "Person", ssn="1")
            .node("b", "Person", ssn="1")
            .node("c", "Person", ssn="2")
            .build()
        )
        violations = list(UniquenessConstraint("Person", "ssn").check(graph))
        assert len(violations) == 1

    def test_nulls_are_not_duplicates(self):
        graph, _ = (
            GraphBuilder().node("a", "Person").node("b", "Person").build()
        )
        assert list(UniquenessConstraint("Person", "ssn").check(graph)) == []

    def test_numeric_equality_collapses(self):
        graph, _ = (
            GraphBuilder()
            .node("a", "P", k=1)
            .node("b", "P", k=1.0)
            .build()
        )
        assert len(list(UniquenessConstraint("P", "k").check(graph))) == 1


class TestTypeConstraint:
    def test_wrong_type_detected(self):
        graph, _ = (
            GraphBuilder()
            .node("a", "Person", age=30)
            .node("b", "Person", age="thirty")
            .build()
        )
        violations = list(
            TypeConstraint("Person", "age", "Integer").check(graph)
        )
        assert len(violations) == 1
        assert "String" in str(violations[0])

    def test_absent_property_allowed(self):
        graph, _ = GraphBuilder().node("a", "Person").build()
        assert list(TypeConstraint("Person", "age", "Integer").check(graph)) == []


class TestSchema:
    def test_validate_collects_in_order(self):
        graph, _ = GraphBuilder().node("a", "Person").build()
        schema = Schema(
            [
                ExistenceConstraint("Person", "name"),
                ExistenceConstraint("Person", "ssn"),
            ]
        )
        violations = schema.validate(graph)
        assert len(violations) == 2
        assert not schema.is_valid(graph)

    def test_builder_style_add(self):
        schema = Schema().add(ExistenceConstraint("A", "x"))
        assert len(schema) == 1
        assert "EXISTS(:A.x)" in repr(schema)


class TestEngineEnforcement:
    def engine(self):
        return CypherEngine(
            MemoryGraph(),
            schema=Schema(
                [
                    ExistenceConstraint("Person", "name"),
                    UniquenessConstraint("Person", "name"),
                ]
            ),
        )

    def test_valid_updates_pass(self):
        engine = self.engine()
        engine.run("CREATE (:Person {name: 'Ann'})")
        assert engine.graph.node_count() == 1

    def test_violating_create_rolls_back(self):
        engine = self.engine()
        engine.run("CREATE (:Person {name: 'Ann'})")
        with pytest.raises(ConstraintViolation):
            engine.run("CREATE (:Person)")  # missing name
        assert engine.graph.node_count() == 1  # rolled back

    def test_violating_set_rolls_back(self):
        engine = self.engine()
        engine.run("CREATE (:Person {name: 'Ann'}), (:Person {name: 'Bob'})")
        with pytest.raises(ConstraintViolation):
            engine.run("MATCH (p:Person {name: 'Bob'}) SET p.name = 'Ann'")
        names = sorted(
            engine.run("MATCH (p:Person) RETURN p.name AS n").values("n")
        )
        assert names == ["Ann", "Bob"]

    def test_remove_that_violates_rolls_back(self):
        engine = self.engine()
        engine.run("CREATE (:Person {name: 'Ann'})")
        with pytest.raises(ConstraintViolation):
            engine.run("MATCH (p:Person) REMOVE p.name")
        assert engine.run(
            "MATCH (p:Person) RETURN p.name AS n"
        ).value() == "Ann"

    def test_read_queries_skip_validation(self):
        # an engine whose *existing* graph violates the schema can still read
        graph, _ = GraphBuilder().node("a", "Person").build()
        engine = CypherEngine(
            graph, schema=Schema([ExistenceConstraint("Person", "name")])
        )
        assert engine.run("MATCH (p:Person) RETURN count(*) AS n").value() == 1

    def test_rollback_restores_properties_deeply(self):
        engine = self.engine()
        engine.run("CREATE (:Person {name: 'Ann', tags: ['x']})")
        with pytest.raises(ConstraintViolation):
            engine.run(
                "MATCH (p:Person) SET p.tags = ['y'] REMOVE p.name"
            )
        record = engine.run(
            "MATCH (p:Person) RETURN p.name AS n, p.tags AS t"
        ).single()
        assert record == {"n": "Ann", "t": ["x"]}
