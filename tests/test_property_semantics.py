"""Property-based tests for the execution semantics.

Invariants checked on randomly generated graphs:

* planner ≡ interpreter (bag equality) on a family of templated queries;
* every variable-length match uses pairwise-distinct relationships
  (edge isomorphism) and its output is finite;
* UNION ALL multiplicities add; DISTINCT is idempotent;
* CREATE adds exactly the pattern's nodes/relationships; DETACH DELETE
  leaves no dangling edges.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CypherEngine
from repro.graph.store import MemoryGraph
from repro.semantics.expressions import Evaluator
from repro.semantics.matching import match_pattern_tuple
from repro.parser import parse_pattern
from repro.values.base import RelId


def _graph_strategy(max_nodes, max_edges):
    @st.composite
    def build(draw):
        graph = MemoryGraph()
        node_count = draw(st.integers(min_value=1, max_value=max_nodes))
        labels = ["A", "B", "C"]
        nodes = []
        for _index in range(node_count):
            node_labels = draw(st.sets(st.sampled_from(labels), max_size=2))
            value = draw(st.integers(min_value=0, max_value=5))
            nodes.append(graph.create_node(node_labels, {"v": value}))
        edge_count = draw(st.integers(min_value=0, max_value=max_edges))
        for _ in range(edge_count):
            source = draw(st.sampled_from(nodes))
            target = draw(st.sampled_from(nodes))
            rel_type = draw(st.sampled_from(["R", "S"]))
            graph.create_relationship(source, target, rel_type)
        return graph

    return build()


def small_graphs():
    """A random property graph with ≤ 8 nodes and ≤ 10 relationships."""
    return _graph_strategy(8, 10)


def tiny_graphs():
    """Small enough for *unbounded* variable-length enumeration: the
    number of edge-distinct walks can grow factorially with edge count,
    so the unbounded tests stay at ≤ 6 edges."""
    return _graph_strategy(5, 6)


TEMPLATES = [
    "MATCH (a)-[r:R]->(b) RETURN a, r, b",
    "MATCH (a:A)-[*1..2]->(b) RETURN a, b",
    "MATCH (a)-[rs:R*0..2]-(b) RETURN a, size(rs) AS n, b",
    "MATCH (a:A) OPTIONAL MATCH (a)-[:S]->(b) RETURN a, b",
    "MATCH (a)-->(b)-->(c) RETURN count(*) AS n",
    "MATCH (n) RETURN labels(n) AS l, count(*) AS c",
    "MATCH (a)-->(a) RETURN count(*) AS loops",
    "MATCH (a {v: 1})-[*1..3]->(b {v: 2}) RETURN count(*) AS n",
]


class TestPlannerAgreesWithInterpreter:
    @settings(max_examples=40, deadline=None)
    @given(graph=small_graphs(), template=st.sampled_from(TEMPLATES))
    def test_bag_equality(self, graph, template):
        engine = CypherEngine(graph)
        interpreted = engine.run(template, mode="interpreter")
        planned = engine.run(template, mode="planner")
        assert interpreted.table.same_bag(planned.table)


class TestMatchingInvariants:
    @settings(max_examples=40, deadline=None)
    @given(graph=small_graphs())
    def test_varlength_bindings_use_distinct_relationships(self, graph):
        pattern = parse_pattern("(a)-[rs*1..3]-(b)")
        evaluator = Evaluator(graph)
        matches = match_pattern_tuple((pattern,), graph, {}, evaluator)
        for match in matches:
            rels = match["rs"]
            assert all(isinstance(rel, RelId) for rel in rels)
            assert len(set(rels)) == len(rels)

    @settings(max_examples=30, deadline=None)
    @given(graph=tiny_graphs())
    def test_unbounded_matching_is_finite(self, graph):
        # Edge isomorphism bounds any traversal by |R|; the match bag for
        # an unbounded pattern is therefore finite (the paper's argument).
        pattern = parse_pattern("(a)-[rs*]->(b)")
        evaluator = Evaluator(graph)
        matches = match_pattern_tuple((pattern,), graph, {}, evaluator)
        for match in matches:
            assert len(match["rs"]) <= graph.relationship_count()

    @settings(max_examples=30, deadline=None)
    @given(graph=small_graphs())
    def test_tuple_uniqueness_across_patterns(self, graph):
        patterns = (
            parse_pattern("(a)-[r1]->(b)"),
            parse_pattern("(c)-[r2]->(d)"),
        )
        evaluator = Evaluator(graph)
        for match in match_pattern_tuple(patterns, graph, {}, evaluator):
            assert match["r1"] != match["r2"]


class TestBagLaws:
    @settings(max_examples=30, deadline=None)
    @given(graph=small_graphs())
    def test_union_all_multiplicities_add(self, graph):
        engine = CypherEngine(graph)
        single = engine.run("MATCH (n) RETURN labels(n) AS l")
        doubled = engine.run(
            "MATCH (n) RETURN labels(n) AS l "
            "UNION ALL MATCH (n) RETURN labels(n) AS l"
        )
        assert len(doubled) == 2 * len(single)

    @settings(max_examples=30, deadline=None)
    @given(graph=small_graphs())
    def test_distinct_idempotent(self, graph):
        engine = CypherEngine(graph)
        once = engine.run("MATCH (n) RETURN DISTINCT labels(n) AS l")
        deduped_again = once.table.deduplicate()
        assert once.table.same_bag(deduped_again)

    @settings(max_examples=30, deadline=None)
    @given(graph=small_graphs())
    def test_union_is_deduplicated_union_all(self, graph):
        engine = CypherEngine(graph)
        union = engine.run(
            "MATCH (n) RETURN labels(n) AS l UNION MATCH (n) RETURN labels(n) AS l"
        )
        union_all = engine.run(
            "MATCH (n) RETURN labels(n) AS l UNION ALL MATCH (n) RETURN labels(n) AS l"
        )
        assert union.table.same_bag(union_all.table.deduplicate())


class TestUpdateInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        graph=small_graphs(),
        extra=st.integers(min_value=1, max_value=4),
    )
    def test_create_adds_exactly_the_pattern(self, graph, extra):
        engine = CypherEngine(graph, mode="interpreter")
        nodes_before = graph.node_count()
        rels_before = graph.relationship_count()
        engine.run(
            "UNWIND range(1, $n) AS i CREATE (:New {i: i})-[:MADE]->(:New)",
            parameters={"n": extra},
        )
        assert graph.node_count() == nodes_before + 2 * extra
        assert graph.relationship_count() == rels_before + extra

    @settings(max_examples=25, deadline=None)
    @given(graph=small_graphs())
    def test_detach_delete_leaves_no_dangling_edges(self, graph):
        engine = CypherEngine(graph, mode="interpreter")
        engine.run("MATCH (n:A) DETACH DELETE n")
        for rel in graph.relationships():
            assert graph.has_node(graph.src(rel))
            assert graph.has_node(graph.tgt(rel))
        for node in graph.nodes():
            assert "A" not in graph.labels(node)

    @settings(max_examples=25, deadline=None)
    @given(graph=small_graphs())
    def test_merge_is_idempotent_on_node_count(self, graph):
        engine = CypherEngine(graph, mode="interpreter")
        engine.run("MERGE (:Anchor {k: 1})")
        count_after_first = graph.node_count()
        engine.run("MERGE (:Anchor {k: 1})")
        assert graph.node_count() == count_after_first
