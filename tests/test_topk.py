"""Regression: ``ORDER BY … LIMIT k`` is a bounded top-k heap, not a full sort.

Before this fix the planner materialised and sorted the entire input and
then sliced off k rows.  The fused ``Top`` operator keeps a heap of at
most k (+ SKIP offset) rows; these tests pin both the semantics (exactly
the stable Sort + Skip + Limit results, ties, directions and error cases
included, on the row *and* batch engines) and the bound itself via the
observable ``TOPK_STATS`` counters: on a large shuffled input the heap
never exceeds k rows and only a small tail of candidates is ever
materialised — far below the input size, and within k + one morsel.
"""

import random

import pytest

from repro import CypherEngine
from repro.exceptions import CypherRuntimeError
from repro.graph.store import MemoryGraph
from repro.planner.batch import DEFAULT_MORSEL_SIZE
from repro.planner.physical import TOPK_STATS

N_ROWS = 5000
K = 10


def _reset_stats():
    TOPK_STATS["pushed"] = 0
    TOPK_STATS["heap_max"] = 0


def big_graph():
    graph = MemoryGraph()
    values = list(range(N_ROWS))
    random.Random(20260728).shuffle(values)
    for value in values:
        graph.create_node(("Item",), {"v": value, "tie": value % 5})
    return graph


@pytest.fixture(scope="module")
def graph():
    return big_graph()


class TestTopKBound:
    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_touches_at_most_k_plus_morsel_rows(self, graph, mode):
        engine = CypherEngine(graph)
        _reset_stats()
        result = engine.run(
            "MATCH (n:Item) RETURN n.v AS v ORDER BY v LIMIT %d" % K,
            mode=mode,
        )
        assert result.values("v") == list(range(K))
        assert TOPK_STATS["heap_max"] <= K
        assert TOPK_STATS["pushed"] <= K + DEFAULT_MORSEL_SIZE
        assert TOPK_STATS["pushed"] < N_ROWS // 10

    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_skip_widens_the_heap_but_stays_bounded(self, graph, mode):
        engine = CypherEngine(graph)
        _reset_stats()
        result = engine.run(
            "MATCH (n:Item) RETURN n.v AS v ORDER BY v SKIP 7 LIMIT %d" % K,
            mode=mode,
        )
        assert result.values("v") == list(range(7, 7 + K))
        assert TOPK_STATS["heap_max"] <= K + 7

    def test_plan_fuses_sort_into_top(self, graph):
        engine = CypherEngine(graph)
        plan = engine.explain(
            "MATCH (n:Item) RETURN n.v AS v ORDER BY v LIMIT 3"
        )
        assert "Top" in plan
        assert "Sort" not in plan

    def test_order_by_without_limit_is_not_fused(self, graph):
        engine = CypherEngine(graph)
        plan = engine.explain("MATCH (n:Item) RETURN n.v AS v ORDER BY v")
        assert "Sort" in plan
        assert "Top" not in plan


class TestTopKSemantics:
    """Top must be observationally identical to Sort + Skip + Limit."""

    QUERIES = [
        "MATCH (n:Item) RETURN n.v AS v ORDER BY v LIMIT 13",
        "MATCH (n:Item) RETURN n.v AS v ORDER BY v DESC LIMIT 13",
        # Ties on the major key: stability across the cut line matters.
        "MATCH (n:Item) RETURN n.tie AS t, n.v AS v "
        "ORDER BY t, v DESC LIMIT 9",
        "MATCH (n:Item) RETURN n.tie AS t, n.v AS v "
        "ORDER BY t DESC, v LIMIT 9",
        "MATCH (n:Item) WHERE n.v < 40 RETURN n.v % 7 AS m "
        "ORDER BY m LIMIT 5",
        "MATCH (n:Item) RETURN n.v AS v ORDER BY v SKIP 3 LIMIT 4",
        "MATCH (n:Item) RETURN n.v AS v ORDER BY v LIMIT 99999",  # k > input
        "MATCH (n:Item) WITH n.v AS v ORDER BY v DESC LIMIT 6 "
        "RETURN sum(v) AS s",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_matches_interpreter(self, graph, query, mode):
        engine = CypherEngine(graph)
        reference = engine.run(query, mode="interpreter")
        top = engine.run(query, mode=mode)
        # Sorted output: row order is observable, not just the bag.
        assert reference.records == top.records, (mode, query)

    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_parameterised_limit_reuses_the_cached_plan(self, graph, mode):
        engine = CypherEngine(graph)
        query = "MATCH (n:Item) RETURN n.v AS v ORDER BY v LIMIT $k"
        first = engine.run(query, parameters={"k": 4}, mode=mode)
        misses = engine.plan_cache_misses
        second = engine.run(query, parameters={"k": 6}, mode=mode)
        assert engine.plan_cache_misses == misses  # hit: same plan, new k
        assert first.values("v") == list(range(4))
        assert second.values("v") == list(range(6))

    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_negative_limit_raises_like_limit(self, graph, mode):
        engine = CypherEngine(graph)
        with pytest.raises(CypherRuntimeError):
            engine.run(
                "MATCH (n:Item) RETURN n.v AS v ORDER BY v LIMIT -1",
                mode=mode,
            )

    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_limit_zero_is_empty_without_touching_rows(self, graph, mode):
        engine = CypherEngine(graph)
        _reset_stats()
        result = engine.run(
            "MATCH (n:Item) RETURN n.v AS v ORDER BY v LIMIT 0", mode=mode
        )
        assert len(result) == 0
        assert TOPK_STATS["pushed"] == 0
