"""Statement timeouts, cooperative cancellation and the admission gate.

The cancellation contract (PR 6): ``run(timeout=…)`` / ``run(deadline=…)``
/ ``run(cancel=token)`` interrupt cooperatively — the row engine checks
between rows (strided), the batch engine at morsel boundaries — and an
interrupted *write* rolls back atomically before
:class:`QueryTimeout` / :class:`QueryCancelled` propagates.  The
admission gate (``max_sessions``) turns overload into
:class:`EngineOverloadedError` instead of unbounded queueing.
"""

from time import monotonic

import pytest

from repro.exceptions import (
    EngineOverloadedError,
    QueryCancelled,
    QueryInterrupted,
    QueryTimeout,
)
from repro.functions import default_registry
from repro.runtime.cancel import CHECK_STRIDE, Cancellation, CancelToken
from repro.runtime.engine import CypherEngine

from fuzztools import fixture_graph, graph_state

#: A cross product big enough that a millisecond deadline always fires
#: mid-flight on any machine, yet finishes quickly unlimited.
SLOW_READ = "MATCH (a), (b), (c), (d) RETURN count(*) AS paths"


def tripwire_registry(token, at):
    """A registry whose ``tripwire(x)`` cancels ``token`` at call #at."""
    calls = [0]

    def tripwire(context, value):
        calls[0] += 1
        if calls[0] == at:
            token.cancel()
        return value

    registry = default_registry()
    registry.register("tripwire", tripwire, min_arity=1, max_arity=1)
    return registry


class TestCancellationPrimitives:
    def test_build_returns_none_when_unlimited(self):
        assert Cancellation.build() is None

    def test_timeout_becomes_a_monotonic_deadline(self):
        cancellation = Cancellation.build(timeout=10.0)
        assert cancellation.deadline > monotonic()
        cancellation.poll()  # far in the future: no raise

    def test_earlier_of_timeout_and_deadline_wins(self):
        soon = monotonic() + 1.0
        cancellation = Cancellation.build(timeout=100.0, deadline=soon)
        assert cancellation.deadline == soon

    def test_expired_deadline_raises_timeout(self):
        cancellation = Cancellation.build(deadline=monotonic() - 1.0)
        with pytest.raises(QueryTimeout):
            cancellation.poll()

    def test_cancelled_token_raises_cancelled(self):
        token = CancelToken()
        token.cancel()
        assert token.cancelled
        cancellation = Cancellation.build(token=token)
        with pytest.raises(QueryCancelled):
            cancellation.poll()

    def test_check_is_strided(self):
        cancellation = Cancellation.build(deadline=monotonic() - 1.0)
        for _ in range(CHECK_STRIDE - 1):
            cancellation.check()  # within the stride: no deadline read
        with pytest.raises(QueryTimeout):
            cancellation.check()

    def test_interrupts_share_a_base_class(self):
        assert issubclass(QueryTimeout, QueryInterrupted)
        assert issubclass(QueryCancelled, QueryInterrupted)


class TestReadTimeouts:
    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_slow_read_times_out(self, mode):
        engine = CypherEngine(fixture_graph())
        with pytest.raises(QueryTimeout):
            engine.run(SLOW_READ, mode=mode, timeout=0.001)

    def test_interpreter_checks_at_statement_start(self):
        engine = CypherEngine(fixture_graph())
        with pytest.raises(QueryTimeout):
            engine.run(SLOW_READ, mode="interpreter", deadline=monotonic() - 1)

    def test_generous_timeout_does_not_interfere(self):
        engine = CypherEngine(fixture_graph())
        result = engine.run(
            "MATCH (a:A) RETURN count(*) AS c", timeout=60.0
        )
        assert list(result.table) == [{"c": 3}]

    def test_pre_cancelled_token_refuses_up_front(self):
        engine = CypherEngine(fixture_graph())
        token = CancelToken()
        token.cancel()
        with pytest.raises(QueryCancelled):
            engine.run("RETURN 1 AS x", cancel=token)

    def test_mid_query_cancellation(self):
        token = CancelToken()
        engine = CypherEngine(
            fixture_graph(), functions=tripwire_registry(token, at=50)
        )
        with pytest.raises(QueryCancelled):
            engine.run(
                "UNWIND range(1, 10000) AS i RETURN sum(tripwire(i)) AS s",
                cancel=token,
            )


class TestWriteCancellation:
    def test_cancelled_write_rolls_back_atomically(self):
        token = CancelToken()
        graph = fixture_graph()
        engine = CypherEngine(graph, functions=tripwire_registry(token, at=40))
        pristine = graph_state(graph)
        version = graph.version
        with pytest.raises(QueryCancelled):
            engine.run(
                "UNWIND range(1, 500) AS i CREATE (:Partial {v: tripwire(i)})",
                cancel=token,
            )
        assert graph_state(graph) == pristine
        assert graph.version == version

    def test_cancelled_write_with_index_rolls_back_index(self):
        token = CancelToken()
        graph = fixture_graph()
        graph.create_index("A", "v")
        engine = CypherEngine(graph, functions=tripwire_registry(token, at=40))
        before = graph.index_snapshot("A", "v")
        with pytest.raises(QueryCancelled):
            engine.run(
                "UNWIND range(1, 500) AS i CREATE (:A {v: tripwire(i)})",
                cancel=token,
            )
        assert graph.index_snapshot("A", "v") == before

    def test_cancelled_statement_in_session_keeps_earlier_statements(self):
        token = CancelToken()
        graph = fixture_graph()
        engine = CypherEngine(graph, functions=tripwire_registry(token, at=40))
        with engine.session() as session:
            session.begin()
            session.run("CREATE (:Kept {v: 1})")
            with pytest.raises(QueryCancelled):
                session.run(
                    "UNWIND range(1, 500) AS i "
                    "CREATE (:Partial {v: tripwire(i)})",
                    cancel=token,
                )
            session.commit()
        kept = engine.run("MATCH (n:Kept) RETURN count(*) AS c")
        partial = engine.run("MATCH (n:Partial) RETURN count(*) AS c")
        assert list(kept.table) == [{"c": 1}]
        assert list(partial.table) == [{"c": 0}]

    def test_session_default_timeout_applies_to_statements(self):
        engine = CypherEngine(fixture_graph())
        with engine.session(timeout=0.001) as session:
            with pytest.raises(QueryTimeout):
                session.run(SLOW_READ)
            # per-call override beats the default
            result = session.run(
                "MATCH (a:A) RETURN count(*) AS c", timeout=60.0
            )
            assert list(result.table) == [{"c": 3}]


class TestVarLengthCancellation:
    def test_variable_length_expand_checks_per_step(self):
        # A dense graph where *1..6 walks explode combinatorially before
        # the operator yields: per-step checks are what fire here.
        engine = CypherEngine()
        engine.run(
            "UNWIND range(0, 11) AS i UNWIND range(0, 11) AS j "
            "CREATE (:H {v: i * 12 + j})"
        )
        engine.run(
            "MATCH (a:H), (b:H) WHERE a.v < b.v AND b.v - a.v <= 13 "
            "CREATE (a)-[:E]->(b)"
        )
        with pytest.raises(QueryTimeout):
            engine.run(
                "MATCH (a:H)-[:E*1..6]->(b) RETURN count(*) AS c",
                timeout=0.005,
            )


class TestOverload:
    def test_error_names_the_limit(self):
        engine = CypherEngine(fixture_graph(), max_sessions=3)
        sessions = [engine.session() for _ in range(3)]
        for session in sessions:
            session.__enter__()
        try:
            with pytest.raises(EngineOverloadedError) as excinfo:
                engine.session().__enter__()
            assert "3" in str(excinfo.value)
        finally:
            for session in sessions:
                session.close()

    def test_admission_timeout_waits_then_refuses(self):
        engine = CypherEngine(
            fixture_graph(), max_sessions=1, admission_timeout=0.05
        )
        with engine.session() as _held:
            started = monotonic()
            with pytest.raises(EngineOverloadedError):
                engine.session().__enter__()
            assert monotonic() - started >= 0.04
