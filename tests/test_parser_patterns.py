"""Unit tests for pattern parsing (the Figure 3 grammar)."""

import pytest

from repro import parse_pattern
from repro.ast import expressions as ex
from repro.ast import patterns as pt
from repro.exceptions import CypherSyntaxError


class TestNodePatterns:
    def test_empty_node(self):
        pattern = parse_pattern("()")
        node = pattern.elements[0]
        assert node == pt.NodePattern(None, (), ())

    def test_named_node(self):
        assert parse_pattern("(a)").elements[0].name == "a"

    def test_labels(self):
        node = parse_pattern("(x:Person:Male)").elements[0]
        assert node.labels == ("Person", "Male")

    def test_property_map(self):
        node = parse_pattern("(x {name: 'Ann', age: 30})").elements[0]
        assert dict(node.properties) == {
            "name": ex.Literal("Ann"),
            "age": ex.Literal(30),
        }

    def test_anonymous_with_labels_and_props(self):
        node = parse_pattern("(:L {k: 1})").elements[0]
        assert node.name is None
        assert node.labels == ("L",)


class TestRelationshipPatterns:
    def test_directions(self):
        assert parse_pattern("(a)-->(b)").elements[1].direction == pt.LEFT_TO_RIGHT
        assert parse_pattern("(a)<--(b)").elements[1].direction == pt.RIGHT_TO_LEFT
        assert parse_pattern("(a)--(b)").elements[1].direction == pt.UNDIRECTED

    def test_bracketed_forms(self):
        rel = parse_pattern("(a)-[r:KNOWS]->(b)").elements[1]
        assert rel.name == "r"
        assert rel.types == ("KNOWS",)
        assert rel.direction == pt.LEFT_TO_RIGHT

    def test_type_alternatives_both_syntaxes(self):
        assert parse_pattern("(a)-[:A|B]->(b)").elements[1].types == ("A", "B")
        assert parse_pattern("(a)-[:A|:B]->(b)").elements[1].types == ("A", "B")

    def test_relationship_properties(self):
        rel = parse_pattern("(a)-[{since: 1985}]-(b)").elements[1]
        assert dict(rel.properties) == {"since": ex.Literal(1985)}

    def test_double_arrow_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse_pattern("(a)<-[:X]->(b)")

    def test_paper_knows_star_examples(self):
        # -[:KNOWS*1 {since: 1985}]- and -[:KNOWS*1..1 {...}]- denote the
        # same pattern (both I = (1,1)); -[:KNOWS {...}]- has I = nil.
        star1 = parse_pattern("(a)-[:KNOWS*1 {since: 1985}]-(b)").elements[1]
        star11 = parse_pattern("(a)-[:KNOWS*1..1 {since: 1985}]-(b)").elements[1]
        plain = parse_pattern("(a)-[:KNOWS {since: 1985}]-(b)").elements[1]
        assert star1.length == (1, 1) == star11.length
        assert star1 == star11
        assert plain.length is None
        assert plain != star1


class TestLengthRanges:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("*", (None, None)),
            ("*3", (3, 3)),
            ("*2..", (2, None)),
            ("*..4", (None, 4)),
            ("*2..4", (2, 4)),
        ],
    )
    def test_star_forms(self, text, expected):
        rel = parse_pattern("(a)-[%s]->(b)" % text).elements[1]
        assert rel.length == expected

    def test_resolved_ranges(self):
        rel = parse_pattern("(a)-[*..4]->(b)").elements[1]
        assert rel.resolved_range() == (1, 4)  # nil lower bound becomes 1
        rel = parse_pattern("(a)-[*]->(b)").elements[1]
        assert rel.resolved_range() == (1, None)
        rel = parse_pattern("(a)-[r]->(b)").elements[1]
        assert rel.resolved_range() == (1, 1)

    def test_rigidity(self):
        assert parse_pattern("(a)-[*2]->(b)").is_rigid
        assert parse_pattern("(a)-->(b)").is_rigid
        assert not parse_pattern("(a)-[*1..2]->(b)").is_rigid
        assert not parse_pattern("(a)-[*]->(b)").is_rigid


class TestPathPatterns:
    def test_long_chain(self):
        pattern = parse_pattern("(a)-->(b)<--(c)--(d)")
        assert len(pattern.elements) == 7
        assert [n.name for n in pattern.node_patterns] == ["a", "b", "c", "d"]

    def test_named_path(self):
        pattern = parse_pattern("p = (a)-->(b)")
        assert pattern.name == "p"

    def test_free_variables(self):
        pattern = parse_pattern("p = (a)-[r:X]->()-[s*1..2]->(b)")
        assert pt.free_variables(pattern) == ["a", "r", "s", "b", "p"]

    def test_free_variables_deduplicated(self):
        pattern = parse_pattern("(a)-->(a)")
        assert pt.free_variables(pattern) == ["a"]

    def test_single_node_is_a_path(self):
        pattern = parse_pattern("(a)")
        assert pattern.is_single_node

    def test_structural_validation(self):
        with pytest.raises(ValueError):
            pt.PathPattern(())
        with pytest.raises(ValueError):
            pt.PathPattern((pt.NodePattern(), pt.NodePattern()))
        with pytest.raises(ValueError):
            pt.PathPattern((pt.RelationshipPattern(),))
