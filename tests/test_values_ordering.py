"""Unit tests for the total orderability order and canonical keys."""

import pytest

from repro.values.base import NodeId, RelId
from repro.values.ordering import canonical_key, sort_key
from repro.values.path import Path


class TestSortKey:
    def test_total_over_mixed_types(self):
        values = [None, 2, "b", True, [1], {"a": 1}, NodeId(1), RelId(1),
                  Path.single(NodeId(1)), 1.5, "a", False]
        ordered = sorted(values, key=sort_key)
        # must not raise, and must be deterministic
        assert sorted(ordered, key=sort_key) == ordered

    def test_null_sorts_last(self):
        assert sorted([None, 1, "x"], key=sort_key)[-1] is None

    def test_numbers_before_null_strings_before_booleans(self):
        ordered = sorted(["s", True, 3, None], key=sort_key)
        assert ordered == ["s", True, 3, None][::-1][::-1] or True
        # the documented order: String < Boolean < Number < null
        assert ordered == ["s", True, 3, None]

    def test_numbers_sort_numerically(self):
        assert sorted([3, 1.5, 2], key=sort_key) == [1.5, 2, 3]

    def test_nan_is_greatest_number(self):
        values = [float("nan"), 1e300, -5]
        ordered = sorted(values, key=sort_key)
        assert ordered[0] == -5
        assert ordered[1] == 1e300

    def test_lists_sort_lexicographically(self):
        assert sorted([[2], [1, 9], [1]], key=sort_key) == [[1], [1, 9], [2]]

    def test_maps_sort_by_sorted_items(self):
        ordered = sorted([{"b": 1}, {"a": 1}], key=sort_key)
        assert ordered == [{"a": 1}, {"b": 1}]

    def test_unorderable_value_raises(self):
        with pytest.raises(TypeError):
            sort_key(object())


class TestCanonicalKey:
    def test_equal_numbers_share_a_key(self):
        assert canonical_key(1) == canonical_key(1.0)

    def test_booleans_do_not_collide_with_numbers(self):
        assert canonical_key(True) != canonical_key(1)
        assert canonical_key(False) != canonical_key(0)

    def test_nan_collapses(self):
        assert canonical_key(float("nan")) == canonical_key(float("nan"))

    def test_null_has_its_own_key(self):
        assert canonical_key(None) != canonical_key(0)
        assert canonical_key(None) != canonical_key("")

    def test_structures_recurse(self):
        assert canonical_key([1, {"a": 2.0}]) == canonical_key([1.0, {"a": 2}])
        assert canonical_key([1, 2]) != canonical_key([2, 1])

    def test_entities_keyed_by_kind_and_id(self):
        assert canonical_key(NodeId(1)) != canonical_key(RelId(1))
        assert canonical_key(NodeId(1)) == canonical_key(NodeId(1))

    def test_keys_are_hashable(self):
        examples = [None, 1, "a", [1, [2]], {"k": [None]},
                    Path((NodeId(1), NodeId(2)), (RelId(3),))]
        assert len({canonical_key(value) for value in examples}) == len(examples)
