"""Unit tests for tables as bags of records (paper §4.1)."""

import pytest

from repro.semantics.table import Table


class TestConstruction:
    def test_unit_table(self):
        unit = Table.unit()
        assert unit.fields == ()
        assert unit.rows == [{}]
        assert len(unit) == 1

    def test_from_records_infers_fields(self):
        table = Table.from_records([{"a": 1, "b": 2}])
        assert set(table.fields) == {"a", "b"}

    def test_from_records_empty(self):
        assert Table.from_records([]).fields == ()


class TestBagAlgebra:
    def test_bag_union_adds_multiplicities(self):
        left = Table(("a",), [{"a": 1}, {"a": 1}])
        right = Table(("a",), [{"a": 1}, {"a": 2}])
        union = left.bag_union(right)
        assert union.multiplicity({"a": 1}) == 3
        assert union.multiplicity({"a": 2}) == 1

    def test_bag_union_requires_uniform_fields(self):
        with pytest.raises(ValueError):
            Table(("a",), []).bag_union(Table(("b",), []))

    def test_deduplicate(self):
        table = Table(("a",), [{"a": 1}, {"a": 1}, {"a": 2}])
        deduped = table.deduplicate()
        assert len(deduped) == 2
        # ε is idempotent
        assert deduped.deduplicate().same_bag(deduped)

    def test_deduplicate_respects_value_equality(self):
        table = Table(("a",), [{"a": 1}, {"a": 1.0}])
        assert len(table.deduplicate()) == 1

    def test_multiplicity_of_absent_row(self):
        assert Table(("a",), [{"a": 1}]).multiplicity({"a": 9}) == 0


class TestEqualityAndViews:
    def test_same_bag_ignores_row_order(self):
        left = Table(("a",), [{"a": 1}, {"a": 2}])
        right = Table(("a",), [{"a": 2}, {"a": 1}])
        assert left.same_bag(right)

    def test_same_bag_respects_multiplicity(self):
        left = Table(("a",), [{"a": 1}, {"a": 1}])
        right = Table(("a",), [{"a": 1}])
        assert not left.same_bag(right)

    def test_same_bag_with_different_fields(self):
        assert not Table(("a",), []).same_bag(Table(("b",), []))

    def test_same_bag_ignores_field_order(self):
        left = Table(("a", "b"), [{"a": 1, "b": 2}])
        right = Table(("b", "a"), [{"a": 1, "b": 2}])
        assert left.same_bag(right)

    def test_column(self):
        table = Table(("a", "b"), [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert table.column("a") == [1, 3]

    def test_to_records_copies(self):
        table = Table(("a",), [{"a": 1}])
        records = table.to_records()
        records[0]["a"] = 99
        assert table.rows[0]["a"] == 1

    def test_pretty_renders_headers_and_nulls(self):
        table = Table(("name", "v"), [{"name": "x", "v": None}])
        rendered = table.pretty()
        assert "name" in rendered
        assert "null" in rendered

    def test_pretty_truncates(self):
        table = Table(("a",), [{"a": i} for i in range(30)])
        assert "more rows" in table.pretty(limit=5)
