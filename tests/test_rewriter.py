"""Unit + equivalence tests for the query rewriter.

Each rule's soundness argument lives in the rewriter module; here we
check both the syntactic effect of every rule and — more importantly —
that rewritten queries produce the same bag as the originals on real
graphs (the paper's "reason about the equivalence of queries" claim,
made executable).
"""

import pytest

from repro import CypherEngine, parse_expression, parse_query
from repro.ast import clauses as cl
from repro.ast import expressions as ex
from repro.ast.printer import print_expression, print_query
from repro.datasets.paper import figure1_graph, figure4_graph
from repro.rewriter import rewrite_expression, rewrite_query


class TestConstantFolding:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("1 + 2 * 3", "7"),
            ("2 ^ 3", "8.0"),
            ("1 < 2", "true"),
            ("1 = 1 AND 2 = 2", "true"),
            ("'a' + 'b'", "'ab'"),
            ("5 IN [1, 5]", "true"),
            ("[1, 2, 3][1]", "2"),
            ("null IS NULL", "true"),
            ("NOT true", "false"),
            ("-(3)", "-3"),
        ],
    )
    def test_folds(self, source, expected):
        rewritten = rewrite_expression(parse_expression(source))
        assert print_expression(rewritten) == expected

    def test_variables_block_folding(self):
        rewritten = rewrite_expression(parse_expression("x + 2 * 3"))
        assert print_expression(rewritten) == "x + 6"

    def test_erroring_expressions_are_left_alone(self):
        # 1/0 must still raise at runtime, so it must not fold (or vanish)
        rewritten = rewrite_expression(parse_expression("1 / 0"))
        assert isinstance(rewritten, ex.Arithmetic)

    def test_null_propagation_folds(self):
        rewritten = rewrite_expression(parse_expression("1 + null"))
        assert rewritten == ex.Literal(None)


class TestBooleanSimplification:
    def test_double_negation(self):
        rewritten = rewrite_expression(parse_expression("NOT NOT x"))
        assert rewritten == ex.Variable("x")

    def test_and_identity(self):
        assert rewrite_expression(parse_expression("x AND true")) == ex.Variable("x")
        assert rewrite_expression(parse_expression("true AND x")) == ex.Variable("x")

    def test_and_absorbing(self):
        # x AND false = false even when x is null (3VL)
        assert rewrite_expression(parse_expression("x AND false")) == ex.Literal(False)

    def test_or_identity_and_absorbing(self):
        assert rewrite_expression(parse_expression("x OR false")) == ex.Variable("x")
        assert rewrite_expression(parse_expression("x OR true")) == ex.Literal(True)

    def test_nested_simplification_cascades(self):
        rewritten = rewrite_expression(
            parse_expression("NOT NOT (x AND (1 < 2))")
        )
        assert rewritten == ex.Variable("x")


class TestClauseRules:
    def test_where_true_dropped(self):
        query = rewrite_query(parse_query("MATCH (a) WHERE 1 < 2 RETURN a"))
        assert query.clauses[0].where is None

    def test_where_false_kept(self):
        query = rewrite_query(parse_query("MATCH (a) WHERE 1 > 2 RETURN a"))
        assert query.clauses[0].where == ex.Literal(False)

    def test_passthrough_filter_pushdown(self):
        query = rewrite_query(
            parse_query("MATCH (a) WITH a WHERE a.v > 1 RETURN a")
        )
        match = query.clauses[0]
        with_clause = query.clauses[1]
        assert match.where is not None
        assert with_clause.where is None

    def test_pushdown_respects_existing_where(self):
        query = rewrite_query(
            parse_query("MATCH (a) WHERE a.v > 0 WITH a WHERE a.w > 1 RETURN a")
        )
        match = query.clauses[0]
        assert isinstance(match.where, ex.BinaryLogic)
        assert match.where.operator == "AND"

    def test_no_pushdown_through_aggregation(self):
        query = rewrite_query(
            parse_query("MATCH (a) WITH a, count(*) AS c WHERE c > 1 RETURN a")
        )
        assert query.clauses[0].where is None
        assert query.clauses[1].where is not None

    def test_no_pushdown_through_distinct_or_limit(self):
        for text in (
            "MATCH (a) WITH DISTINCT a WHERE a.v > 1 RETURN a",
            "MATCH (a) WITH a LIMIT 5 WHERE a.v > 1 RETURN a",
            "MATCH (a) WITH a.v AS w WHERE w > 1 RETURN w",
        ):
            query = rewrite_query(parse_query(text))
            assert query.clauses[0].where is None, text

    def test_no_pushdown_into_optional_match(self):
        query = rewrite_query(
            parse_query(
                "MATCH (x) OPTIONAL MATCH (a) WITH a WHERE a.v > 1 RETURN a"
            )
        )
        assert query.clauses[1].where is None  # optional match untouched
        assert query.clauses[2].where is not None

    def test_union_sides_rewritten(self):
        query = rewrite_query(
            parse_query("RETURN 1 + 1 AS x UNION RETURN 2 AS x")
        )
        item = query.left.clauses[0].projection.items[0]
        assert item.expression == ex.Literal(2)


EQUIVALENCE_QUERIES = [
    "MATCH (n) WHERE true RETURN n",
    "MATCH (n) WHERE 1 < 2 AND n.acmid > 200 RETURN n.acmid",
    "MATCH (a)-[:CITES]->(b) WITH a, b WHERE a.acmid > b.acmid RETURN a, b",
    "MATCH (r:Researcher) WITH r WHERE NOT NOT r.name STARTS WITH 'N' "
    "RETURN r.name",
    "MATCH (n) RETURN n.acmid + 0 * 5 AS id",
    "UNWIND [1 + 1, 2 * 2] AS x RETURN x",
    "MATCH (a) WITH a, count(*) AS c WHERE c = 1 RETURN a",
    "MATCH (x)-[:KNOWS*1..2]->(y) WITH x, y WHERE x.id < 99 RETURN x, y",
]


class TestEquivalence:
    @pytest.mark.parametrize("query_text", EQUIVALENCE_QUERIES)
    @pytest.mark.parametrize("graph_factory", [figure1_graph, figure4_graph])
    def test_rewrite_preserves_results(self, query_text, graph_factory):
        graph, _ = graph_factory()
        raw_engine = CypherEngine(graph, rewrite=False)
        rewriting_engine = CypherEngine(graph, rewrite=True)
        original = raw_engine.run(query_text, mode="interpreter")
        rewritten = rewriting_engine.run(query_text, mode="interpreter")
        assert original.table.same_bag(rewritten.table), query_text

    @pytest.mark.parametrize("query_text", EQUIVALENCE_QUERIES)
    def test_rewritten_text_reparses(self, query_text):
        rewritten = rewrite_query(parse_query(query_text))
        assert parse_query(print_query(rewritten)) == rewritten

    def test_rewriting_is_idempotent(self):
        for query_text in EQUIVALENCE_QUERIES:
            once = rewrite_query(parse_query(query_text))
            twice = rewrite_query(once)
            assert once == twice
