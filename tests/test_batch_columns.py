"""Unit tests: ColumnCompiler closures and the store's bulk column APIs.

Each compiled column closure must agree element-for-element with the row
compiler it shadows — including null propagation, type errors, the
constant-operand specialisations, and AND/OR's *masked* short-circuit
(the right operand is never evaluated on rows the left side decided,
so a pruned side that would raise must not raise).
"""

import pytest

from repro import CypherEngine
from repro.exceptions import CypherTypeError, ParameterNotBound
from repro.graph.store import MemoryGraph
from repro.parser import parse_expression
from repro.planner.slots import SlotMap
from repro.semantics.compile import (
    MISSING,
    ColumnCompiler,
    ExpressionCompiler,
)
from repro.semantics.expressions import Evaluator
from repro.values.base import NodeId


@pytest.fixture
def graph():
    g = MemoryGraph()
    nodes = [
        g.create_node(("P",), {"v": i, "name": "p%d" % i, "f": i / 2})
        for i in range(6)
    ]
    g.create_relationship(nodes[0], nodes[1], "R", {"w": 7})
    g.create_relationship(nodes[1], nodes[2], "S", {"w": 8})
    g.create_relationship(nodes[2], nodes[0], "R", {"w": 9})
    return g


def make_compilers(graph, names=("a", "b"), parameters=None):
    slots = SlotMap(names)
    evaluator = Evaluator(graph, parameters)
    rows = ExpressionCompiler(evaluator, slots)
    return slots, rows, ColumnCompiler(rows)


def batch_from(slots, **columns):
    """(n, cols) with the named columns bound, everything else unbound."""
    n = len(next(iter(columns.values())))
    cols = [None] * len(slots)
    for name, column in columns.items():
        assert len(column) == n
        cols[slots[name]] = column
    return n, cols


def assert_column_matches_rows(graph, text, slots, rows, columns, batch):
    """The compiled column equals the row closure applied per row.

    If the row path raises on some row, the column path must raise the
    same error class for the batch (element order makes it the same
    first-failing element).
    """
    from repro.exceptions import CypherError

    expression = parse_expression(text)
    column_fn = columns.compile(expression)
    row_fn = rows.compile(expression)
    n, cols = batch
    expected = []
    error = None
    for index in range(n):
        row = [MISSING] * len(slots)
        for slot, col in enumerate(cols):
            if col is not None:
                row[slot] = col[index]
        try:
            expected.append(row_fn(row))
        except CypherError as raised:
            error = type(raised)
            break
    if error is not None:
        with pytest.raises(error):
            column_fn(n, cols)
        return
    assert column_fn(n, cols) == expected, text


VECTOR_EXPRESSIONS = [
    "a.v",                     # bulk property fast path
    "a.v + 1",                 # const-right arithmetic specialisation
    "a.v * b.v",
    "a.v - b.v",
    "a.v % 2",                 # general arithmetic (row fast path reused)
    "a.v / 2",
    "a.v > 2",                 # const-right comparison specialisation
    "a.v >= b.v",
    "a.v = b.v",
    "a.v <> 3",
    "a.v < b.v",
    "a.v <= 2",
    "1 + 2",                   # folded constant column
    "a.v IS NULL",
    "a.v IS NOT NULL",
    "NOT a.v > 2",
    "a.v > 1 AND b.v > 1",
    "a.v > 4 OR b.v > 4",
    "a.v > 2 XOR b.v > 2",
    "a.name STARTS WITH 'p'",  # elementwise fallback family
    "a.name CONTAINS '1'",
    "a.v IN [1, 2, 3]",
    "a.name =~ 'p[0-9]'",
    "[x IN [a.v, b.v] WHERE x > 1 | x * 10]",   # scratch-row fallback
    "all(x IN [a.v, b.v] WHERE x >= 0)",
    "reduce(s = 0, x IN [a.v, b.v] | s + x)",
    "CASE WHEN a.v > 2 THEN 'hi' ELSE 'lo' END",
    "size([1, 2])",
    "toString(a.v)",
    "coalesce(a.nope, a.v)",
    "a.f",                     # float properties through the bulk path
    "a:P",
    "a:Missing",
]


class TestColumnsAgreeWithRows:
    @pytest.mark.parametrize("text", VECTOR_EXPRESSIONS)
    def test_node_columns(self, graph, text):
        slots, rows, columns = make_compilers(graph)
        nodes = sorted(graph.all_node_ids(), key=lambda n: n.value)
        batch = batch_from(slots, a=nodes, b=list(reversed(nodes)))
        assert_column_matches_rows(graph, text, slots, rows, columns, batch)

    @pytest.mark.parametrize(
        "text",
        [
            "a + 1", "a * 2", "a > 2", "a = b", "a < b",
            "a AND b", "a OR b", "NOT a", "a IS NULL",
        ],
    )
    def test_mixed_scalar_columns(self, graph, text):
        """Ints, floats, nulls and booleans share one column."""
        slots, rows, columns = make_compilers(graph)
        batch = batch_from(
            slots,
            a=[1, None, 2.5, True, 0],
            b=[None, 3, 1, False, 0],
        )
        assert_column_matches_rows(graph, text, slots, rows, columns, batch)

    def test_property_access_on_mixed_column_falls_back(self, graph):
        """Maps, nulls and nodes in one column: per-element semantics."""
        slots, rows, columns = make_compilers(graph)
        node = graph.all_node_ids()[0]
        batch = batch_from(slots, a=[node, {"v": 99}, None])
        assert_column_matches_rows(
            graph, "a.v", slots, rows, columns, batch
        )

    def test_property_access_type_error_matches_row_path(self, graph):
        slots, _rows, columns = make_compilers(graph)
        compiled = columns.compile(parse_expression("a.v"))
        n, cols = batch_from(slots, a=[1])
        with pytest.raises(CypherTypeError):
            compiled(n, cols)

    def test_relationship_property_column(self, graph):
        slots, rows, columns = make_compilers(graph)
        rels = sorted(graph.relationships(), key=lambda r: r.value)
        batch = batch_from(slots, a=rels)
        assert_column_matches_rows(graph, "a.w", slots, rows, columns, batch)

    def test_parameter_column_broadcasts(self, graph):
        slots, rows, columns = make_compilers(
            graph, parameters={"limit": 3}
        )
        nodes = graph.all_node_ids()
        batch = batch_from(slots, a=nodes)
        assert_column_matches_rows(
            graph, "a.v < $limit", slots, rows, columns, batch
        )

    def test_unbound_parameter_raises_only_on_rows(self, graph):
        slots, _rows, columns = make_compilers(graph)
        compiled = columns.compile(parse_expression("$missing"))
        assert compiled(0, [None] * len(slots)) == []
        with pytest.raises(ParameterNotBound):
            compiled(2, batch_from(slots, a=[1, 2])[1])

    def test_empty_batch_yields_empty_columns(self, graph):
        slots, _rows, columns = make_compilers(graph)
        n, cols = 0, [None] * len(slots)
        for text in ("a.v + 1", "a.v > 2 AND b.v > 2", "$p", "1 + 2"):
            assert columns.compile(parse_expression(text))(n, cols) == []

    def test_unbound_variable_raises_like_row_path(self, graph):
        from repro.exceptions import CypherSemanticError

        slots, _rows, columns = make_compilers(graph)
        compiled = columns.compile(parse_expression("a"))
        with pytest.raises(CypherSemanticError):
            compiled(1, [None] * len(slots))


class TestShortCircuitMasking:
    """AND/OR evaluate the right side only on undecided rows."""

    def test_and_skips_divide_by_zero_on_decided_rows(self, graph):
        slots, _rows, columns = make_compilers(graph)
        compiled = columns.compile(parse_expression("a > 0 AND 10 / a > 1"))
        n, cols = batch_from(slots, a=[0, 5, 0, 2])
        # Rows with a = 0 are decided False by the left side; the right
        # side's 10/0 must never run.  (The row engine short-circuits per
        # row; the column engine must reproduce that via masking.)
        assert compiled(n, cols) == [False, True, False, True]

    def test_or_skips_divide_by_zero_on_decided_rows(self, graph):
        slots, _rows, columns = make_compilers(graph)
        compiled = columns.compile(parse_expression("a = 0 OR 10 / a > 4"))
        n, cols = batch_from(slots, a=[0, 5, 0, 2])
        assert compiled(n, cols) == [True, False, True, True]

    def test_fully_decided_left_never_calls_right(self, graph):
        slots, _rows, columns = make_compilers(graph)
        compiled = columns.compile(parse_expression("a > 0 AND 10 / a > 1"))
        n, cols = batch_from(slots, a=[0, 0, 0])
        assert compiled(n, cols) == [False, False, False]

    def test_engine_level_parity_on_guarded_division(self, graph):
        query = (
            "MATCH (n:P) WHERE n.v > 0 AND 10 / n.v >= 2 "
            "RETURN count(*) AS c"
        )
        engine = CypherEngine(graph)
        reference = engine.run(query, mode="interpreter")
        for mode in ("row", "batch"):
            result = engine.run(query, mode=mode)
            assert reference.table.same_bag(result.table), mode


class TestSelection:
    def test_selection_keeps_only_strict_true(self, graph):
        slots, _rows, columns = make_compilers(graph)
        selection = columns.compile_selection(parse_expression("a > 1"))
        n, cols = batch_from(slots, a=[0, 2, None, 3, True])
        # None (null comparison) and the boolean-vs-int comparison are
        # not strictly true: only indexes 1 and 3 survive.
        assert selection(n, cols) == [1, 3]


class TestBulkStoreApis:
    def test_all_node_ids_is_a_fresh_list(self, graph):
        ids = graph.all_node_ids()
        ids.append("sentinel")
        assert "sentinel" not in graph.all_node_ids()
        assert len(graph.all_node_ids()) == graph.node_count()

    def test_label_scan_ids_sorted_and_cached(self, graph):
        first = graph.label_scan_ids("P")
        assert first == sorted(first, key=lambda n: n.value)
        assert graph.label_scan_ids("P") is first  # memoised per version
        assert graph.label_scan_ids("Missing") == []

    def test_node_property_column_matches_scalar_reads(self, graph):
        nodes = graph.all_node_ids()
        assert graph.node_property_column(nodes, "v") == [
            graph.node_property(node, "v") for node in nodes
        ]
        with pytest.raises((KeyError, TypeError)):
            graph.node_property_column([NodeId(999999)], "v")

    @pytest.mark.parametrize("direction", ["out", "in", "both"])
    @pytest.mark.parametrize("types", [None, frozenset({"R"}),
                                       frozenset({"R", "S"})])
    def test_expand_batch_matches_per_row_accessors(
        self, graph, direction, types
    ):
        nodes = graph.all_node_ids()
        origins, rels, targets = graph.expand_batch(nodes, direction, types)
        position = 0
        step = {
            "out": graph.outgoing, "in": graph.incoming,
            "both": graph.touching,
        }[direction]
        for index, node in enumerate(nodes):
            for rel in step(node, types):
                assert origins[position] == index
                assert rels[position] == rel
                if direction == "out":
                    assert targets[position] == graph.tgt(rel)
                elif direction == "in":
                    assert targets[position] == graph.src(rel)
                else:
                    assert targets[position] == graph.other_end(rel, node)
                position += 1
        assert position == len(origins) == len(rels) == len(targets)

    def test_expand_batch_skips_non_nodes(self, graph):
        node = graph.all_node_ids()[0]
        origins, rels, targets = graph.expand_batch(
            [None, 5, node, NodeId(424242)], "out", None
        )
        assert set(origins) <= {2}

    def test_self_loop_expands_once_in_both_direction(self):
        g = MemoryGraph()
        n = g.create_node(("L",), {})
        g.create_relationship(n, n, "SELF")
        origins, rels, targets = g.expand_batch([n], "both", None)
        assert len(rels) == 1
        assert targets == [n]
