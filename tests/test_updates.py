"""Unit tests for update execution (CREATE / DELETE / SET / REMOVE / MERGE)."""

import pytest

from repro import CypherEngine
from repro.exceptions import (
    ConstraintViolation,
    CypherRuntimeError,
    CypherSemanticError,
    CypherTypeError,
)
from repro.graph.store import MemoryGraph
from repro.values.base import NodeId, RelId
from repro.values.path import Path


@pytest.fixture
def engine():
    return CypherEngine(MemoryGraph(), mode="interpreter")


class TestCreate:
    def test_create_binds_variables(self, engine):
        result = engine.run("CREATE (a:L {v: 1})-[r:R]->(b) RETURN a, r, b")
        record = result.single()
        assert isinstance(record["a"], NodeId)
        assert isinstance(record["r"], RelId)
        assert isinstance(record["b"], NodeId)

    def test_create_named_path(self, engine):
        result = engine.run("CREATE p = (a)-[:R]->(b) RETURN p")
        path = result.value()
        assert isinstance(path, Path)
        assert len(path) == 1

    def test_create_per_driving_row(self, engine):
        engine.run("UNWIND [1, 2, 3] AS i CREATE ({v: i})")
        assert engine.graph.node_count() == 3

    def test_create_right_to_left_arrow(self, engine):
        engine.run("CREATE (a {side: 'left'})<-[:R]-(b {side: 'right'})")
        result = engine.run("MATCH (s)-[:R]->(t) RETURN s.side AS s, t.side AS t")
        assert result.single() == {"s": "right", "t": "left"}

    def test_create_property_from_driving_row(self, engine):
        engine.run("UNWIND [10, 20] AS v CREATE ({doubled: v * 2})")
        values = engine.run("MATCH (n) RETURN n.doubled AS d ORDER BY d").values("d")
        assert values == [20, 40]

    def test_create_through_bound_variable_with_labels_rejected(self, engine):
        engine.run("CREATE (:X)")
        with pytest.raises(CypherSemanticError):
            engine.run("MATCH (a:X) CREATE (a:Y)")

    def test_create_through_non_node_rejected(self, engine):
        with pytest.raises(CypherTypeError):
            engine.run("UNWIND [1] AS a CREATE (a)-[:R]->()")


class TestDelete:
    def test_delete_relationship_value(self, engine):
        engine.run("CREATE (a)-[:R]->(b)")
        engine.run("MATCH ()-[r:R]->() DELETE r")
        assert engine.graph.relationship_count() == 0
        assert engine.graph.node_count() == 2

    def test_delete_path_deletes_everything_on_it(self, engine):
        engine.run("CREATE (a)-[:R]->(b)-[:R]->(c)")
        engine.run("MATCH p = (x)-[:R*2]->(y) DETACH DELETE p")
        assert engine.graph.node_count() == 0
        assert engine.graph.relationship_count() == 0

    def test_delete_null_is_noop(self, engine):
        engine.run("CREATE (:A)")
        engine.run("MATCH (a:A) OPTIONAL MATCH (a)-[:R]->(b) DELETE b")
        assert engine.graph.node_count() == 1

    def test_double_delete_tolerated(self, engine):
        engine.run("CREATE (:A), (:A)")
        # every row deletes the same node once; duplicates collapse
        engine.run("MATCH (a:A), (b:A) DETACH DELETE a, b")
        assert engine.graph.node_count() == 0

    def test_delete_connected_node_without_detach_fails(self, engine):
        engine.run("CREATE (a:A)-[:R]->()")
        with pytest.raises(ConstraintViolation):
            engine.run("MATCH (a:A) DELETE a")

    def test_delete_non_entity_rejected(self, engine):
        with pytest.raises(CypherTypeError):
            engine.run("UNWIND [1] AS x DELETE x")


class TestSetRemove:
    def test_set_property_null_subject_noop(self, engine):
        engine.run("CREATE (:A)")
        engine.run("MATCH (a:A) OPTIONAL MATCH (a)-[:R]->(b) SET b.x = 1")

    def test_set_variable_copies_entity_properties(self, engine):
        engine.run("CREATE (:Src {a: 1, b: 2}), (:Dst {c: 3})")
        engine.run("MATCH (s:Src), (d:Dst) SET d = s")
        properties = engine.run("MATCH (d:Dst) RETURN properties(d) AS p").value()
        assert properties == {"a": 1, "b": 2}

    def test_set_variable_requires_map(self, engine):
        engine.run("CREATE (:A)")
        with pytest.raises(CypherTypeError):
            engine.run("MATCH (a:A) SET a = 5")

    def test_set_on_relationship(self, engine):
        engine.run("CREATE (a)-[:R]->(b)")
        engine.run("MATCH ()-[r:R]->() SET r.w = 9")
        assert engine.run("MATCH ()-[r:R]->() RETURN r.w AS w").value() == 9

    def test_remove_label_then_label_scan_misses(self, engine):
        engine.run("CREATE (:Gone:Kept)")
        engine.run("MATCH (n:Gone) REMOVE n:Gone")
        assert len(engine.run("MATCH (n:Gone) RETURN n")) == 0
        assert len(engine.run("MATCH (n:Kept) RETURN n")) == 1


class TestMerge:
    def test_merge_binds_all_existing_matches(self, engine):
        engine.run("CREATE (:P {k: 1}), (:P {k: 1})")
        result = engine.run("MERGE (p:P {k: 1}) RETURN count(*) AS n")
        assert result.value() == 2  # both matches drive the row count

    def test_merge_creates_whole_pattern_when_partial(self, engine):
        engine.run("CREATE (:A {k: 1})")
        # (:A {k:1}) exists but has no :R edge: MERGE creates the whole
        # pattern, including a *new* :A node (never a partial reuse).
        engine.run("MERGE (a:A {k: 1})-[:R]->(b:B)")
        assert engine.run("MATCH (a:A) RETURN count(*) AS n").value() == 2
        assert engine.graph.relationship_count() == 1

    def test_merge_per_row_sees_earlier_creations(self, engine):
        engine.run("UNWIND [1, 1, 2] AS v MERGE ({key: v})")
        assert engine.graph.node_count() == 2

    def test_merge_undirected_relationship_matches_both_ways(self, engine):
        engine.run("CREATE (a:A)-[:R]->(b:B)")
        engine.run("MATCH (a:A), (b:B) MERGE (b)-[:R]-(a)")
        assert engine.graph.relationship_count() == 1

    def test_merge_var_length_rejected(self, engine):
        with pytest.raises(CypherSemanticError):
            engine.run("MERGE (a)-[:R*2]->(b)")


class TestUpdateThenRead:
    def test_update_visible_to_later_clauses(self, engine):
        result = engine.run(
            "CREATE (a:L {v: 1}) WITH a MATCH (x:L) RETURN x.v AS v"
        )
        assert result.values("v") == [1]

    def test_auto_mode_runs_updates_on_the_planner(self):
        engine = CypherEngine(MemoryGraph(), mode="auto")
        result = engine.run("CREATE (:X {v: 5})")
        assert result.executed_by == "planner"
        assert engine.run("MATCH (x:X) RETURN x.v AS v").value() == 5
