"""Unit tests for the pretty-printer details and the AST visitor."""

import pytest

from repro import parse_expression, parse_pattern, parse_query
from repro.ast import expressions as ex
from repro.ast.printer import (
    print_expression,
    print_literal,
    print_pattern,
    print_query,
)
from repro.ast.visitor import children, walk
from repro.values.base import NodeId


class TestLiteralPrinting:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, "null"),
            (True, "true"),
            (False, "false"),
            (42, "42"),
            (2.5, "2.5"),
            ("hi", "'hi'"),
            ([1, "a"], "[1, 'a']"),
            ({"k": 1}, "{k: 1}"),
        ],
    )
    def test_values(self, value, expected):
        assert print_literal(value) == expected

    def test_string_escaping(self):
        assert print_literal("it's") == r"'it\'s'"
        assert print_literal("a\nb") == r"'a\nb'"
        assert print_literal("back\\slash") == r"'back\\slash'"

    def test_entities_have_no_literal_syntax(self):
        with pytest.raises(ValueError):
            print_literal(NodeId(1))


class TestIdentifierQuoting:
    def test_weird_names_get_backticks(self):
        printed = print_expression(ex.Variable("weird name"))
        assert printed == "`weird name`"
        assert parse_expression(printed) == ex.Variable("weird name")

    def test_weird_labels(self):
        pattern = parse_pattern("(a:`odd label`)")
        printed = print_pattern(pattern)
        assert "`odd label`" in printed
        assert parse_pattern(printed) == pattern


class TestExpressionPrinting:
    def test_operators_are_spaced(self):
        assert print_expression(parse_expression("1+2")) == "1 + 2"

    def test_nested_parenthesization_is_reparseable(self):
        source = "a AND (b OR c)"
        tree = parse_expression(source)
        assert parse_expression(print_expression(tree)) == tree

    def test_count_star(self):
        assert print_expression(ex.CountStar()) == "count(*)"

    def test_distinct_in_aggregate(self):
        printed = print_expression(parse_expression("count(DISTINCT x)"))
        assert printed == "count(DISTINCT x)"

    def test_case_printing(self):
        source = "CASE x WHEN 1 THEN 'a' ELSE 'b' END"
        tree = parse_expression(source)
        assert parse_expression(print_expression(tree)) == tree


class TestQueryPrinting:
    def test_clause_order_preserved(self):
        text = print_query(parse_query(
            "MATCH (a) WITH a.v AS v RETURN v ORDER BY v DESC SKIP 1 LIMIT 2"
        ))
        assert text.index("MATCH") < text.index("WITH") < text.index("RETURN")
        assert "ORDER BY v DESC" in text
        assert "SKIP 1" in text and "LIMIT 2" in text

    def test_union_printing(self):
        text = print_query(parse_query("RETURN 1 AS x UNION ALL RETURN 2 AS x"))
        assert "UNION ALL" in text

    def test_from_graph_printing(self):
        text = print_query(parse_query(
            'FROM GRAPH g AT "bolt://x" MATCH (a) RETURN GRAPH h OF (a)'
        ))
        assert 'FROM GRAPH g AT "bolt://x"' in text
        assert "RETURN GRAPH h OF (a)" in text


class TestVisitor:
    def test_walk_reaches_every_expression(self):
        tree = parse_expression("a + b * coalesce(c, [d, e])")
        names = {
            node.name for node in walk(tree) if isinstance(node, ex.Variable)
        }
        assert names == {"a", "b", "c", "d", "e"}

    def test_walk_traverses_queries(self):
        query = parse_query(
            "MATCH (a {v: x}) WHERE a.y > z RETURN a.w AS out ORDER BY out"
        )
        variables = {
            node.name for node in walk(query) if isinstance(node, ex.Variable)
        }
        assert "x" in variables   # from the pattern's property map
        assert "z" in variables   # from the WHERE predicate
        assert "out" in variables  # from ORDER BY

    def test_children_of_leaf_is_empty(self):
        assert list(children(ex.Literal(1))) == []

    def test_walk_visits_case_branches(self):
        tree = parse_expression("CASE WHEN p THEN q ELSE r END")
        names = {
            node.name for node in walk(tree) if isinstance(node, ex.Variable)
        }
        assert names == {"p", "q", "r"}

    def test_walk_visits_map_values(self):
        tree = parse_expression("{a: x, b: y}")
        names = {
            node.name for node in walk(tree) if isinstance(node, ex.Variable)
        }
        assert names == {"x", "y"}
