"""Unit tests for clause/query parsing (Figure 5) and the pretty-printer."""

import pytest

from repro import parse_query
from repro.ast import clauses as cl
from repro.ast import queries as qu
from repro.ast.printer import print_query
from repro.exceptions import CypherSyntaxError


class TestClauseParsing:
    def test_match_return(self):
        query = parse_query("MATCH (a) RETURN a")
        assert isinstance(query, qu.SingleQuery)
        assert isinstance(query.clauses[0], cl.Match)
        assert isinstance(query.clauses[1], cl.Return)

    def test_optional_match(self):
        query = parse_query("OPTIONAL MATCH (a) RETURN a")
        assert query.clauses[0].optional

    def test_match_where(self):
        query = parse_query("MATCH (a) WHERE a.x = 1 RETURN a")
        assert query.clauses[0].where is not None

    def test_match_pattern_tuple(self):
        query = parse_query("MATCH (a), (b)-[:R]->(c) RETURN a")
        assert len(query.clauses[0].pattern) == 2

    def test_with_clause_full(self):
        query = parse_query(
            "MATCH (a) WITH DISTINCT a.x AS x ORDER BY x DESC SKIP 1 LIMIT 2 "
            "WHERE x > 0 RETURN x"
        )
        with_clause = query.clauses[1]
        projection = with_clause.projection
        assert projection.distinct
        assert projection.order_by[0].ascending is False
        assert projection.skip is not None
        assert projection.limit is not None
        assert with_clause.where is not None

    def test_return_star_and_items(self):
        projection = parse_query("MATCH (a) RETURN *, a.x AS x").clauses[-1].projection
        assert projection.star
        assert projection.items[0].alias == "x"

    def test_unwind(self):
        clause = parse_query("UNWIND [1, 2] AS x RETURN x").clauses[0]
        assert isinstance(clause, cl.Unwind)
        assert clause.alias == "x"

    def test_create(self):
        clause = parse_query("CREATE (a:L {v: 1})-[:R]->(b)").clauses[0]
        assert isinstance(clause, cl.Create)

    def test_delete_variants(self):
        assert parse_query("MATCH (a) DELETE a").clauses[-1].detach is False
        assert parse_query("MATCH (a) DETACH DELETE a").clauses[-1].detach is True

    def test_set_items(self):
        clause = parse_query(
            "MATCH (a) SET a.x = 1, a += {y: 2}, a:Label"
        ).clauses[-1]
        assert isinstance(clause.items[0], cl.SetProperty)
        assert isinstance(clause.items[1], cl.SetVariable)
        assert clause.items[1].merge is True
        assert isinstance(clause.items[2], cl.SetLabels)

    def test_remove_items(self):
        clause = parse_query("MATCH (a) REMOVE a.x, a:L").clauses[-1]
        assert isinstance(clause.items[0], cl.RemoveProperty)
        assert isinstance(clause.items[1], cl.RemoveLabels)

    def test_merge_with_actions(self):
        clause = parse_query(
            "MERGE (a:L {k: 1}) ON CREATE SET a.c = 1 ON MATCH SET a.m = 2"
        ).clauses[0]
        assert isinstance(clause, cl.Merge)
        assert len(clause.on_create) == 1
        assert len(clause.on_match) == 1

    def test_union_and_union_all(self):
        union = parse_query("RETURN 1 AS x UNION RETURN 2 AS x")
        assert isinstance(union, qu.UnionQuery) and union.all is False
        union_all = parse_query("RETURN 1 AS x UNION ALL RETURN 2 AS x")
        assert union_all.all is True

    def test_cypher10_graph_clauses(self):
        query = parse_query(
            'FROM GRAPH soc AT "hdfs://x" MATCH (a)-[:F]-(b) '
            "RETURN GRAPH out OF (a)-[:SHARE]->(b)"
        )
        assert isinstance(query.clauses[0], cl.FromGraph)
        assert query.clauses[0].uri == "hdfs://x"
        assert isinstance(query.clauses[-1], cl.ReturnGraph)
        assert query.clauses[-1].graph_name == "out"

    def test_query_graph_alias(self):
        query = parse_query("QUERY GRAPH friends MATCH (a) RETURN a")
        assert isinstance(query.clauses[0], cl.FromGraph)

    def test_trailing_semicolon_accepted(self):
        parse_query("RETURN 1 AS x;")


class TestQueryValidation:
    def test_return_must_be_last(self):
        with pytest.raises(CypherSyntaxError):
            parse_query("RETURN 1 AS x MATCH (a) RETURN a")

    def test_read_query_must_end_with_return(self):
        with pytest.raises(CypherSyntaxError):
            parse_query("MATCH (a)")

    def test_update_query_may_end_without_return(self):
        parse_query("CREATE (a)")
        parse_query("MATCH (a) SET a.x = 1")

    def test_empty_input_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse_query("")

    def test_garbage_after_query(self):
        with pytest.raises(CypherSyntaxError):
            parse_query("RETURN 1 AS x garbage")


class TestPrinterRoundTrip:
    QUERIES = [
        "MATCH (a:Person {name: 'Ann'})-[r:KNOWS*1..3]->(b) WHERE b.age > 30 "
        "RETURN a.name AS name, count(DISTINCT b) AS friends "
        "ORDER BY name DESC SKIP 1 LIMIT 10",
        "OPTIONAL MATCH (a)-[:X|Y]->() RETURN a",
        "MATCH p = (a)-->(b) RETURN p",
        "UNWIND [1, 2, 3] AS x WITH x WHERE x > 1 RETURN sum(x) AS s",
        "MATCH (a) RETURN CASE WHEN a.x THEN 1 ELSE 2 END AS c",
        "RETURN [x IN [1, 2] WHERE x > 1 | x * 2] AS l",
        "RETURN {a: 1, b: [1, 2]} AS m",
        "CREATE (a:L {v: 1})-[:R {w: 2}]->(b)",
        "MATCH (a) DETACH DELETE a",
        "MATCH (a) SET a.x = 1, a:L REMOVE a.y",
        "MERGE (a {k: 1}) ON CREATE SET a.c = true ON MATCH SET a.m = false",
        "RETURN 1 AS x UNION ALL RETURN 2 AS x",
        "MATCH (a) WHERE exists((a)-[:R]->()) RETURN a",
        "MATCH (a) WHERE (a)-[:R]->(:L) RETURN a",
        "RETURN all(x IN [1] WHERE x > 0) AS q",
        "MATCH (n) RETURN n.x IS NOT NULL AS p, n:Label AS l",
    ]

    @pytest.mark.parametrize("query_text", QUERIES)
    def test_parse_print_parse_fixpoint(self, query_text):
        first = parse_query(query_text)
        printed = print_query(first)
        second = parse_query(printed)
        assert first == second, printed
