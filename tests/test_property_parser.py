"""Property-based round-trip: print(parse(print(ast))) is the identity.

Random expression and pattern ASTs are generated structurally, printed to
Cypher text by the pretty-printer, re-parsed, and compared — exercising
the parser/printer pair far beyond the hand-written cases.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ast import expressions as ex
from repro.ast import patterns as pt
from repro.ast.printer import print_expression, print_pattern
from repro.parser import parse_expression, parse_pattern

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).filter(
    # avoid collisions with keywords and function-call shapes
    lambda name: name.upper()
    not in {
        "AND", "OR", "XOR", "NOT", "IN", "IS", "NULL", "TRUE", "FALSE",
        "CASE", "WHEN", "THEN", "ELSE", "END", "STARTS", "ENDS",
        "CONTAINS", "ALL", "ANY", "NONE", "SINGLE", "EXISTS", "COUNT",
        "WHERE", "RETURN", "MATCH", "WITH", "UNION", "AS", "ORDER",
        "SKIP", "LIMIT", "DISTINCT", "UNWIND", "CREATE", "DELETE",
        "MERGE", "SET", "REMOVE", "OPTIONAL", "DETACH", "BY", "ON",
        "FROM", "GRAPH", "AT", "OF", "QUERY", "ASC", "DESC",
    }
)

literals = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=0, max_value=10**9),
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        max_size=10,
    ),
).map(ex.Literal)


def expressions_strategy():
    def extend(children):
        pairs = st.tuples(identifiers, children)
        return st.one_of(
            st.builds(
                ex.PropertyAccess, children, identifiers
            ),
            st.builds(
                lambda items: ex.ListLiteral(tuple(items)),
                st.lists(children, max_size=3),
            ),
            st.builds(
                lambda items: ex.MapLiteral(
                    tuple({k: v for k, v in items}.items())
                ),
                st.lists(pairs, max_size=3),
            ),
            st.builds(ex.In, children, children),
            st.builds(
                ex.StringPredicate,
                st.sampled_from(["STARTS WITH", "ENDS WITH", "CONTAINS"]),
                children,
                children,
            ),
            st.builds(
                ex.BinaryLogic,
                st.sampled_from(["AND", "OR", "XOR"]),
                children,
                children,
            ),
            st.builds(ex.Not, children),
            st.builds(ex.IsNull, children),
            st.builds(ex.IsNotNull, children),
            st.builds(
                lambda op, a, b: ex.Comparison((op,), (a, b)),
                st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
                children,
                children,
            ),
            st.builds(
                ex.Arithmetic,
                st.sampled_from(["+", "-", "*", "/", "%", "^"]),
                children,
                children,
            ),
            st.builds(ex.UnaryMinus, children),
            st.builds(
                lambda name, args: ex.FunctionCall(name, tuple(args)),
                st.sampled_from(["coalesce", "size", "abs", "tostring"]),
                st.lists(children, min_size=1, max_size=2),
            ),
            st.builds(
                lambda v, src, w, p: ex.ListComprehension(v, src, w, p),
                identifiers,
                children,
                st.none() | children,
                st.none() | children,
            ),
            st.builds(
                lambda operand, alts, default: ex.CaseExpression(
                    operand, tuple(alts), default
                ),
                st.none() | children,
                st.lists(st.tuples(children, children), min_size=1, max_size=2),
                st.none() | children,
            ),
            st.builds(
                ex.QuantifiedPredicate,
                st.sampled_from(["all", "any", "none", "single"]),
                identifiers,
                children,
                children,
            ),
        )

    return st.recursive(
        st.one_of(literals, identifiers.map(ex.Variable), identifiers.map(ex.Parameter)),
        extend,
        max_leaves=12,
    )


node_patterns = st.builds(
    lambda name, labels, props: pt.NodePattern(
        name, tuple(labels), tuple({k: v for k, v in props}.items())
    ),
    st.none() | identifiers,
    st.lists(identifiers, max_size=2),
    st.lists(st.tuples(identifiers, literals), max_size=2),
)

lengths = st.one_of(
    st.none(),
    st.tuples(
        st.none() | st.integers(min_value=0, max_value=5),
        st.none() | st.integers(min_value=0, max_value=5),
    ).filter(
        # printer renders (d, d) as *d and cannot distinguish (None, None)
        # from any other "*"-form ambiguity; keep ranges printable
        lambda bounds: bounds[0] is None or bounds[1] is None
        or bounds[0] <= bounds[1]
    ),
)

rel_patterns = st.builds(
    lambda direction, name, types, props, length: pt.RelationshipPattern(
        direction, name, tuple(types),
        tuple({k: v for k, v in props}.items()), length,
    ),
    st.sampled_from([pt.LEFT_TO_RIGHT, pt.RIGHT_TO_LEFT, pt.UNDIRECTED]),
    st.none() | identifiers,
    st.lists(identifiers, max_size=2),
    st.lists(st.tuples(identifiers, literals), max_size=1),
    lengths,
)


@st.composite
def path_patterns(draw):
    segments = draw(st.integers(min_value=0, max_value=3))
    elements = [draw(node_patterns)]
    for _ in range(segments):
        elements.append(draw(rel_patterns))
        elements.append(draw(node_patterns))
    name = draw(st.none() | identifiers)
    return pt.PathPattern(tuple(elements), name=name)


class TestExpressionRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(tree=expressions_strategy())
    def test_print_parse_print_fixpoint(self, tree):
        printed = print_expression(tree)
        reparsed = parse_expression(printed)
        assert print_expression(reparsed) == printed


class TestPatternRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(pattern=path_patterns())
    def test_print_parse_identity(self, pattern):
        printed = print_pattern(pattern)
        reparsed = parse_pattern(printed)
        assert print_pattern(reparsed) == printed
