"""Macro-workload pieces: generator determinism, driver correctness.

Three layers under test: the seeded LDBC-style social generator (same
seed + scale → byte-identical stores across every emission and ingest
path), the mixed read/write driver (zero lost transactions, every
committed transaction visible exactly once, serial replay reproduces
the concurrent store byte-for-byte), and the latency-stat plumbing the
benchmark records (p50/p95/p99 keys present, ascending).
"""

import os
import sys

import pytest

from repro import CypherEngine
from repro.datasets import ldbc_social
from repro.datasets.ldbc_social import ldbc_counts
from repro.graph.ingest import ingest_csv
from repro.graph.store import MemoryGraph
from repro.selftest import graph_state

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "benchmarks"),
)

from workload import (  # noqa: E402 — needs the benchmarks dir on sys.path
    MacroWorkload,
    OPERATION_CLASSES,
    PERCENTILES,
    dataset_handles,
    latency_stats,
    percentile,
    prepare,
    replay,
)

SCALE = 0.01
SEED = 5


# ---------------------------------------------------------------------------
# Generator determinism
# ---------------------------------------------------------------------------

def test_generator_is_deterministic_per_seed():
    first = ldbc_social(scale=SCALE, seed=SEED)
    second = ldbc_social(scale=SCALE, seed=SEED)
    assert [t.header for t in first.tables] == [
        t.header for t in second.tables
    ]
    assert [t.rows for t in first.tables] == [t.rows for t in second.tables]
    different = ldbc_social(scale=SCALE, seed=SEED + 1)
    assert [t.rows for t in first.tables] != [
        t.rows for t in different.tables
    ]


def test_scale_controls_counts():
    small = ldbc_counts(0.01)
    large = ldbc_counts(0.1)
    assert small["persons"] < large["persons"]
    assert set(small) == {
        "persons", "forums", "posts", "comments", "knows", "likes"
    }
    ds = ldbc_social(scale=SCALE, seed=SEED)
    graph = ds.to_graph()
    counts = ds.counts
    expected_nodes = (
        counts["persons"] + counts["forums"]
        + counts["posts"] + counts["comments"]
    )
    assert graph.node_count() == expected_nodes


def test_emission_modes_byte_identical():
    """interpreter / row / batch / CSV ingest: one store, four paths."""
    ds = ldbc_social(scale=SCALE, seed=SEED)
    reference = graph_state(ds.to_graph("interpreter"))
    assert graph_state(ds.to_graph("row")) == reference
    assert graph_state(ds.to_graph("batch")) == reference
    ingested = MemoryGraph()
    ingest_csv(
        ingested,
        [(t.name + ".csv", list(ds.csv_lines(t))) for t in ds.tables],
    )
    assert graph_state(ingested) == reference


def test_unknown_emission_mode_rejected():
    ds = ldbc_social(scale=SCALE, seed=SEED)
    with pytest.raises(ValueError, match="unknown emission mode"):
        ds.to_graph("nope")


# ---------------------------------------------------------------------------
# Latency-stat plumbing
# ---------------------------------------------------------------------------

def test_percentile_is_nearest_rank():
    samples = [0.001 * i for i in range(1, 101)]
    assert percentile(samples, 50) == 0.050
    assert percentile(samples, 95) == 0.095
    assert percentile(samples, 99) == 0.099
    assert percentile([0.5], 99) == 0.5


def test_latency_stats_keys_present_and_ordered():
    stats = latency_stats([0.004, 0.001, 0.009, 0.002], 2.0)
    assert stats["count"] == 4
    assert stats["throughput_per_s"] == 2.0
    keys = [key for key, _q in PERCENTILES]
    assert keys == ["p50_ms", "p95_ms", "p99_ms"]
    values = [stats[key] for key in keys]
    assert values == sorted(values)
    empty = latency_stats([], 1.0)
    assert empty["count"] == 0 and empty["p99_ms"] == 0.0


# ---------------------------------------------------------------------------
# Driver: zero lost transactions, serial replay identity
# ---------------------------------------------------------------------------

def driven_engine():
    ds = ldbc_social(scale=SCALE, seed=SEED)
    engine = CypherEngine(ds.to_graph())
    prepare(engine)
    return engine, dataset_handles(ds)


def test_tiny_driver_run_loses_nothing():
    engine, handles = driven_engine()
    driver = MacroWorkload(
        engine, *handles, update_txns=20, readers=2, abort_every=5,
        budget_s=30.0, seed=SEED,
    )
    result = driver.run()
    assert result.consistent(), (
        result.errors, result.invariant_failures, result.version_regressions
    )
    assert result.committed + result.aborted == 20
    assert result.aborted == 4  # every 5th of 20 deliberately rolled back
    assert len(result.committed_log) == result.committed
    assert result.reads > 0
    # Zero lost transactions: every committed transaction bumped the
    # Meta counter exactly once, aborted ones not at all.
    assert engine.run(
        "MATCH (c:Meta) RETURN c.txns AS t"
    ).values("t") == [result.committed]


def test_serial_replay_reproduces_concurrent_store():
    engine, handles = driven_engine()
    baseline = engine.graph.copy()
    driver = MacroWorkload(
        engine, *handles, update_txns=15, readers=2, budget_s=30.0,
        seed=SEED,
    )
    result = driver.run()
    assert result.consistent(), result.errors
    replayed = replay(CypherEngine(baseline), result.committed_log)
    assert graph_state(replayed) == graph_state(engine.graph)


def test_driver_stats_shape():
    engine, handles = driven_engine()
    driver = MacroWorkload(
        engine, *handles, update_txns=8, readers=1, budget_s=30.0,
        seed=SEED,
    )
    result = driver.run()
    stats = result.stats()
    assert set(stats) == set(OPERATION_CLASSES)
    for name in OPERATION_CLASSES:
        entry = stats[name]
        assert set(entry) == {
            "count", "throughput_per_s", "p50_ms", "p95_ms", "p99_ms"
        }
        ordered = [entry[key] for key, _q in PERCENTILES]
        assert ordered == sorted(ordered), name
