"""Integration: Cypher 10 multiple graphs and query composition (E6, §6)."""

import pytest

from repro import CypherEngine
from repro.datasets.social import social_with_registry
from repro.exceptions import CypherSemanticError, GraphNotFound
from repro.graph.builder import GraphBuilder
from repro.graph.catalog import GraphCatalog
from repro.graph.store import MemoryGraph
from repro.multigraph.engine import TableGraphs


class TestFromGraph:
    def test_switches_the_source_graph(self):
        left, _ = GraphBuilder().node("a", "L", side="left").build()
        right, _ = GraphBuilder().node("b", "R", side="right").build()
        catalog = GraphCatalog(left, "left")
        catalog.register("right", right)
        engine = CypherEngine(left, catalog=catalog)
        result = engine.run("FROM GRAPH right MATCH (n) RETURN n.side AS side")
        assert result.values("side") == ["right"]

    def test_resolution_by_uri(self):
        graph, _ = GraphBuilder().node("a", v=1).build()
        catalog = GraphCatalog(MemoryGraph())
        catalog.register("g", graph, uri="bolt://somewhere/x")
        engine = CypherEngine(catalog.default(), catalog=catalog)
        result = engine.run(
            'FROM GRAPH g AT "bolt://somewhere/x" MATCH (n) RETURN n.v AS v'
        )
        assert result.values("v") == [1]

    def test_unknown_graph_raises(self):
        engine = CypherEngine(MemoryGraph())
        with pytest.raises(GraphNotFound):
            engine.run("FROM GRAPH nope MATCH (n) RETURN n")


class TestReturnGraph:
    def test_projection_creates_new_graph(self):
        graph, ids = (
            GraphBuilder()
            .node("a", "Person", name="Ann")
            .node("b", "Person", name="Bob")
            .node("c", "Person", name="Cid")
            .rel("a", "FRIEND", "b")
            .rel("c", "FRIEND", "b")
            .build()
        )
        engine = CypherEngine(graph)
        result = engine.run(
            "MATCH (x)-[:FRIEND]->()<-[:FRIEND]-(y) "
            "WITH DISTINCT x, y "
            "RETURN GRAPH shared OF (x)-[:SHARE_FRIEND]->(y)"
        )
        projected = result.graph("shared")
        assert projected.relationship_count() == 2  # (a,c) and (c,a)
        assert set(projected.all_types()) == {"SHARE_FRIEND"}
        # node identity is preserved (Section 6 composition)
        assert projected.has_node(ids["a"])
        assert projected.property_value(ids["a"], "name") == "Ann"

    def test_projection_deduplicates_edges(self):
        graph, _ = (
            GraphBuilder()
            .node("a", "P", v=1).node("b", "P", v=2)
            .rel("a", "F", "b").rel("a", "F", "b")
            .build()
        )
        engine = CypherEngine(graph)
        result = engine.run(
            "MATCH (x)-[:F]->(y) RETURN GRAPH g OF (x)-[:LINK]->(y)"
        )
        assert result.graph("g").relationship_count() == 1

    def test_registered_in_catalog_for_composition(self):
        graph, _ = GraphBuilder().node("a", "P").build()
        engine = CypherEngine(graph)
        engine.run("MATCH (x:P) RETURN GRAPH only OF (x)")
        assert "only" in engine.catalog

    def test_invalid_projection_patterns(self):
        graph, _ = GraphBuilder().node("a").node("b").rel("a", "R", "b").build()
        engine = CypherEngine(graph)
        with pytest.raises(CypherSemanticError):
            engine.run("MATCH (x)-[:R]->(y) RETURN GRAPH g OF (x)-[:L*2]->(y)")
        with pytest.raises(CypherSemanticError):
            engine.run("MATCH (x)-[:R]->(y) RETURN GRAPH g OF (x)-[:L]-(y)")


class TestExample61:
    """The paper's Example 6.1: SHARE_FRIEND projection, then composition."""

    def test_full_composition(self):
        catalog, people, cities = social_with_registry(
            people=20, cities=3, avg_friends=3, seed=13
        )
        engine = CypherEngine(catalog.default(), catalog=catalog)

        # First query: connect pairs sharing a friend (with the paper's
        # $duration filter on the FRIEND 'since' years).
        first = engine.run(
            'FROM GRAPH soc_net AT "hdfs://data/soc_network" '
            "MATCH (a)-[r1:FRIEND]-()-[r2:FRIEND]-(b) "
            "WHERE abs(r2.since - r1.since) < $duration "
            "WITH DISTINCT a, b "
            "RETURN GRAPH friends OF (a)-[:SHARE_FRIEND]->(b)",
            parameters={"duration": 50},
        )
        friends = first.graph("friends")
        assert friends.relationship_count() > 0

        # Second query: compose with the citizen registry for same-city
        # friend-sharing pairs.
        second = engine.run(
            "QUERY GRAPH friends "
            "MATCH (a)-[:SHARE_FRIEND]-(b) "
            'FROM GRAPH register AT "bolt://data/citizens" '
            "MATCH (a)-[:IN]->(c:City)<-[:IN]-(b) "
            "RETURN DISTINCT a, b, c.name AS city"
        )
        register = catalog.resolve(name="register")
        for record in second.records:
            # ground truth: both live in the reported city
            cities_of = []
            for person in (record["a"], record["b"]):
                for rel in register.outgoing(person, {"IN"}):
                    cities_of.append(
                        register.property_value(register.tgt(rel), "name")
                    )
            assert cities_of[0] == cities_of[1] == record["city"]

    def test_share_friend_pairs_match_ground_truth(self):
        catalog, people, _ = social_with_registry(people=15, seed=3)
        soc_net = catalog.resolve(name="soc_net")
        engine = CypherEngine(soc_net, catalog=catalog)
        result = engine.run(
            "MATCH (a)-[:FRIEND]-()-[:FRIEND]-(b) "
            "WITH DISTINCT a, b "
            "RETURN GRAPH friends OF (a)-[:SHARE_FRIEND]->(b)"
        )
        projected = result.graph("friends")
        # ground truth by hand: pairs at FRIEND-distance exactly 2 via a
        # common neighbour (a != b enforced by edge isomorphism only when
        # the two FRIEND edges differ; self-pairs never arise)
        neighbours = {person: set() for person in people}
        for rel in soc_net.relationships():
            source, target = soc_net.src(rel), soc_net.tgt(rel)
            neighbours[source].add(target)
            neighbours[target].add(source)
        expected_pairs = set()
        for person in people:
            for first in neighbours[person]:
                for second in neighbours[first]:
                    if second != person:
                        expected_pairs.add((person, second))
        actual_pairs = {
            (projected.src(rel), projected.tgt(rel))
            for rel in projected.relationships()
        }
        assert actual_pairs == expected_pairs


class TestTableGraphs:
    def test_accessors(self):
        from repro.semantics.table import Table

        graph = MemoryGraph()
        bundle = TableGraphs(Table(), {"g": graph}, source="g")
        assert bundle.graph() is graph
        assert bundle.graph("g") is graph
        with pytest.raises(CypherSemanticError):
            bundle.graph("other")

    def test_single_graph_default(self):
        from repro.semantics.table import Table

        graph = MemoryGraph()
        bundle = TableGraphs(Table(), {"only": graph})
        assert bundle.graph() is graph
