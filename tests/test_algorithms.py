"""Unit tests for the built-in graph algorithms (paper Section 1)."""

import networkx as nx
import pytest

from repro.algorithms import (
    connected_components,
    degree_centrality,
    pagerank,
    shortest_path,
    shortest_path_length,
    triangle_count,
)
from repro.datasets.citations import citation_network
from repro.exceptions import CypherTypeError
from repro.graph.builder import GraphBuilder
from repro.graph.store import MemoryGraph
from repro.values.path import Path


@pytest.fixture
def chain():
    builder = GraphBuilder()
    for index in range(5):
        builder.node("n%d" % index, v=index)
    for index in range(4):
        builder.rel("n%d" % index, "NEXT", "n%d" % (index + 1))
    return builder.build()


class TestPageRank:
    def test_empty_graph(self):
        assert pagerank(MemoryGraph()) == {}

    def test_scores_sum_to_one(self, chain):
        graph, _ = chain
        scores = pagerank(graph)
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_sink_of_a_chain_ranks_highest(self, chain):
        graph, ids = chain
        scores = pagerank(graph)
        assert max(scores, key=scores.get) == ids["n4"]

    def test_matches_networkx_on_citations(self):
        graph, _ = citation_network(publications=20, seed=5)
        ours = pagerank(graph, damping=0.85, tolerance=1e-12)
        digraph = nx.DiGraph()
        for node in graph.nodes():
            digraph.add_node(node)
        for rel in graph.relationships():
            digraph.add_edge(graph.src(rel), graph.tgt(rel))
        theirs = nx.pagerank(digraph, alpha=0.85, tol=1e-12)
        for node, score in theirs.items():
            assert ours[node] == pytest.approx(score, abs=2e-4)

    def test_type_restriction(self, chain):
        graph, _ = chain
        uniform = pagerank(graph, rel_types=("MISSING",))
        values = set(round(v, 9) for v in uniform.values())
        assert len(values) == 1  # no links → uniform distribution


class TestDegreeCentrality:
    def test_directions(self, chain):
        graph, ids = chain
        out = degree_centrality(graph, "out")
        into = degree_centrality(graph, "in")
        both = degree_centrality(graph, "both")
        assert out[ids["n4"]] == 0.0
        assert into[ids["n0"]] == 0.0
        assert both[ids["n1"]] == pytest.approx(2 / 4)

    def test_empty(self):
        assert degree_centrality(MemoryGraph()) == {}


class TestShortestPath:
    def test_bfs_path(self, chain):
        graph, ids = chain
        path = shortest_path(graph, ids["n0"], ids["n3"])
        assert isinstance(path, Path)
        assert len(path) == 3
        assert path.start == ids["n0"] and path.end == ids["n3"]

    def test_trivial_path(self, chain):
        graph, ids = chain
        assert shortest_path(graph, ids["n2"], ids["n2"]) == Path.single(ids["n2"])

    def test_unreachable_directed(self, chain):
        graph, ids = chain
        assert shortest_path(graph, ids["n3"], ids["n0"]) is None

    def test_undirected_reaches_backwards(self, chain):
        graph, ids = chain
        path = shortest_path(graph, ids["n3"], ids["n0"], directed=False)
        assert len(path) == 3

    def test_dijkstra_prefers_cheap_detour(self):
        graph, ids = (
            GraphBuilder()
            .node("a").node("b").node("c")
            .rel("a", "R", "c", w=10)
            .rel("a", "R", "b", w=1)
            .rel("b", "R", "c", w=1)
            .build()
        )
        path = shortest_path(graph, ids["a"], ids["c"], cost_property="w")
        assert len(path) == 2  # via b, total cost 2 < direct 10
        assert shortest_path_length(
            graph, ids["a"], ids["c"], cost_property="w"
        ) == 2

    def test_negative_costs_rejected(self):
        graph, ids = (
            GraphBuilder().node("a").node("b").rel("a", "R", "b", w=-1).build()
        )
        with pytest.raises(CypherTypeError):
            shortest_path(graph, ids["a"], ids["b"], cost_property="w")

    def test_length_of_missing_path(self, chain):
        graph, ids = chain
        assert shortest_path_length(graph, ids["n4"], ids["n0"]) is None

    def test_matches_networkx(self):
        graph, _ = citation_network(publications=25, seed=8)
        digraph = nx.DiGraph()
        for node in graph.nodes():
            digraph.add_node(node)
        for rel in graph.relationships():
            digraph.add_edge(graph.src(rel), graph.tgt(rel))
        nodes = sorted(digraph.nodes, key=lambda n: n.value)
        source, target = nodes[-1], nodes[0]
        ours = shortest_path_length(graph, source, target)
        try:
            theirs = nx.shortest_path_length(digraph, source, target)
        except nx.NetworkXNoPath:
            theirs = None
        assert ours == theirs


class TestComponents:
    def test_two_islands(self):
        graph, ids = (
            GraphBuilder()
            .node("a").node("b").node("c").node("d").node("lonely")
            .rel("a", "R", "b").rel("c", "R", "d")
            .build()
        )
        components = connected_components(graph)
        sizes = [len(component) for component in components]
        assert sorted(sizes, reverse=True) == [2, 2, 1]
        assert components[0] in (
            frozenset({ids["a"], ids["b"]}), frozenset({ids["c"], ids["d"]})
        )

    def test_direction_is_ignored(self, chain):
        graph, _ = chain
        assert len(connected_components(graph)) == 1

    def test_empty(self):
        assert connected_components(MemoryGraph()) == []


class TestTriangles:
    def test_counts_one_triangle(self):
        graph, _ = (
            GraphBuilder()
            .node("a").node("b").node("c")
            .rel("a", "R", "b").rel("b", "R", "c").rel("c", "R", "a")
            .build()
        )
        assert triangle_count(graph) == 1

    def test_parallel_edges_and_loops_ignored(self):
        graph, ids = (
            GraphBuilder()
            .node("a").node("b").node("c")
            .rel("a", "R", "b").rel("b", "R", "a")
            .rel("b", "R", "c").rel("c", "R", "a")
            .rel("a", "R", "a")
            .build()
        )
        assert triangle_count(graph) == 1

    def test_no_triangles_on_chain(self, chain):
        graph, _ = chain
        assert triangle_count(graph) == 0
