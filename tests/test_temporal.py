"""Unit tests for the Cypher 10 temporal types (paper §6)."""

import pytest

from repro.exceptions import CypherTypeError
from repro.temporal import Date, DateTime, Duration, LocalDateTime, LocalTime, Time


class TestDate:
    def test_parse_and_components(self):
        date = Date.parse("2017-03-05")
        assert date.cypher_component("year") == 2017
        assert date.cypher_component("month") == 3
        assert date.cypher_component("day") == 5

    def test_from_map_defaults(self):
        date = Date.from_map({"year": 2000})
        assert date.cypher_to_string() == "2000-01-01"

    def test_from_map_requires_year(self):
        with pytest.raises(CypherTypeError):
            Date.from_map({"month": 2})

    def test_bad_parse(self):
        with pytest.raises(CypherTypeError):
            Date.parse("not a date")

    def test_ordering(self):
        early, late = Date.parse("1999-12-31"), Date.parse("2000-01-01")
        assert early.cypher_compare(late) == -1
        assert late.cypher_compare(early) == 1
        assert early.cypher_compare(early) == 0

    def test_cross_type_comparison_is_unknown(self):
        assert Date.parse("2000-01-01").cypher_compare(LocalTime(1)) is None

    def test_day_of_week(self):
        assert Date.parse("2018-06-10").cypher_component("dayOfWeek") == 7  # Sunday

    def test_plus_duration_days(self):
        result = Date.parse("2018-01-30") + Duration(days=3) if False else None
        shifted = Date.parse("2018-01-30").cypher_add(Duration(days=3))
        assert shifted.cypher_to_string() == "2018-02-02"

    def test_plus_duration_months_clamps_day(self):
        shifted = Date.parse("2018-01-31").cypher_add(Duration(months=1))
        assert shifted.cypher_to_string() == "2018-02-28"

    def test_minus_duration(self):
        shifted = Date.parse("2018-03-01").cypher_subtract(Duration(days=1))
        assert shifted.cypher_to_string() == "2018-02-28"


class TestTimes:
    def test_localtime_parse_variants(self):
        assert LocalTime.parse("12:31").cypher_component("minute") == 31
        assert LocalTime.parse("12:31:14").cypher_component("second") == 14
        full = LocalTime.parse("12:31:14.5")
        assert full.cypher_component("millisecond") == 500

    def test_localtime_string_roundtrip(self):
        assert LocalTime.parse("09:05:00").cypher_to_string() == "09:05:00"
        assert LocalTime.parse("09:05:00.25").cypher_to_string() == "09:05:00.25"

    def test_time_offset_parsing(self):
        time = Time.parse("10:00:00+02:00")
        assert time.cypher_component("offsetSeconds") == 7200
        zulu = Time.parse("10:00:00Z")
        assert zulu.cypher_component("offsetSeconds") == 0

    def test_time_ordering_respects_offset(self):
        utc10 = Time.parse("10:00:00Z")
        cet11 = Time.parse("11:00:00+01:00")  # also 10:00 UTC
        assert utc10.cypher_compare(cet11) == 0

    def test_time_plus_duration(self):
        shifted = LocalTime.parse("23:30:00").cypher_add(Duration(seconds=3600))
        assert shifted.cypher_to_string() == "00:30:00"  # wraps midnight

    def test_calendar_duration_on_time_rejected(self):
        with pytest.raises(CypherTypeError):
            LocalTime.parse("10:00").cypher_add(Duration(days=1))

    def test_validation(self):
        with pytest.raises(CypherTypeError):
            LocalTime(25)
        with pytest.raises(CypherTypeError):
            LocalTime(1, 61)


class TestDateTimes:
    def test_local_datetime_parse(self):
        value = LocalDateTime.parse("2018-06-10T14:30:00")
        assert value.cypher_component("year") == 2018
        assert value.cypher_component("hour") == 14

    def test_datetime_with_offset(self):
        value = DateTime.parse("2018-06-10T14:30:00+02:00")
        assert value.cypher_component("offsetSeconds") == 7200
        assert value.cypher_to_string() == "2018-06-10T14:30:00+02:00"

    def test_datetime_ordering_across_offsets(self):
        a = DateTime.parse("2018-06-10T12:00:00Z")
        b = DateTime.parse("2018-06-10T14:00:00+02:00")
        assert a.cypher_compare(b) == 0

    def test_datetime_plus_duration_crossing_day(self):
        value = LocalDateTime.parse("2018-06-10T23:00:00")
        shifted = value.cypher_add(Duration(seconds=2 * 3600))
        assert shifted.cypher_to_string() == "2018-06-11T01:00:00"

    def test_datetime_plus_months(self):
        value = LocalDateTime.parse("2018-01-31T10:00:00")
        shifted = value.cypher_add(Duration(months=1))
        assert shifted.cypher_to_string() == "2018-02-28T10:00:00"


class TestDuration:
    def test_parse_iso(self):
        duration = Duration.parse("P1Y2M3DT4H5M6S")
        assert duration.months == 14
        assert duration.days == 3
        assert duration.seconds == 4 * 3600 + 5 * 60 + 6

    def test_parse_weeks_and_fractions(self):
        duration = Duration.parse("P2WT0.5S")
        assert duration.days == 14
        assert duration.nanoseconds == 500_000_000

    def test_parse_negative(self):
        duration = Duration.parse("-P1D")
        assert duration.days == -1

    def test_parse_rejects_empty(self):
        with pytest.raises(CypherTypeError):
            Duration.parse("P")
        with pytest.raises(CypherTypeError):
            Duration.parse("nonsense")

    def test_from_map(self):
        duration = Duration.from_map({"hours": 1, "minutes": 30})
        assert duration.seconds == 5400

    def test_to_string_roundtrip(self):
        for text in ("P1Y2M3DT4H5M6S", "P14D", "PT0S"):
            assert Duration.parse(text).cypher_to_string() == text
        assert Duration(days=14).cypher_to_string() == "P14D"

    def test_arithmetic(self):
        total = Duration(days=1).cypher_add(Duration(seconds=60))
        assert total.days == 1 and total.seconds == 60
        diff = Duration(days=3).cypher_subtract(Duration(days=1))
        assert diff.days == 2
        double = Duration(days=2, seconds=30).cypher_multiply(2)
        assert double.days == 4 and double.seconds == 60

    def test_nanosecond_normalization(self):
        duration = Duration(nanoseconds=1_500_000_000)
        assert duration.seconds == 1
        assert duration.nanoseconds == 500_000_000

    def test_equality_and_hash(self):
        assert Duration(days=1) == Duration(days=1)
        assert hash(Duration(days=1)) == hash(Duration(days=1))
        assert Duration(days=1) != Duration(days=2)


class TestEngineIntegration:
    def test_constructors_through_queries(self, dual_run):
        from repro.graph.store import MemoryGraph

        result = dual_run(
            MemoryGraph(),
            "RETURN date('2018-06-10') AS d, duration('P1D') AS dur",
        )
        record = result.records[0]
        assert record["d"].cypher_to_string() == "2018-06-10"
        assert record["dur"].days == 1

    def test_temporal_arithmetic_in_queries(self, dual_run):
        from repro.graph.store import MemoryGraph

        result = dual_run(
            MemoryGraph(),
            "RETURN date('2018-06-10') + duration('P3D') AS moved",
        )
        assert result.records[0]["moved"].cypher_to_string() == "2018-06-13"

    def test_temporal_comparison_in_queries(self, dual_run):
        from repro.graph.store import MemoryGraph

        result = dual_run(
            MemoryGraph(),
            "RETURN date('2018-01-01') < date('2018-06-10') AS before",
        )
        assert result.records[0]["before"] is True

    def test_component_access_in_queries(self, dual_run):
        from repro.graph.store import MemoryGraph

        result = dual_run(
            MemoryGraph(),
            "RETURN datetime('2018-06-10T12:00:00Z').year AS y",
        )
        assert result.records[0]["y"] == 2018

    def test_temporal_values_stored_on_nodes(self):
        from repro import CypherEngine
        from repro.graph.store import MemoryGraph

        engine = CypherEngine(MemoryGraph())
        engine.run("CREATE ({d: date('2018-06-10')})")
        result = engine.run("MATCH (n) RETURN n.d.month AS m")
        assert result.records[0]["m"] == 6
