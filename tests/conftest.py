"""Shared fixtures: the paper's example graphs and dual-mode runners.

Also hosts the tier-1 **coverage floor**: the environment ships no
pytest-cov, so a minimal ``sys.settrace`` line tracer (below) watches
``src/repro/planner`` and ``src/repro/semantics`` during the run and
fails the session if either package drops under 85% line coverage.  The
tracer disables itself per code object the moment that object is fully
covered, so the steady-state overhead on a hot suite is one dict lookup
per function call.  The floor is only enforced on green, full-suite
runs (partial ``-k``/single-file invocations measure meaningless
subsets); set ``REPRO_COVERAGE=0`` to disable tracing entirely or
``REPRO_COVERAGE=force`` to enforce the floor regardless of selection
size.
"""

from __future__ import annotations

import os
import sys
import types

import pytest

from repro import CypherEngine
from repro.datasets.paper import figure1_graph, figure4_graph, self_loop_graph

# ---------------------------------------------------------------------------
# Coverage floor (tier-1 config; see module docstring)
# ---------------------------------------------------------------------------

COVERAGE_FLOOR = 85.0
#: Enforce only when at least this many tests were collected (a full run).
COVERAGE_MIN_ITEMS = 800


def _covered_packages():
    """Coverage targets: package directories or single files.

    ``graph/store.py`` joined the floor with the property-index
    subsystem (PR 5): its incremental maintenance hooks run on every
    mutation path, so untested store lines are untested write paths.
    ``runtime/`` joined with transactional sessions (PR 6): the session
    state machine, cancellation polling and admission gate are exactly
    the kind of branchy control code that rots silently.  Parallel
    morsel execution (PR 7) lands inside these same roots —
    ``runtime/scheduler.py`` and ``planner/parallel.py`` are under the
    floor automatically, which is the point of tracing directories
    rather than files.  ``graph/reachability.py`` joined with the
    reachability indexes (PR 8): its condensation maintenance runs on
    every relationship mutation, same argument as ``store.py``.
    ``datasets/`` and ``graph/ingest.py`` joined with the macro
    workload (PR 9): the generator seeds every macro differential and
    the ingest path owns the deferred-index failure contract, so
    untested lines there are untested rollback paths.
    ``graph/statistics.py`` and ``planner/access.py`` joined with
    composite indexes and histogram statistics (PR 10): the histogram
    estimators silently degrade to flat guesses on untested branches,
    and access-path matching decides every index-vs-scan choice — the
    per-file floor is sharper than the planner package aggregate it
    also sits under.
    """
    import repro.datasets
    import repro.graph.ingest
    import repro.graph.reachability
    import repro.graph.statistics
    import repro.graph.store
    import repro.planner
    import repro.planner.access
    import repro.runtime
    import repro.semantics

    return {
        "src/repro/planner": os.path.dirname(
            os.path.abspath(repro.planner.__file__)
        ),
        "src/repro/runtime": os.path.dirname(
            os.path.abspath(repro.runtime.__file__)
        ),
        "src/repro/semantics": os.path.dirname(
            os.path.abspath(repro.semantics.__file__)
        ),
        "src/repro/datasets": os.path.dirname(
            os.path.abspath(repro.datasets.__file__)
        ),
        "src/repro/graph/store.py": os.path.abspath(
            repro.graph.store.__file__
        ),
        "src/repro/graph/reachability.py": os.path.abspath(
            repro.graph.reachability.__file__
        ),
        "src/repro/graph/ingest.py": os.path.abspath(
            repro.graph.ingest.__file__
        ),
        "src/repro/graph/statistics.py": os.path.abspath(
            repro.graph.statistics.__file__
        ),
        "src/repro/planner/access.py": os.path.abspath(
            repro.planner.access.__file__
        ),
    }


class _LineTracer:
    """Line coverage over a directory allowlist, self-pruning per code.

    ``_watch`` maps each code object to its still-uncovered line set;
    once empty the entry flips to ``False`` and neither the global
    dispatch nor the local tracer touches that code again.
    """

    def __init__(self, targets):
        self._prefixes = tuple(
            target.rstrip(os.sep) + os.sep
            for target in targets
            if not target.endswith(".py")
        )
        self._files = frozenset(
            target for target in targets if target.endswith(".py")
        )
        self._watch = {}
        self.executed = {}  # filename -> set of executed line numbers

    def _lines_of(self, code):
        return {
            line for _start, _end, line in code.co_lines() if line is not None
        }

    def dispatch(self, frame, event, arg):
        if event != "call":
            return None
        code = frame.f_code
        remaining = self._watch.get(code, Ellipsis)
        if remaining is Ellipsis:
            filename = code.co_filename
            if filename.startswith(self._prefixes) or filename in self._files:
                remaining = self._lines_of(code)
                self.executed.setdefault(filename, set())
            else:
                remaining = False
            self._watch[code] = remaining
        if not remaining:
            return None
        return self._line

    def _line(self, frame, event, arg):
        code = frame.f_code
        remaining = self._watch.get(code)
        if not remaining:
            return None
        if event == "line":
            line = frame.f_lineno
            if line in remaining:
                remaining.discard(line)
                self.executed[code.co_filename].add(line)
                if not remaining:
                    self._watch[code] = False
                    return None
        return self._line


#: Code objects with this flag are real function bodies (functions,
#: methods, lambdas, comprehensions) — the lines that run under the
#: tracer.  Module and class bodies execute at *import* time, before the
#: tracer installs, so they are excluded from numerator and denominator
#: alike: the floor measures logic-line coverage.
_CO_OPTIMIZED = 0x0001


def _executable_lines(path):
    """Every line that can start an instruction in any function body.

    Ranges starting at bytecode offset 0 are skipped: that is the
    ``RESUME`` instruction, which carries the ``def`` line but never
    produces a ``line`` trace event.  (A one-line ``def f(): return x``
    keeps its line through the body instruction's own range.)
    """
    with open(path) as handle:
        source = handle.read()
    lines = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        if code.co_flags & _CO_OPTIMIZED:
            for start, _end, line in code.co_lines():
                if line is not None and start > 0:
                    lines.add(line)
        for const in code.co_consts:
            if isinstance(const, types.CodeType):
                stack.append(const)
    return lines


def _package_coverage(tracer, target, detail=None):
    """``(percent, covered, total)`` over a package directory or file."""
    covered = total = 0
    if target.endswith(".py"):
        paths = [target]
    else:
        paths = [
            os.path.join(dirpath, name)
            for dirpath, _dirnames, filenames in os.walk(target)
            for name in sorted(filenames)
            if name.endswith(".py")
        ]
    for path in paths:
        executable = _executable_lines(path)
        hit = executable & tracer.executed.get(path, set())
        total += len(executable)
        covered += len(hit)
        if detail is not None and executable:
            missing = sorted(executable - hit)
            detail.append(
                "  %-40s %5.1f%% (missing: %s)"
                % (
                    os.path.basename(path),
                    100.0 * len(hit) / len(executable),
                    ",".join(map(str, missing[:25]))
                    + ("…" if len(missing) > 25 else ""),
                )
            )
    percent = 100.0 * covered / total if total else 100.0
    return percent, covered, total


def pytest_configure(config):
    if os.environ.get("REPRO_COVERAGE") == "0":
        return
    if sys.gettrace() is not None:
        return  # debugger (or another tracer) owns the hook
    tracer = _LineTracer(_covered_packages().values())
    config._repro_coverage = tracer
    sys.settrace(tracer.dispatch)


def pytest_sessionfinish(session, exitstatus):
    tracer = getattr(session.config, "_repro_coverage", None)
    if tracer is None:
        return
    sys.settrace(None)
    forced = os.environ.get("REPRO_COVERAGE") == "force"
    full_run = session.testscollected >= COVERAGE_MIN_ITEMS
    if exitstatus or not (full_run or forced):
        return  # floor gates green full-suite runs only
    report = []
    failed = False
    detail = [] if os.environ.get("REPRO_COVERAGE_DETAIL") else None
    for label, directory in _covered_packages().items():
        percent, covered, total = _package_coverage(
            tracer, directory, detail
        )
        if detail:
            report.extend(detail)
            detail.clear()
        verdict = "ok" if percent >= COVERAGE_FLOOR else "BELOW FLOOR"
        if percent < COVERAGE_FLOOR:
            failed = True
        report.append(
            "coverage %-22s %6.2f%% (%d/%d lines, floor %.0f%%) %s"
            % (label, percent, covered, total, COVERAGE_FLOOR, verdict)
        )
    session.config._repro_coverage_report = report
    if failed:
        session.exitstatus = 1


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for line in getattr(config, "_repro_coverage_report", ()):
        terminalreporter.write_line(line)


@pytest.fixture
def figure1():
    """(graph, ids) for the paper's Figure 1 academic graph."""
    return figure1_graph()


@pytest.fixture
def figure4():
    """(graph, ids) for the paper's Figure 4 teachers graph."""
    return figure4_graph()


@pytest.fixture
def self_loop():
    """(graph, ids) for the one-node/one-loop complexity example."""
    return self_loop_graph()


@pytest.fixture(params=["interpreter", "planner"])
def read_mode(request):
    """Parametrizes read-query tests over both execution paths."""
    return request.param


def run_both(graph, query, parameters=None):
    """Run a read query on both paths and assert they agree.

    Returns the interpreter-path result (row order of the reference
    semantics).  The assertion is bag equality — duplicates included,
    since the paper's semantics is explicitly bag-based.
    """
    engine = CypherEngine(graph)
    interpreted = engine.run(query, parameters=parameters, mode="interpreter")
    planned = engine.run(query, parameters=parameters, mode="planner")
    assert interpreted.table.same_bag(planned.table), (
        "interpreter and planner disagree on %r:\n%s\nvs\n%s"
        % (query, interpreted.records, planned.records)
    )
    return interpreted


@pytest.fixture
def dual_run():
    """Fixture-form of run_both for tests that build their own graphs."""
    return run_both
