"""Shared fixtures: the paper's example graphs and dual-mode runners."""

from __future__ import annotations

import pytest

from repro import CypherEngine
from repro.datasets.paper import figure1_graph, figure4_graph, self_loop_graph


@pytest.fixture
def figure1():
    """(graph, ids) for the paper's Figure 1 academic graph."""
    return figure1_graph()


@pytest.fixture
def figure4():
    """(graph, ids) for the paper's Figure 4 teachers graph."""
    return figure4_graph()


@pytest.fixture
def self_loop():
    """(graph, ids) for the one-node/one-loop complexity example."""
    return self_loop_graph()


@pytest.fixture(params=["interpreter", "planner"])
def read_mode(request):
    """Parametrizes read-query tests over both execution paths."""
    return request.param


def run_both(graph, query, parameters=None):
    """Run a read query on both paths and assert they agree.

    Returns the interpreter-path result (row order of the reference
    semantics).  The assertion is bag equality — duplicates included,
    since the paper's semantics is explicitly bag-based.
    """
    engine = CypherEngine(graph)
    interpreted = engine.run(query, parameters=parameters, mode="interpreter")
    planned = engine.run(query, parameters=parameters, mode="planner")
    assert interpreted.table.same_bag(planned.table), (
        "interpreter and planner disagree on %r:\n%s\nvs\n%s"
        % (query, interpreted.records, planned.records)
    )
    return interpreted


@pytest.fixture
def dual_run():
    """Fixture-form of run_both for tests that build their own graphs."""
    return run_both
