"""Unit tests for the lexer."""

import pytest

from repro.exceptions import CypherSyntaxError
from repro.parser.lexer import tokenize
from repro.parser.tokens import END, FLOAT, IDENT, INTEGER, OPERATOR, STRING


def kinds(text):
    return [token.kind for token in tokenize(text)[:-1]]


def texts(text):
    return [token.text for token in tokenize(text)[:-1]]


class TestBasics:
    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind == END

    def test_identifiers_and_keywords_are_idents(self):
        assert kinds("MATCH foo _bar x1") == [IDENT] * 4

    def test_integers(self):
        tokens = tokenize("42 0 007")
        assert [t.kind for t in tokens[:-1]] == [INTEGER] * 3
        assert [t.text for t in tokens[:-1]] == ["42", "0", "007"]

    def test_hex_integers_normalized(self):
        assert texts("0x1F") == ["31"]

    def test_floats(self):
        assert kinds("1.5 2e3 1.5e-2") == [FLOAT] * 3

    def test_range_does_not_eat_float(self):
        # `1..3` must lex INTEGER '..' INTEGER, not FLOAT '.3'
        assert [(t.kind, t.text) for t in tokenize("1..3")[:-1]] == [
            (INTEGER, "1"), (OPERATOR, ".."), (INTEGER, "3"),
        ]

    def test_property_access_keeps_dot(self):
        assert [(t.kind, t.text) for t in tokenize("a.b")[:-1]] == [
            (IDENT, "a"), (OPERATOR, "."), (IDENT, "b"),
        ]


class TestStrings:
    def test_single_and_double_quotes(self):
        assert texts("'abc' \"def\"") == ["abc", "def"]

    def test_escapes(self):
        assert texts(r"'a\nb'") == ["a\nb"]
        assert texts(r"'it\'s'") == ["it's"]
        assert texts(r"'back\\slash'") == ["back\\slash"]

    def test_unicode_escape(self):
        assert texts(r"'A'") == ["A"]

    def test_unterminated_string(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("'abc")

    def test_unknown_escape(self):
        with pytest.raises(CypherSyntaxError):
            tokenize(r"'\q'")


class TestBacktickIdentifiers:
    def test_quoted_identifier(self):
        tokens = tokenize("`weird name`")
        assert tokens[0].kind == IDENT
        assert tokens[0].text == "weird name"

    def test_doubled_backtick_escape(self):
        assert tokenize("`a``b`")[0].text == "a`b"

    def test_unterminated(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("`oops")


class TestOperators:
    def test_multi_char_before_single(self):
        assert texts("<= >= <> =~ += ..") == ["<=", ">=", "<>", "=~", "+=", ".."]

    def test_arrows_decompose(self):
        assert texts("-[r]->") == ["-", "[", "r", "]", "-", ">"]
        assert texts("<-[]-") == ["<", "-", "[", "]", "-"]

    def test_unexpected_character(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("@")


class TestTrivia:
    def test_line_comments(self):
        assert texts("1 // comment\n2") == ["1", "2"]

    def test_block_comments(self):
        assert texts("1 /* multi\nline */ 2") == ["1", "2"]

    def test_unterminated_block_comment(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("/* oops")

    def test_positions(self):
        tokens = tokenize("ab\n  cd")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        try:
            tokenize("a\n@")
        except CypherSyntaxError as error:
            assert error.line == 2
            assert error.column == 1
        else:
            raise AssertionError("expected a syntax error")
