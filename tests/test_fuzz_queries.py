"""Grammar-driven query fuzzing: planner ≡ interpreter on generated queries.

A hypothesis strategy assembles syntactically valid read queries —
pattern shape, direction, labels, var-length ranges, WHERE predicates,
projections with optional aggregation/DISTINCT/ORDER BY — and every
generated query must produce the same bag on both execution paths over a
fixed, structurally rich graph.  This widens the cross-check far beyond
the hand-written corpus.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CypherEngine
from repro.graph.builder import GraphBuilder


def _fixture_graph():
    builder = GraphBuilder()
    labels = ["A", "B", "C"]
    for index in range(9):
        builder.node(
            "n%d" % index,
            labels[index % 3],
            v=index % 4,
            name="node-%d" % index,
        )
    edges = [
        (0, 1, "R"), (1, 2, "R"), (2, 3, "R"), (3, 4, "S"), (4, 5, "S"),
        (5, 0, "R"), (0, 2, "S"), (2, 4, "R"), (6, 7, "R"), (7, 6, "S"),
        (8, 8, "R"),  # self-loop
        (1, 4, "S"),
    ]
    for position, (source, target, rel_type) in enumerate(edges):
        builder.rel("n%d" % source, rel_type, "n%d" % target, w=position % 3)
    graph, _ = builder.build()
    return graph


GRAPH = _fixture_graph()

label_part = st.sampled_from(["", ":A", ":B", ":C"])
type_part = st.sampled_from(["", ":R", ":S", ":R|S"])
direction = st.sampled_from([("-", "->"), ("<-", "-"), ("-", "-")])
length_part = st.sampled_from(["", "*1..2", "*0..1", "*2"])


@st.composite
def match_queries(draw):
    left, right = draw(direction)
    rel_type = draw(type_part)
    length = draw(length_part)
    rel_body = rel_type + length
    if rel_body:
        rel = "%s[%s]%s" % (left, rel_body, right)
    else:
        rel = {("-", "->"): "-->", ("<-", "-"): "<--", ("-", "-"): "--"}[
            (left, right)
        ]
    pattern = "(a%s)%s(b%s)" % (draw(label_part), rel, draw(label_part))

    where = draw(
        st.sampled_from(
            [
                "",
                " WHERE a.v > 1",
                " WHERE a.v = b.v",
                " WHERE a.v < 2 OR b.v >= 2",
                " WHERE NOT a.v = 0",
                " WHERE a.name CONTAINS '1'",
                " WHERE a.v IN [0, 2]",
            ]
        )
    )
    projection = draw(
        st.sampled_from(
            [
                "RETURN a, b",
                "RETURN a.v AS av, b.v AS bv",
                "RETURN DISTINCT a.v AS av",
                "RETURN count(*) AS n",
                "RETURN a.v AS g, count(b) AS c",
                "RETURN a.v + b.v AS s ORDER BY s",
                "RETURN a.v AS av ORDER BY av DESC LIMIT 3",
                # collect() is omitted without ORDER BY: its list order is
                # implementation-defined and the two paths may enumerate
                # chains from opposite ends
                "RETURN count(b) AS c, sum(b.v) AS s",
            ]
        )
    )
    return "MATCH %s%s %s" % (pattern, where, projection)


@st.composite
def two_clause_queries(draw):
    first = draw(match_queries())
    # chain a second hop through OPTIONAL MATCH on the first variable
    head, _, projection = first.partition(" RETURN ")
    second_rel = draw(st.sampled_from(["-[:R]->", "<-[:S]-", "-[:R|S]-"]))
    return (
        head
        + " OPTIONAL MATCH (a)%s(c) RETURN a, c" % second_rel
    )


class TestFuzzedQueries:
    @settings(max_examples=120, deadline=None)
    @given(query=match_queries())
    def test_single_match_agreement(self, query):
        engine = CypherEngine(GRAPH)
        interpreted = engine.run(query, mode="interpreter")
        planned = engine.run(query, mode="planner")
        assert interpreted.table.same_bag(planned.table), query

    @settings(max_examples=60, deadline=None)
    @given(query=two_clause_queries())
    def test_optional_chain_agreement(self, query):
        engine = CypherEngine(GRAPH)
        interpreted = engine.run(query, mode="interpreter")
        planned = engine.run(query, mode="planner")
        assert interpreted.table.same_bag(planned.table), query

    @settings(max_examples=60, deadline=None)
    @given(query=match_queries())
    def test_rewriter_equivalence_on_fuzzed_queries(self, query):
        raw = CypherEngine(GRAPH, rewrite=False)
        rewriting = CypherEngine(GRAPH, rewrite=True)
        original = raw.run(query, mode="interpreter")
        rewritten = rewriting.run(query, mode="interpreter")
        assert original.table.same_bag(rewritten.table), query
