"""Grammar-driven query fuzzing: planner ≡ interpreter on generated queries.

The corpus itself — fixture graph, read and update strategies, the
canonical store snapshot — lives in :mod:`fuzztools` so other harnesses
(notably the row/batch/interpreter differential suite in
``test_batched_differential.py``) drive the exact same generators.

Every generated read query must produce the same bag on both execution
paths over a fixed, structurally rich graph, under each of the three
morphism modes; every planned run must also *report* the planner path
(a fuzzed read query falling back to the interpreter is a coverage
regression).  The update corpus runs each generated query on two
*clones* of the fixture graph, one per execution path, and asserts both
the result table (bag equality) and the final graph state (canonical,
id-inclusive snapshot) agree; driving-row order is pinned with ORDER BY
where the mutation sequence is observable, so "agree" really means
byte-identical stores.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CypherEngine

from fuzztools import (
    GRAPH,
    MORPHISMS,
    comprehension_queries,
    create_update_queries,
    delete_queries,
    graph_state,
    match_queries,
    merge_queries,
    named_path_queries,
    pipeline_queries,
    set_remove_queries,
    two_clause_queries,
    two_hop_queries,
)


class TestFuzzedQueries:
    @settings(max_examples=120, deadline=None)
    @given(query=match_queries())
    def test_single_match_agreement(self, query):
        engine = CypherEngine(GRAPH)
        interpreted = engine.run(query, mode="interpreter")
        planned = engine.run(query, mode="planner")
        assert interpreted.table.same_bag(planned.table), query

    @settings(max_examples=60, deadline=None)
    @given(query=two_clause_queries())
    def test_optional_chain_agreement(self, query):
        engine = CypherEngine(GRAPH)
        interpreted = engine.run(query, mode="interpreter")
        planned = engine.run(query, mode="planner")
        assert interpreted.table.same_bag(planned.table), query

    @settings(max_examples=80, deadline=None)
    @given(query=two_hop_queries())
    def test_two_hop_agreement(self, query):
        engine = CypherEngine(GRAPH)
        interpreted = engine.run(query, mode="interpreter")
        planned = engine.run(query, mode="planner")
        assert interpreted.table.same_bag(planned.table), query

    @settings(max_examples=80, deadline=None)
    @given(query=pipeline_queries())
    def test_pipeline_agreement(self, query):
        engine = CypherEngine(GRAPH)
        interpreted = engine.run(query, mode="interpreter")
        planned = engine.run(query, mode="planner")
        assert interpreted.table.same_bag(planned.table), query

    @settings(max_examples=60, deadline=None)
    @given(query=match_queries())
    def test_rewriter_equivalence_on_fuzzed_queries(self, query):
        raw = CypherEngine(GRAPH, rewrite=False)
        rewriting = CypherEngine(GRAPH, rewrite=True)
        original = raw.run(query, mode="interpreter")
        rewritten = rewriting.run(query, mode="interpreter")
        assert original.table.same_bag(rewritten.table), query

    @settings(max_examples=100, deadline=None)
    @given(query=named_path_queries())
    def test_named_path_agreement(self, query):
        engine = CypherEngine(GRAPH)
        interpreted = engine.run(query, mode="interpreter")
        planned = engine.run(query, mode="planner")
        assert planned.executed_by == "planner", query
        assert interpreted.table.same_bag(planned.table), query

    @settings(max_examples=100, deadline=None)
    @given(query=comprehension_queries())
    def test_comprehension_agreement(self, query):
        engine = CypherEngine(GRAPH)
        interpreted = engine.run(query, mode="interpreter")
        planned = engine.run(query, mode="planner")
        assert planned.executed_by == "planner", query
        assert interpreted.table.same_bag(planned.table), query


def _assert_update_agreement(query):
    interpreter_graph = GRAPH.copy()
    planner_graph = GRAPH.copy()
    interpreted = CypherEngine(interpreter_graph).run(
        query, mode="interpreter"
    )
    planned = CypherEngine(planner_graph).run(query, mode="planner")
    assert planned.executed_by == "planner", query
    assert interpreted.table.same_bag(planned.table), query
    assert graph_state(interpreter_graph) == graph_state(planner_graph), (
        query
    )


class TestFuzzedUpdates:
    """Planner ≡ interpreter on updating queries, graph state included."""

    @settings(max_examples=80, deadline=None)
    @given(query=create_update_queries())
    def test_create_agreement(self, query):
        _assert_update_agreement(query)

    @settings(max_examples=80, deadline=None)
    @given(query=set_remove_queries())
    def test_set_remove_agreement(self, query):
        _assert_update_agreement(query)

    @settings(max_examples=30, deadline=None)
    @given(query=delete_queries())
    def test_delete_agreement(self, query):
        _assert_update_agreement(query)

    @settings(max_examples=80, deadline=None)
    @given(query=merge_queries())
    def test_merge_agreement(self, query):
        _assert_update_agreement(query)

    @settings(max_examples=40, deadline=None)
    @given(
        first=create_update_queries().filter(lambda q: " RETURN " not in q),
        second=set_remove_queries().filter(lambda q: " RETURN " not in q),
    )
    def test_stacked_update_statements(self, first, second):
        """Two updating statements in sequence stay in lock step."""
        interpreter_graph = GRAPH.copy()
        planner_graph = GRAPH.copy()
        interpreter_engine = CypherEngine(interpreter_graph)
        planner_engine = CypherEngine(planner_graph)
        for query in (first, second):
            interpreter_engine.run(query, mode="interpreter")
            planned = planner_engine.run(query, mode="planner")
            assert planned.executed_by == "planner", query
        assert graph_state(interpreter_graph) == graph_state(
            planner_graph
        ), (first, second)


class TestFuzzedMorphisms:
    """Planner ≡ interpreter under every Section 8 morphism mode."""

    @settings(max_examples=40, deadline=None)
    @given(
        query=match_queries(),
        morphism=st.sampled_from(sorted(MORPHISMS)),
    )
    def test_match_agreement_under_all_morphisms(self, query, morphism):
        engine = CypherEngine(GRAPH, morphism=MORPHISMS[morphism])
        interpreted = engine.run(query, mode="interpreter")
        planned = engine.run(query, mode="planner")
        assert planned.executed_by == "planner", (morphism, query)
        assert interpreted.table.same_bag(planned.table), (morphism, query)

    @settings(max_examples=40, deadline=None)
    @given(
        query=named_path_queries(),
        morphism=st.sampled_from(sorted(MORPHISMS)),
    )
    def test_named_path_agreement_under_all_morphisms(self, query, morphism):
        engine = CypherEngine(GRAPH, morphism=MORPHISMS[morphism])
        interpreted = engine.run(query, mode="interpreter")
        planned = engine.run(query, mode="planner")
        assert interpreted.table.same_bag(planned.table), (morphism, query)

    @settings(max_examples=30, deadline=None)
    @given(
        query=two_hop_queries(),
        morphism=st.sampled_from(sorted(MORPHISMS)),
    )
    def test_two_hop_agreement_under_all_morphisms(self, query, morphism):
        engine = CypherEngine(GRAPH, morphism=MORPHISMS[morphism])
        interpreted = engine.run(query, mode="interpreter")
        planned = engine.run(query, mode="planner")
        assert interpreted.table.same_bag(planned.table), (morphism, query)
