"""Differential harness with property indexes enabled.

The access-path contract: declaring an index may change *how* rows are
found, never *which* rows.  Every generated sargable query therefore
runs six ways — interpreter / row / batch, each over the plain fixture
graph and over the identically-populated :data:`fuzztools.INDEXED_GRAPH`
— and all six must agree as bags, with no read falling back to the
interpreter.  Updating queries run on indexed clones through all three
executors and must leave byte-identical stores *and* indexes that match
a from-scratch rebuild (the incremental-maintenance-vs-rebuild check of
Berkholz et al.'s "answering queries under updates" regime: maintenance
is only worth having if nobody can tell it from recomputation).
"""

from hypothesis import given, settings

from repro import CypherEngine
from repro.planner import logical as lg
from repro.planner.batch import plan_supports_batch

from fuzztools import (
    COMPOSITE_INDEXED_GRAPH,
    GRAPH,
    INDEXED_GRAPH,
    assert_indexes_consistent,
    composite_indexed_fixture_graph,
    graph_state,
    indexed_fixture_graph,
    indexed_update_queries,
    match_queries,
    sargable_queries,
)


def _plan_operators(plan):
    stack = [plan]
    while stack:
        op = stack.pop()
        yield op
        stack.extend(op._children())


def _assert_read_agreement(query, graph):
    engine = CypherEngine(graph)
    interpreted = engine.run(query, mode="interpreter")
    row = engine.run(query, mode="row")
    batch = engine.run(query, mode="batch")
    assert row.executed_by == "planner", query
    assert row.execution_mode == "row", query
    assert batch.executed_by == "planner", query
    if plan_supports_batch(batch.plan):
        assert batch.execution_mode == "batch", query
    assert interpreted.table.same_bag(row.table), query
    assert interpreted.table.same_bag(batch.table), query
    return interpreted


class TestSargableReads:
    """Same bags with and without indexes, across all three executors."""

    @settings(max_examples=120, deadline=None)
    @given(query=sargable_queries())
    def test_sargable_with_and_without_indexes(self, query):
        plain = _assert_read_agreement(query, GRAPH)
        indexed = _assert_read_agreement(query, INDEXED_GRAPH)
        assert plain.table.same_bag(indexed.table), (
            "declaring an index changed the results of %r" % query
        )

    @settings(max_examples=60, deadline=None)
    @given(query=match_queries())
    def test_general_match_corpus_on_indexed_graph(self, query):
        plain = _assert_read_agreement(query, GRAPH)
        indexed = _assert_read_agreement(query, INDEXED_GRAPH)
        assert plain.table.same_bag(indexed.table), query


class TestIndexedUpdates:
    """Byte-identical stores and rebuild-identical indexes after updates."""

    @settings(max_examples=100, deadline=None)
    @given(query=indexed_update_queries())
    def test_update_differential_with_indexes(self, query):
        clones = {mode: INDEXED_GRAPH.copy() for mode in
                  ("interpreter", "row", "batch")}
        results = {
            mode: CypherEngine(graph).run(query, mode=mode)
            for mode, graph in clones.items()
        }
        assert results["row"].executed_by == "planner", query
        assert results["batch"].executed_by == "planner", query
        reference = results["interpreter"].table
        reference_state = graph_state(clones["interpreter"])
        for mode in ("row", "batch"):
            assert reference.same_bag(results[mode].table), (query, mode)
            assert reference_state == graph_state(clones[mode]), (query, mode)
        # Incremental maintenance must be indistinguishable from a
        # rebuild, and identical across executors.
        for mode, graph in clones.items():
            assert_indexes_consistent(graph)
        for label, key in clones["interpreter"].indexes():
            reference_index = clones["interpreter"].index_snapshot(label, key)
            for mode in ("row", "batch"):
                assert clones[mode].index_snapshot(label, key) == (
                    reference_index
                ), (query, mode, label, key)


#: Hand-written composite probes: full-tuple equality, prefix-only
#: equality (with and without a witness on the unprobed column),
#: prefix + range, prefix + STARTS WITH, covering projections, and
#: order-provided ORDER BY — the shapes the fuzz corpus is not
#: guaranteed to hit every run.
COMPOSITE_QUERIES = (
    "MATCH (a:A) WHERE a.v = 2 AND a.name = 'node-6' RETURN a.name AS n",
    "MATCH (a:A) WHERE a.v = 0 AND a.name STARTS WITH 'node' "
    "RETURN count(*) AS c",
    "MATCH (a:A) WHERE a.v = 2 RETURN count(*) AS c",
    "MATCH (a:A) WHERE a.v = 2 AND a.name IS NOT NULL RETURN a.name AS n",
    "MATCH (b:B) WHERE b.v = 3 AND b.name >= 'node-0' RETURN b.name AS n",
    "MATCH (c:C) WHERE c.name = 'node-5' AND c.v >= 0 RETURN c.v AS v",
    "MATCH (a:A) WHERE a.v >= 0 AND a.name IS NOT NULL "
    "RETURN a.v AS v, a.name AS n ORDER BY v, n",
    "MATCH (a:A) WHERE a.v = 2 AND a.name IS NOT NULL "
    "RETURN a.name AS n ORDER BY n DESC LIMIT 2",
    "MATCH (a:A) WHERE a.v IN [0, 2] AND a.name IS NOT NULL "
    "RETURN count(*) AS c",
)


class TestCompositeSargableReads:
    """Six-way agreement with composite indexes declared."""

    @settings(max_examples=120, deadline=None)
    @given(query=sargable_queries())
    def test_sargable_with_and_without_composite_indexes(self, query):
        plain = _assert_read_agreement(query, GRAPH)
        indexed = _assert_read_agreement(query, COMPOSITE_INDEXED_GRAPH)
        assert plain.table.same_bag(indexed.table), (
            "declaring a composite index changed the results of %r" % query
        )

    @settings(max_examples=60, deadline=None)
    @given(query=match_queries())
    def test_general_match_corpus_on_composite_indexed_graph(self, query):
        plain = _assert_read_agreement(query, GRAPH)
        indexed = _assert_read_agreement(query, COMPOSITE_INDEXED_GRAPH)
        assert plain.table.same_bag(indexed.table), query

    def test_hand_written_composite_probes(self):
        for query in COMPOSITE_QUERIES:
            plain = _assert_read_agreement(query, GRAPH)
            indexed = _assert_read_agreement(query, COMPOSITE_INDEXED_GRAPH)
            assert plain.table.same_bag(indexed.table), query


class TestCompositeIndexedUpdates:
    """Composite maintenance must equal a rebuild, across executors."""

    @settings(max_examples=100, deadline=None)
    @given(query=indexed_update_queries())
    def test_update_differential_with_composite_indexes(self, query):
        clones = {mode: COMPOSITE_INDEXED_GRAPH.copy() for mode in
                  ("interpreter", "row", "batch")}
        results = {
            mode: CypherEngine(graph).run(query, mode=mode)
            for mode, graph in clones.items()
        }
        assert results["row"].executed_by == "planner", query
        assert results["batch"].executed_by == "planner", query
        reference = results["interpreter"].table
        reference_state = graph_state(clones["interpreter"])
        for mode in ("row", "batch"):
            assert reference.same_bag(results[mode].table), (query, mode)
            assert reference_state == graph_state(clones[mode]), (query, mode)
        for mode, graph in clones.items():
            assert_indexes_consistent(graph)
        for label, key in clones["interpreter"].indexes():
            reference_index = clones["interpreter"].index_snapshot(label, key)
            for mode in ("row", "batch"):
                assert clones[mode].index_snapshot(label, key) == (
                    reference_index
                ), (query, mode, label, key)


def test_composite_point_lookup_takes_the_index():
    """Full-tuple equality plans as one composite seek, no label scan."""
    engine = CypherEngine(composite_indexed_fixture_graph())
    # :B carries only the composite (v, name) index, so the plan shape
    # is unambiguous (:A also has a single-key (name) index that ties
    # on estimated rows for a full point lookup).
    result = engine.run(
        "MATCH (b:B) WHERE b.v = 3 AND b.name = 'node-7' "
        "RETURN count(*) AS c"
    )
    scans = [op for op in _plan_operators(result.plan)
             if isinstance(op, lg.IndexScan)]
    assert scans, result.plan.describe()
    assert scans[0].all_keys == ("v", "name"), result.plan.describe()
    kinds = {type(op) for op in _plan_operators(result.plan)}
    assert lg.NodeByLabelScan not in kinds
    assert result.values("c") == [1]


def test_order_provided_scan_deletes_the_sort():
    """ORDER BY matching the index order must not plan a Sort, and the
    emitted order must be exact — ties and mixed-type segments included
    — on all three executors."""
    graph = composite_indexed_fixture_graph()
    engine = CypherEngine(graph)
    query = (
        "MATCH (a:A) WHERE a.v >= 0 AND a.name IS NOT NULL "
        "RETURN a.v AS v, a.name AS n ORDER BY v, n"
    )
    result = engine.run(query)
    kinds = {type(op) for op in _plan_operators(result.plan)}
    assert lg.IndexOrderedScan in kinds, result.plan.describe()
    assert lg.Sort not in kinds, result.plan.describe()
    reference = CypherEngine(GRAPH).run(query, mode="interpreter")
    rows = [tuple(record.values()) for record in reference.records]
    for mode in ("interpreter", "row", "batch"):
        actual = [
            tuple(record.values())
            for record in engine.run(query, mode=mode).records
        ]
        assert actual == rows, (mode, actual, rows)


def test_order_provided_scan_with_ties_and_mixed_types():
    """Exact ordered agreement on data built to stress tie-breaking."""
    from repro.graph.store import MemoryGraph

    plain = MemoryGraph()
    engine = CypherEngine(plain)
    engine.run(
        "UNWIND range(0, 29) AS i "
        "CREATE (:T {g: i % 3, v: CASE i % 5 WHEN 0 THEN 'node' "
        "WHEN 1 THEN i % 2 WHEN 2 THEN 1.5 WHEN 3 THEN i % 2 = 0 "
        "ELSE 'node' END})"
    )
    indexed = plain.copy()
    indexed.create_index("T", "g", "v")
    query = (
        "MATCH (t:T) WHERE t.g = 1 AND t.v IS NOT NULL "
        "RETURN t.v AS v, id(t) AS tie ORDER BY v"
    )
    indexed_engine = CypherEngine(indexed)
    result = indexed_engine.run(query)
    kinds = {type(op) for op in _plan_operators(result.plan)}
    assert lg.IndexOrderedScan in kinds, result.plan.describe()
    assert lg.Sort not in kinds, result.plan.describe()
    reference = CypherEngine(plain).run(query, mode="interpreter")
    rows = [tuple(record.values()) for record in reference.records]
    assert rows, "tie fixture matched nothing"
    for mode in ("interpreter", "row", "batch"):
        actual = [
            tuple(record.values())
            for record in indexed_engine.run(query, mode=mode).records
        ]
        assert actual == rows, (mode, actual, rows)


def test_harness_is_not_vacuous():
    """At least the obvious point lookup must actually take the index."""
    engine = CypherEngine(indexed_fixture_graph())
    result = engine.run("MATCH (a:A) WHERE a.v = 1 RETURN count(*) AS c")
    kinds = {type(op) for op in _plan_operators(result.plan)}
    assert lg.IndexScan in kinds, result.plan.describe()
    assert lg.NodeByLabelScan not in kinds


def test_no_sargable_query_falls_back_to_interpreter():
    """Acceptance: with indexes present, reads still never fall back."""
    engine = CypherEngine(indexed_fixture_graph())
    for query in [
        "MATCH (a:A) WHERE a.v = 1 RETURN a.name AS n ORDER BY n",
        "MATCH (a:B) WHERE a.name STARTS WITH 'node' RETURN count(*) AS c",
        "MATCH (a:C) WHERE a.v >= 1 AND a.v < 3 RETURN count(*) AS c",
        "MATCH (a:A) WHERE a.v IN [0, 2] RETURN count(*) AS c",
        "MATCH (a:A) MATCH (b:B) WHERE b.v = a.v RETURN count(*) AS c",
    ]:
        result = engine.run(query)
        assert result.executed_by == "planner", (
            query, result.fallback_reason
        )
        assert result.execution_mode == "batch", query
