"""Unit tests for the expression evaluator [[expr]]_{G,u} (paper §4.3)."""

import math

import pytest

from repro import parse_expression
from repro.exceptions import (
    CypherRuntimeError,
    CypherSemanticError,
    CypherTypeError,
    ParameterNotBound,
)
from repro.graph.builder import GraphBuilder
from repro.graph.store import MemoryGraph
from repro.semantics.expressions import Evaluator, apply_arithmetic


def evaluate(text, record=None, graph=None, parameters=None):
    evaluator = Evaluator(graph or MemoryGraph(), parameters)
    return evaluator.evaluate(parse_expression(text), record or {})


class TestLeaves:
    def test_literals(self):
        assert evaluate("42") == 42
        assert evaluate("'x'") == "x"
        assert evaluate("null") is None
        assert evaluate("true") is True

    def test_variables(self):
        assert evaluate("x", {"x": 7}) == 7

    def test_unknown_variable(self):
        with pytest.raises(CypherSemanticError):
            evaluate("ghost", {})

    def test_parameters(self):
        assert evaluate("$p", parameters={"p": 3}) == 3
        with pytest.raises(ParameterNotBound):
            evaluate("$q", parameters={})


class TestMapsAndProperties:
    def test_graph_property_access(self):
        graph, ids = GraphBuilder().node("a", "L", name="Ann").build()
        assert evaluate("n.name", {"n": ids["a"]}, graph) == "Ann"
        assert evaluate("n.missing", {"n": ids["a"]}, graph) is None

    def test_map_access(self):
        assert evaluate("{a: {b: 2}}.a.b") == 2
        assert evaluate("{a: 1}.zzz") is None

    def test_null_subject(self):
        assert evaluate("null.k") is None

    def test_invalid_subject(self):
        with pytest.raises(CypherTypeError):
            evaluate("(1).k")

    def test_dynamic_lookup(self):
        graph, ids = GraphBuilder().node("a", v=9).build()
        assert evaluate("n['v']", {"n": ids["a"]}, graph) == 9
        assert evaluate("{x: 1}['x']") == 1


class TestListOperations:
    def test_index(self):
        assert evaluate("[1, 2, 3][1]") == 2
        assert evaluate("[1, 2, 3][-1]") == 3
        assert evaluate("[1][5]") is None
        assert evaluate("[1][null]") is None

    def test_index_type_errors(self):
        with pytest.raises(CypherTypeError):
            evaluate("[1]['a']")
        with pytest.raises(CypherTypeError):
            evaluate("(1)[0]")

    def test_slices(self):
        assert evaluate("[0, 1, 2, 3][1..3]") == [1, 2]
        assert evaluate("[0, 1, 2][..2]") == [0, 1]
        assert evaluate("[0, 1, 2][1..]") == [1, 2]
        assert evaluate("[0, 1][null..1]") is None

    def test_in_semantics(self):
        assert evaluate("2 IN [1, 2]") is True
        assert evaluate("9 IN [1, 2]") is False
        assert evaluate("9 IN [1, null]") is None
        assert evaluate("null IN []") is False
        assert evaluate("null IN [1]") is None
        assert evaluate("1 IN null") is None

    def test_in_requires_list(self):
        with pytest.raises(CypherTypeError):
            evaluate("1 IN 2")


class TestArithmetic:
    def test_numeric_ops(self):
        assert evaluate("2 + 3") == 5
        assert evaluate("2.5 * 2") == 5.0
        assert evaluate("2 ^ 10") == 1024.0

    def test_string_and_list_plus(self):
        assert evaluate("'a' + 'b'") == "ab"
        assert evaluate("[1] + [2]") == [1, 2]
        assert evaluate("[1] + 2") == [1, 2]
        assert evaluate("0 + [1]") == [0, 1]

    def test_null_propagation(self):
        assert evaluate("null + 1") is None
        assert evaluate("1 - null") is None
        assert evaluate("-(null)") is None

    def test_invalid_addition(self):
        with pytest.raises(CypherTypeError):
            evaluate("1 + 'x'")

    def test_integer_division_truncates_toward_zero(self):
        assert evaluate("-7 / 2") == -3
        assert evaluate("7 / 2") == 3
        assert evaluate("7.0 / 2") == 3.5

    def test_division_by_zero(self):
        with pytest.raises(CypherRuntimeError):
            evaluate("1 / 0")
        assert evaluate("1.0 / 0") == math.inf
        assert evaluate("-1.0 / 0.0") == -math.inf

    def test_modulo_sign_follows_dividend(self):
        assert evaluate("-7 % 2") == -1
        assert evaluate("7 % -2") == 1
        assert evaluate("7.5 % 2") == pytest.approx(1.5)

    def test_modulo_by_zero(self):
        with pytest.raises(CypherRuntimeError):
            evaluate("1 % 0")

    def test_unary(self):
        assert evaluate("-(3)") == -3
        assert evaluate("+(3)") == 3
        with pytest.raises(CypherTypeError):
            evaluate("-'x'")

    def test_apply_arithmetic_is_shared_kernel(self):
        assert apply_arithmetic("+", 1, 2) == 3
        assert apply_arithmetic("*", None, 2) is None


class TestLogicAndComparison:
    def test_where_strictness(self):
        evaluator = Evaluator(MemoryGraph())
        assert evaluator.evaluate_predicate(parse_expression("1 = 1"), {})
        assert not evaluator.evaluate_predicate(parse_expression("null"), {})

    def test_chained_comparison(self):
        assert evaluate("1 < 2 < 3") is True
        assert evaluate("1 < 3 < 2") is False
        assert evaluate("1 < 2 < null") is None
        # short-circuit: a definite false beats a later unknown
        assert evaluate("3 < 2 < null") is False

    def test_logic_requires_booleans(self):
        with pytest.raises(CypherTypeError):
            evaluate("1 AND true")

    def test_label_predicate(self):
        graph, ids = GraphBuilder().node("a", "P", "Q").build()
        assert evaluate("n:P:Q", {"n": ids["a"]}, graph) is True
        assert evaluate("n:P:Z", {"n": ids["a"]}, graph) is False
        assert evaluate("x:P", {"x": None}, graph) is None


class TestComprehensionsAndQuantifiers:
    def test_list_comprehension(self):
        assert evaluate("[x IN [1, 2, 3] WHERE x > 1 | x * 10]") == [20, 30]
        assert evaluate("[x IN null | x]") is None

    def test_comprehension_scopes_do_not_leak(self):
        assert evaluate("[x IN [1] | x + y]", {"y": 10}) == [11]

    def test_quantifier_null_handling(self):
        assert evaluate("any(x IN [false, null] WHERE x)") is None
        assert evaluate("all(x IN [true, null] WHERE x)") is None
        assert evaluate("all(x IN [false, null] WHERE x)") is False
        assert evaluate("none(x IN [null] WHERE x)") is None
        assert evaluate("single(x IN [true, true] WHERE x)") is False
        assert evaluate("single(x IN [true, null] WHERE x)") is None

    def test_pattern_predicate(self):
        graph, ids = (
            GraphBuilder().node("a").node("b").rel("a", "R", "b").build()
        )
        assert evaluate("(x)-[:R]->()", {"x": ids["a"]}, graph) is True
        assert evaluate("(x)-[:R]->()", {"x": ids["b"]}, graph) is False

    def test_exists_subquery_with_where(self):
        graph, ids = (
            GraphBuilder()
            .node("a")
            .node("b", v=1)
            .node("c", v=2)
            .rel("a", "R", "b")
            .rel("a", "R", "c")
            .build()
        )
        assert (
            evaluate("exists((x)-[:R]->(t) WHERE t.v = 2)", {"x": ids["a"]}, graph)
            is True
        )
        assert (
            evaluate("exists((x)-[:R]->(t) WHERE t.v = 9)", {"x": ids["a"]}, graph)
            is False
        )


class TestCase:
    def test_simple_case_uses_equality(self):
        assert evaluate("CASE 1 WHEN 1.0 THEN 'hit' ELSE 'miss' END") == "hit"

    def test_simple_case_null_never_matches(self):
        assert evaluate("CASE null WHEN null THEN 'hit' ELSE 'miss' END") == "miss"

    def test_searched_case_first_true_wins(self):
        assert evaluate(
            "CASE WHEN false THEN 1 WHEN true THEN 2 WHEN true THEN 3 END"
        ) == 2

    def test_no_match_no_default_is_null(self):
        assert evaluate("CASE WHEN false THEN 1 END") is None


class TestAggregatePlacement:
    def test_aggregate_outside_projection_rejected(self):
        with pytest.raises(CypherSemanticError):
            evaluate("count(x)", {"x": 1})
        with pytest.raises(CypherSemanticError):
            evaluate("count(*)")


class TestFunctions:
    def test_graph_functions(self):
        graph, ids = (
            GraphBuilder()
            .node("a", "P", name="Ann")
            .node("b")
            .rel("a", "R", "b", handle="r", w=1)
            .build()
        )
        assert evaluate("labels(n)", {"n": ids["a"]}, graph) == ["P"]
        assert evaluate("type(r)", {"r": ids["r"]}, graph) == "R"
        assert evaluate("id(n)", {"n": ids["a"]}, graph) == ids["a"].value
        assert evaluate("keys(n)", {"n": ids["a"]}, graph) == ["name"]
        assert evaluate("properties(r)", {"r": ids["r"]}, graph) == {"w": 1}
        assert evaluate("startNode(r)", {"r": ids["r"]}, graph) == ids["a"]
        assert evaluate("endNode(r)", {"r": ids["r"]}, graph) == ids["b"]

    def test_unknown_function(self):
        with pytest.raises(CypherSemanticError):
            evaluate("frobnicate(1)")

    def test_arity_errors(self):
        with pytest.raises(CypherTypeError):
            evaluate("labels(1, 2)")
