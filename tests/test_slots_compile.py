"""Unit tests for the slotted execution engine's two new layers:

* :mod:`repro.planner.slots` — slot assignment over logical plans and
  slot-row ↔ record conversion;
* :mod:`repro.semantics.compile` — expression compilation to closures,
  including constant folding, deferred errors and the tree-walker
  fallback for uncovered constructs.
"""

import pytest

from repro import CypherEngine, parse_expression, parse_query
from repro.exceptions import CypherSemanticError, ParameterNotBound
from repro.graph.builder import GraphBuilder
from repro.graph.store import MemoryGraph
from repro.planner import plan_query
from repro.planner.slots import SlotMap, collect_plan_names
from repro.semantics.compile import MISSING, ExpressionCompiler
from repro.semantics.expressions import Evaluator


def small_graph():
    builder = GraphBuilder()
    builder.node("ann", "Person", name="Ann", age=30)
    builder.node("bob", "Person", name="Bob", age=25)
    builder.node("pub", "Publication", acmid=7)
    builder.rel("ann", "KNOWS", "bob", since=1999)
    builder.rel("ann", "AUTHORS", "pub")
    graph, handles = builder.build()
    return graph, handles


class TestSlotAssignment:
    def test_plan_variables_get_distinct_slots(self):
        graph, _ = small_graph()
        plan = plan_query(
            parse_query("MATCH (a:Person)-[r:KNOWS]->(b) RETURN a.name AS n"),
            graph,
        )
        slots = SlotMap.from_plan(plan)
        indexes = [slots[name] for name in ("a", "r", "b", "n")]
        assert len(set(indexes)) == 4
        assert all(0 <= index < len(slots) for index in indexes)

    def test_hidden_bindings_are_assigned_slots(self):
        graph, _ = small_graph()
        plan = plan_query(
            parse_query("MATCH (a)-[:KNOWS]->()-[:AUTHORS]->(p) RETURN p"),
            graph,
        )
        names = collect_plan_names(plan)
        hidden = [name for name in names if name.startswith("#")]
        assert hidden, "anonymous pattern elements need hidden slots"
        slots = SlotMap.from_plan(plan)
        for name in hidden:
            assert name in slots

    def test_slot_layout_is_deterministic(self):
        graph, _ = small_graph()
        query = "MATCH (a:Person) RETURN a.name AS name ORDER BY name"
        first = SlotMap.from_plan(plan_query(parse_query(query), graph))
        second = SlotMap.from_plan(plan_query(parse_query(query), graph))
        assert first.names() == second.names()

    def test_to_record_omits_missing_slots(self):
        slots = SlotMap(["a", "b", "c"])
        row = slots.new_row()
        row[slots["a"]] = 1
        row[slots["c"]] = None  # bound to Cypher null — must survive
        assert slots.to_record(row) == {"a": 1, "c": None}

    def test_add_is_idempotent(self):
        slots = SlotMap()
        assert slots.add("x") == slots.add("x")
        assert len(slots) == 1


def compile_on(text, names=(), graph=None, parameters=None):
    """Compile an expression against a slot layout; returns (fn, slots)."""
    evaluator = Evaluator(graph or MemoryGraph(), parameters)
    slots = SlotMap(names)
    compiler = ExpressionCompiler(evaluator, slots)
    return compiler.compile(parse_expression(text)), slots


def run_compiled(text, record=None, graph=None, parameters=None):
    record = record or {}
    compiled, slots = compile_on(
        text, list(record), graph=graph, parameters=parameters
    )
    row = slots.new_row()
    for name, value in record.items():
        row[slots[name]] = value
    return compiled(row)


class TestCompiledExpressions:
    """Compiled closures must agree with the tree-walking Evaluator."""

    CASES = [
        ("1 + 2 * 3", {}),
        ("x + 1", {"x": 41}),
        ("x = y", {"x": 1, "y": 1.0}),
        ("x < y AND y < 10", {"x": 1, "y": 5}),
        ("x IS NULL", {"x": None}),
        ("x IS NOT NULL", {"x": None}),
        ("NOT (x > 0)", {"x": 3}),
        ("'abc' STARTS WITH 'a'", {}),
        ("name CONTAINS 'n'", {"name": "Ann"}),
        ("name =~ 'A.*'", {"name": "Ann"}),
        ("x IN [1, 2, 3]", {"x": 2}),
        ("[1, 2, 3][x]", {"x": 1}),
        ("[1, 2, 3][1..]", {}),
        ("{a: 1, b: x}", {"x": 2}),
        ("CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END", {"x": -1}),
        ("CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' END", {"x": 2}),
        ("toUpper(name)", {"name": "ann"}),
        ("1 <> 2 XOR false", {}),
        ("-x", {"x": 5}),
        ("x % 3", {"x": 10}),
        # constructs served by the Evaluator fallback:
        ("[v IN [1, 2, 3] WHERE v > 1 | v * 10]", {}),
        ("all(v IN [1, 2] WHERE v > 0)", {}),
        ("size([v IN [1, 2, 3] | v])", {}),
    ]

    @pytest.mark.parametrize("text,record", CASES)
    def test_matches_tree_walker(self, text, record):
        evaluator = Evaluator(MemoryGraph())
        expected = evaluator.evaluate(parse_expression(text), dict(record))
        assert run_compiled(text, record) == expected

    def test_property_access_on_nodes(self):
        graph, handles = small_graph()
        value = run_compiled("a.name", {"a": handles["ann"]}, graph=graph)
        assert value == "Ann"

    def test_label_predicate(self):
        graph, handles = small_graph()
        assert run_compiled("a:Person", {"a": handles["ann"]}, graph=graph)
        assert not run_compiled(
            "a:Publication", {"a": handles["ann"]}, graph=graph
        )

    def test_parameters_resolve_lazily(self):
        assert run_compiled("$p + 1", parameters={"p": 2}) == 3
        compiled, slots = compile_on("$ghost")  # compiling must not raise
        with pytest.raises(ParameterNotBound):
            compiled(slots.new_row())

    def test_unbound_variable_raises_on_evaluation(self):
        compiled, slots = compile_on("x", ["x"])
        with pytest.raises(CypherSemanticError):
            compiled(slots.new_row())  # slot exists but holds MISSING

    def test_unknown_variable_raises_on_evaluation(self):
        compiled, slots = compile_on("ghost")  # no slot at all
        with pytest.raises(CypherSemanticError):
            compiled(slots.new_row())


class TestConstantFolding:
    def test_scalar_arithmetic_folds(self):
        compiled, _slots = compile_on("1 + 2 * 3")
        assert getattr(compiled, "constant_value", None) == (7,)

    def test_folding_never_hoists_errors(self):
        # 1 / 0 must raise when a row is evaluated, not at compile time
        # (a query may filter away every row before the division runs).
        compiled, slots = compile_on("1 / 0")
        from repro.exceptions import CypherRuntimeError

        with pytest.raises(CypherRuntimeError):
            compiled(slots.new_row())

    def test_non_scalar_results_stay_per_row(self):
        # list results are rebuilt per row, exactly like the tree walker
        compiled, slots = compile_on("[1] + [2]")
        first = compiled(slots.new_row())
        second = compiled(slots.new_row())
        assert first == second == [1, 2]
        assert first is not second


class TestFallbackPath:
    def test_exists_pattern_falls_back_and_works(self):
        graph, _ = small_graph()
        engine = CypherEngine(graph)
        planned = engine.run(
            "MATCH (n) WHERE exists((n)-[:AUTHORS]->()) RETURN n.name AS w",
            mode="planner",
        )
        interpreted = engine.run(
            "MATCH (n) WHERE exists((n)-[:AUTHORS]->()) RETURN n.name AS w",
            mode="interpreter",
        )
        assert planned.table.same_bag(interpreted.table)
        assert planned.table.column("w") == ["Ann"]

    def test_fallback_sees_null_padding_not_missing(self):
        # After OPTIONAL MATCH, padded variables are Cypher null, which
        # the fallback record must contain (a MISSING slot would raise).
        graph, _ = small_graph()
        engine = CypherEngine(graph)
        result = engine.run(
            "MATCH (p:Person) OPTIONAL MATCH (p)-[:AUTHORS]->(x) "
            "WITH p, x RETURN p.name AS name, "
            "[v IN [1] WHERE x IS NULL | v] AS marker",
            mode="planner",
        )
        by_name = {
            row["name"]: row["marker"] for row in result.table.to_records()
        }
        assert by_name == {"Ann": [], "Bob": [1]}


class TestPlanCache:
    def test_repeat_runs_reuse_plan_until_mutation(self):
        graph, handles = small_graph()
        engine = CypherEngine(graph)
        query = "MATCH (p:Person) RETURN count(*) AS n"
        assert engine.run(query, mode="planner").value() == 2
        assert query in engine._plan_cache
        cached = engine._plan_cache[query]
        assert engine.run(query, mode="planner").value() == 2
        assert engine._plan_cache[query] is cached  # hit, not re-planned
        graph.create_node(("Person",))
        assert engine.run(query, mode="planner").value() == 3  # invalidated

    def test_cache_respects_parameters(self):
        graph, _ = small_graph()
        engine = CypherEngine(graph)
        query = "MATCH (p:Person) WHERE p.age > $cut RETURN count(*) AS n"
        assert engine.run(query, {"cut": 20}, mode="planner").value() == 2
        assert engine.run(query, {"cut": 27}, mode="planner").value() == 1

    def test_swapping_graphs_invalidates(self):
        graph, _ = small_graph()
        engine = CypherEngine(graph)
        query = "MATCH (p:Person) RETURN count(*) AS n"
        assert engine.run(query, mode="planner").value() == 2
        engine.graph = MemoryGraph()
        assert engine.run(query, mode="planner").value() == 0
