"""Unit tests for static semantic analysis (scoping, aggregate placement)."""

import pytest

from repro import parse_query
from repro.exceptions import CypherSemanticError
from repro.semantics.analysis import check_query


def ok(text):
    check_query(parse_query(text))


def bad(text):
    with pytest.raises(CypherSemanticError):
        check_query(parse_query(text))


class TestScoping:
    def test_match_binds_pattern_variables(self):
        ok("MATCH (a)-[r]->(b) RETURN a, r, b")

    def test_unknown_variable_rejected(self):
        bad("MATCH (a) RETURN b")

    def test_with_narrows_scope(self):
        # The paper's Section 3 point: s is not projected by WITH, so it
        # "may no longer be used in the remainder of the query".
        bad("MATCH (r)-->(s) WITH r, count(s) AS c RETURN s")
        ok("MATCH (r)-->(s) WITH r, count(s) AS c RETURN r, c")

    def test_alias_enters_scope(self):
        ok("MATCH (a) WITH a.v AS value RETURN value")
        bad("MATCH (a) WITH a.v AS value RETURN a")

    def test_with_star_keeps_scope(self):
        ok("MATCH (a)-->(b) WITH * RETURN a, b")

    def test_where_sees_pattern_variables(self):
        ok("MATCH (a)-[r]->(b) WHERE r.w > a.v RETURN b")

    def test_where_cannot_see_future_variables(self):
        bad("MATCH (a) WHERE b.v = 1 MATCH (b) RETURN b")

    def test_unwind_alias(self):
        ok("UNWIND [1] AS x RETURN x")
        bad("UNWIND [1] AS x UNWIND [2] AS x RETURN x")
        bad("UNWIND ys AS x RETURN x")

    def test_pattern_property_expressions_use_driving_scope(self):
        # Property maps are evaluated under u (the driving assignment),
        # so referencing a variable bound by the same pattern is an error.
        bad("MATCH (a {v: 1})-->(b {w: a.v}) RETURN b")
        ok("MATCH (a {v: 1}) MATCH (b {w: a.v}) RETURN b")

    def test_comprehension_variables_are_local(self):
        ok("RETURN [x IN [1] | x] AS l")
        bad("RETURN [x IN [1] | x] AS l, x")

    def test_quantifier_variables_are_local(self):
        ok("RETURN any(x IN [1] WHERE x > 0) AS q")
        bad("WITH any(x IN [1] WHERE x > 0) AS q RETURN x")

    def test_pattern_comprehension_locals(self):
        ok("MATCH (a) RETURN [(a)-->(b) | b.v] AS vs")
        bad("MATCH (a) RETURN [(a)-->(b) | b.v] AS vs, b")

    def test_delete_and_set_check_scope(self):
        bad("MATCH (a) DELETE ghost")
        bad("MATCH (a) SET ghost.x = 1")
        bad("MATCH (a) SET ghost:L")
        bad("MATCH (a) REMOVE ghost:L")
        ok("MATCH (a) SET a.x = 1")

    def test_merge_binds_variables(self):
        ok("MERGE (a {k: 1}) RETURN a")
        ok("MERGE (a {k: 1}) ON CREATE SET a.c = 1")

    def test_create_rel_variable_cannot_rebind(self):
        bad("MATCH ()-[r]->() CREATE ()-[r:R]->()")

    def test_order_by_sees_both_scopes(self):
        ok("MATCH (a) RETURN a.v AS v ORDER BY a.w")
        ok("MATCH (a) RETURN a.v AS v ORDER BY v")

    def test_skip_limit_must_be_closed(self):
        bad("MATCH (a) RETURN a LIMIT a.v")
        ok("MATCH (a) RETURN a LIMIT 3")


class TestAggregatePlacement:
    def test_aggregates_allowed_in_projections(self):
        ok("MATCH (a) RETURN count(a) AS c")
        ok("MATCH (a) WITH count(a) AS c RETURN c")

    def test_aggregates_rejected_in_where(self):
        bad("MATCH (a) WHERE count(a) > 1 RETURN a")

    def test_aggregates_rejected_in_unwind(self):
        bad("MATCH (a) UNWIND [count(a)] AS x RETURN x")

    def test_nested_aggregates_rejected(self):
        bad("MATCH (a) RETURN sum(count(a)) AS bad")

    def test_aggregates_rejected_in_pattern_properties(self):
        bad("MATCH (a {v: count(a)}) RETURN a")

    def test_count_star_is_aggregate(self):
        ok("MATCH (a) RETURN count(*) AS c")
        bad("MATCH (a) WHERE count(*) > 0 RETURN a")


class TestUnion:
    def test_both_sides_checked(self):
        bad("RETURN 1 AS x UNION RETURN ghost AS x")
        ok("RETURN 1 AS x UNION RETURN 2 AS x")
