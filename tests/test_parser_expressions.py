"""Unit tests for expression parsing (Figure 5 grammar + pragmatics)."""

import pytest

from repro import parse_expression
from repro.ast import expressions as ex
from repro.exceptions import CypherSyntaxError


class TestLiterals:
    def test_numbers(self):
        assert parse_expression("42") == ex.Literal(42)
        assert parse_expression("1.5") == ex.Literal(1.5)
        assert parse_expression("2e3") == ex.Literal(2000.0)

    def test_strings_booleans_null(self):
        assert parse_expression("'hi'") == ex.Literal("hi")
        assert parse_expression("TRUE") == ex.Literal(True)
        assert parse_expression("false") == ex.Literal(False)
        assert parse_expression("null") == ex.Literal(None)

    def test_list_and_map_literals(self):
        assert parse_expression("[1, 2]") == ex.ListLiteral(
            (ex.Literal(1), ex.Literal(2))
        )
        assert parse_expression("{a: 1}") == ex.MapLiteral(
            (("a", ex.Literal(1)),)
        )

    def test_parameters(self):
        assert parse_expression("$x") == ex.Parameter("x")
        assert parse_expression("$0") == ex.Parameter("0")


class TestPrecedence:
    def test_or_lowest(self):
        tree = parse_expression("a AND b OR c")
        assert isinstance(tree, ex.BinaryLogic) and tree.operator == "OR"
        assert isinstance(tree.left, ex.BinaryLogic)
        assert tree.left.operator == "AND"

    def test_xor_between_or_and_and(self):
        tree = parse_expression("a OR b XOR c")
        assert tree.operator == "OR"
        assert tree.right.operator == "XOR"

    def test_not_binds_tighter_than_and(self):
        tree = parse_expression("NOT a AND b")
        assert tree.operator == "AND"
        assert isinstance(tree.left, ex.Not)

    def test_arithmetic_precedence(self):
        tree = parse_expression("1 + 2 * 3")
        assert tree.operator == "+"
        assert tree.right.operator == "*"

    def test_power_tighter_than_multiplication(self):
        tree = parse_expression("2 * 3 ^ 4")
        assert tree.operator == "*"
        assert tree.right.operator == "^"

    def test_unary_minus(self):
        tree = parse_expression("-a + b")
        assert tree.operator == "+"
        assert isinstance(tree.left, ex.UnaryMinus)

    def test_comparison_chain_is_one_node(self):
        tree = parse_expression("1 < x <= 10")
        assert isinstance(tree, ex.Comparison)
        assert tree.operators == ("<", "<=")
        assert len(tree.operands) == 3

    def test_comparison_lower_than_addition(self):
        tree = parse_expression("a + 1 = b - 2")
        assert isinstance(tree, ex.Comparison)
        assert tree.operators == ("=",)
        assert isinstance(tree.operands[0], ex.Arithmetic)

    def test_parentheses_override(self):
        tree = parse_expression("(1 + 2) * 3")
        assert tree.operator == "*"
        assert tree.left.operator == "+"


class TestPostfix:
    def test_property_access_chain(self):
        tree = parse_expression("a.b.c")
        assert isinstance(tree, ex.PropertyAccess)
        assert tree.key == "c"
        assert isinstance(tree.subject, ex.PropertyAccess)

    def test_indexing_and_slicing(self):
        assert isinstance(parse_expression("xs[0]"), ex.ListIndex)
        sliced = parse_expression("xs[1..2]")
        assert isinstance(sliced, ex.ListSlice)
        open_slice = parse_expression("xs[..2]")
        assert open_slice.start is None
        tail_slice = parse_expression("xs[1..]")
        assert tail_slice.end is None

    def test_label_predicate(self):
        tree = parse_expression("n:Person:Admin")
        assert tree == ex.LabelPredicate(ex.Variable("n"), ("Person", "Admin"))

    def test_string_operators(self):
        tree = parse_expression("a STARTS WITH 'x'")
        assert isinstance(tree, ex.StringPredicate)
        assert tree.operator == "STARTS WITH"
        assert parse_expression("a ENDS WITH b").operator == "ENDS WITH"
        assert parse_expression("a CONTAINS b").operator == "CONTAINS"

    def test_in_and_is_null(self):
        assert isinstance(parse_expression("1 IN [1]"), ex.In)
        assert isinstance(parse_expression("a IS NULL"), ex.IsNull)
        assert isinstance(parse_expression("a IS NOT NULL"), ex.IsNotNull)

    def test_regex(self):
        assert isinstance(parse_expression("a =~ 'x.*'"), ex.RegexMatch)


class TestCallsAndComprehensions:
    def test_function_call(self):
        tree = parse_expression("coalesce(a, 1)")
        assert tree == ex.FunctionCall(
            "coalesce", (ex.Variable("a"), ex.Literal(1))
        )

    def test_function_names_lowercased(self):
        assert parse_expression("LABELS(n)").name == "labels"

    def test_count_star(self):
        assert parse_expression("count(*)") == ex.CountStar()

    def test_count_distinct(self):
        tree = parse_expression("count(DISTINCT x)")
        assert tree.distinct is True

    def test_list_comprehension(self):
        tree = parse_expression("[x IN xs WHERE x > 1 | x * 2]")
        assert isinstance(tree, ex.ListComprehension)
        assert tree.variable == "x"
        assert tree.where is not None
        assert tree.projection is not None

    def test_list_comprehension_without_parts(self):
        tree = parse_expression("[x IN xs]")
        assert isinstance(tree, ex.ListComprehension)
        assert tree.where is None and tree.projection is None

    def test_quantifiers(self):
        tree = parse_expression("all(x IN xs WHERE x > 0)")
        assert isinstance(tree, ex.QuantifiedPredicate)
        assert tree.quantifier == "all"
        assert parse_expression("single(x IN xs WHERE x)").quantifier == "single"

    def test_case_expressions(self):
        searched = parse_expression("CASE WHEN a THEN 1 ELSE 2 END")
        assert isinstance(searched, ex.CaseExpression)
        assert searched.operand is None
        simple = parse_expression("CASE x WHEN 1 THEN 'a' END")
        assert simple.operand == ex.Variable("x")
        assert simple.default is None

    def test_pattern_predicate(self):
        tree = parse_expression("(a)-[:KNOWS]->(b)")
        assert isinstance(tree, ex.PatternPredicate)

    def test_parenthesized_variable_is_not_a_pattern(self):
        assert parse_expression("(a)") == ex.Variable("a")

    def test_subtraction_of_parenthesized_terms(self):
        tree = parse_expression("(a)-(b)")
        assert isinstance(tree, ex.Arithmetic) and tree.operator == "-"

    def test_exists_with_pattern(self):
        tree = parse_expression("exists((a)-[:R]->())")
        assert isinstance(tree, ex.ExistsSubquery)

    def test_exists_with_property(self):
        tree = parse_expression("exists(a.prop)")
        assert isinstance(tree, ex.FunctionCall)
        assert tree.name == "exists"

    def test_pattern_comprehension(self):
        tree = parse_expression("[(a)-[:R]->(b) WHERE b.v > 1 | b.v]")
        assert isinstance(tree, ex.PatternComprehension)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        ["", "1 +", "(1", "[1", "{a: }", "CASE END", "a IS", "1 2", "$"],
    )
    def test_malformed_expressions(self, bad):
        with pytest.raises(CypherSyntaxError):
            parse_expression(bad)
