"""Integration: configurable pattern-matching morphisms (E5; paper §4.2/§8).

The paper motivates edge isomorphism with a one-node/one-loop graph: under
homomorphism, ``(x)-[*0..]->(x)`` would match infinitely often; Cypher
returns exactly two matches (zero traversals and one).
"""

import pytest

from repro import CypherEngine
from repro.exceptions import CypherRuntimeError
from repro.graph.builder import GraphBuilder
from repro.semantics.morphism import (
    EDGE_ISOMORPHISM,
    HOMOMORPHISM,
    NODE_ISOMORPHISM,
    Morphism,
)


class TestPaperSelfLoopExample:
    def test_exactly_two_matches_under_edge_isomorphism(self, self_loop):
        graph, _ = self_loop
        engine = CypherEngine(graph)
        result = engine.run("MATCH (x)-[*0..]->(x) RETURN count(*) AS n")
        assert result.value() == 2

    def test_both_execution_paths_agree(self, self_loop, read_mode):
        graph, _ = self_loop
        engine = CypherEngine(graph)
        result = engine.run(
            "MATCH (x)-[*0..]->(x) RETURN count(*) AS n", mode=read_mode
        )
        assert result.value() == 2

    def test_homomorphism_grows_with_the_cap(self, self_loop):
        graph, _ = self_loop
        # With a cap of k, the loop can be traversed 0..k times.
        for cap in (1, 3, 7):
            engine = CypherEngine(
                graph, morphism=Morphism("homomorphism", max_length=cap)
            )
            result = engine.run("MATCH (x)-[*0..]->(x) RETURN count(*) AS n")
            assert result.value() == cap + 1

    def test_homomorphism_without_cap_is_an_error(self, self_loop):
        graph, _ = self_loop
        engine = CypherEngine(
            graph, morphism=Morphism("homomorphism"), mode="interpreter"
        )
        with pytest.raises(CypherRuntimeError):
            engine.run("MATCH (x)-[*0..]->(x) RETURN count(*) AS n")


class TestModeDifferences:
    @pytest.fixture
    def diamond(self):
        # a -> b -> d and a -> c -> d, plus b -> c
        graph, ids = (
            GraphBuilder()
            .node("a", v=1).node("b", v=2).node("c", v=3).node("d", v=4)
            .rel("a", "R", "b").rel("b", "R", "d")
            .rel("a", "R", "c").rel("c", "R", "d")
            .rel("b", "R", "c")
            .build()
        )
        return graph, ids

    def count(self, graph, morphism, query):
        engine = CypherEngine(graph, morphism=morphism, mode="interpreter")
        return engine.run(query).value()

    def test_node_isomorphism_is_stricter(self, diamond):
        graph, _ = diamond
        query = (
            "MATCH (x {v: 1})-[*1..4]->(y {v: 4}) RETURN count(*) AS n"
        )
        edge_count = self.count(graph, EDGE_ISOMORPHISM, query)
        node_count = self.count(graph, NODE_ISOMORPHISM, query)
        assert node_count <= edge_count
        assert node_count == 3  # a-b-d, a-c-d, a-b-c-d

    def test_homomorphism_is_most_permissive(self, diamond):
        graph, _ = diamond
        query = "MATCH (x {v: 1})-[*1..4]->(y {v: 4}) RETURN count(*) AS n"
        edge_count = self.count(graph, EDGE_ISOMORPHISM, query)
        homo_count = self.count(
            graph, Morphism("homomorphism", max_length=4), query
        )
        assert homo_count >= edge_count

    def test_cycle_revisiting_distinguishes_modes(self):
        # Two parallel edges a->b and one edge b->a: a walk a->b->a->b
        # repeats node a and b but no edge under edge isomorphism.
        graph, ids = (
            GraphBuilder()
            .node("a", start=True).node("b")
            .rel("a", "R", "b").rel("a", "R", "b").rel("b", "R", "a")
            .build()
        )
        query = "MATCH ({start: true})-[*3]->(y) RETURN count(*) AS n"
        edge_count = self.count(graph, EDGE_ISOMORPHISM, query)
        node_count = self.count(graph, NODE_ISOMORPHISM, query)
        assert edge_count == 2   # a->b->a->b via both parallel orders
        assert node_count == 0   # revisits nodes, so no match

    def test_morphism_validation(self):
        with pytest.raises(ValueError):
            Morphism("something-else")

    def test_morphism_flags(self):
        assert EDGE_ISOMORPHISM.forbids_repeated_relationships
        assert not EDGE_ISOMORPHISM.forbids_repeated_nodes
        assert NODE_ISOMORPHISM.forbids_repeated_nodes
        assert not HOMOMORPHISM.forbids_repeated_relationships
