"""Unit tests for the function set F: scalar, string, math, aggregates."""

import math

import pytest

from repro.exceptions import CypherSemanticError, CypherTypeError
from repro.functions import default_registry, make_aggregate
from repro.functions.registry import FunctionContext, FunctionRegistry
from repro.graph.builder import GraphBuilder
from repro.graph.store import MemoryGraph


@pytest.fixture
def call():
    registry = default_registry()
    context = FunctionContext(MemoryGraph())

    def invoke(name, *args):
        return registry.call(name, context, list(args))

    return invoke


class TestRegistry:
    def test_case_insensitive_lookup(self, call):
        assert call("COALESCE", None, 2) == 2
        assert call("toupper", "ab") == "AB"

    def test_unknown_function(self):
        with pytest.raises(CypherSemanticError):
            default_registry().lookup("nope")

    def test_arity_enforced(self, call):
        with pytest.raises(CypherTypeError):
            call("abs", 1, 2)
        with pytest.raises(CypherTypeError):
            call("abs")

    def test_copy_is_independent(self):
        original = FunctionRegistry()
        original.register("f", lambda ctx: 1)
        clone = original.copy()
        clone.register("g", lambda ctx: 2)
        assert "g" not in original


class TestScalar:
    def test_size_variants(self, call):
        assert call("size", [1, 2]) == 2
        assert call("size", "abc") == 3
        assert call("size", {"a": 1}) == 1
        assert call("size", None) is None

    def test_head_last_tail(self, call):
        assert call("head", [1, 2]) == 1
        assert call("last", [1, 2]) == 2
        assert call("tail", [1, 2, 3]) == [2, 3]
        assert call("tail", []) == []

    def test_to_integer(self, call):
        assert call("toInteger", "42") == 42
        assert call("toInteger", 3.9) == 3
        assert call("toInteger", "not a number") is None
        assert call("toInteger", "3.5") == 3

    def test_to_float_and_boolean(self, call):
        assert call("toFloat", "2.5") == 2.5
        assert call("toFloat", 2) == 2.0
        assert call("toBoolean", "TRUE") is True
        assert call("toBoolean", "junk") is None

    def test_to_string(self, call):
        assert call("toString", 42) == "42"
        assert call("toString", 2.5) == "2.5"
        assert call("toString", True) == "true"
        assert call("toString", None) is None


class TestStrings:
    def test_case_functions(self, call):
        assert call("toUpper", "ab") == "AB"
        assert call("toLower", "AB") == "ab"

    def test_trim_family(self, call):
        assert call("trim", "  x  ") == "x"
        assert call("ltrim", "  x") == "x"
        assert call("rtrim", "x  ") == "x"

    def test_replace_split(self, call):
        assert call("replace", "banana", "na", "NA") == "baNANA"
        assert call("split", "a,b,c", ",") == ["a", "b", "c"]
        assert call("split", "abc", "") == ["a", "b", "c"]

    def test_substring_left_right(self, call):
        assert call("substring", "hello", 1) == "ello"
        assert call("substring", "hello", 1, 3) == "ell"
        assert call("left", "hello", 2) == "he"
        assert call("right", "hello", 2) == "lo"
        assert call("right", "hello", 0) == ""

    def test_reverse(self, call):
        assert call("reverse", "abc") == "cba"
        assert call("reverse", [1, 2]) == [2, 1]

    def test_substring_validation(self, call):
        with pytest.raises(CypherTypeError):
            call("substring", "x", -1)


class TestMath:
    def test_rounding_family(self, call):
        assert call("abs", -3) == 3
        assert call("ceil", 1.2) == 2.0
        assert call("floor", 1.8) == 1.0
        assert call("sign", -9) == -1
        assert call("sign", 0) == 0

    def test_round_half_away_from_zero(self, call):
        assert call("round", 0.5) == 1.0
        assert call("round", -0.5) == -1.0
        assert call("round", 1.4) == 1.0

    def test_sqrt_exp_log(self, call):
        assert call("sqrt", 16) == 4.0
        assert math.isnan(call("sqrt", -1))
        assert call("exp", 0) == 1.0
        assert call("log", math.e) == pytest.approx(1.0)
        assert math.isnan(call("log", 0))
        assert call("log10", 100) == pytest.approx(2.0)

    def test_trig(self, call):
        assert call("sin", 0) == 0.0
        assert call("cos", 0) == 1.0
        assert call("atan2", 1, 1) == pytest.approx(math.pi / 4)

    def test_constants(self, call):
        assert call("pi") == math.pi
        assert call("e") == math.e

    def test_null_passthrough(self, call):
        for name in ("abs", "ceil", "sqrt", "sin"):
            assert call(name, None) is None


class TestAggregates:
    def feed(self, name, values, distinct=False):
        aggregate = make_aggregate(name, distinct)
        for value in values:
            aggregate.include(value)
        return aggregate.result()

    def test_count_skips_nulls(self):
        assert self.feed("count", [1, None, 2]) == 2

    def test_count_distinct(self):
        assert self.feed("count", [1, 1, 2.0, 2], distinct=True) == 2

    def test_sum_and_avg(self):
        assert self.feed("sum", [1, 2, 3]) == 6
        assert self.feed("sum", []) == 0
        assert self.feed("avg", [2, 4]) == 3.0
        assert self.feed("avg", []) is None

    def test_min_max(self):
        assert self.feed("min", [3, 1, 2]) == 1
        assert self.feed("max", [3, 1, 2]) == 3
        assert self.feed("min", []) is None

    def test_min_ignores_incomparable(self):
        assert self.feed("min", [3, "a", 1]) in (1, "a", 3)  # total behaviour
        assert self.feed("min", [3, 1]) == 1

    def test_collect(self):
        assert self.feed("collect", [1, None, 2]) == [1, 2]
        assert self.feed("collect", []) == []
        assert self.feed("collect", [1, 1], distinct=True) == [1]

    def test_stdev(self):
        assert self.feed("stdev", [2, 4]) == pytest.approx(math.sqrt(2))
        assert self.feed("stdevp", [2, 4]) == pytest.approx(1.0)
        assert self.feed("stdev", [5]) == 0.0

    def test_percentiles(self):
        cont = make_aggregate("percentilecont")
        for value in (10, 20, 30):
            cont.include_pair(value, 0.5)
        assert cont.result() == 20.0
        disc = make_aggregate("percentiledisc")
        for value in (10, 20, 30, 40):
            disc.include_pair(value, 0.25)
        assert disc.result() == 10.0

    def test_percentile_bounds_checked(self):
        aggregate = make_aggregate("percentilecont")
        with pytest.raises(CypherTypeError):
            aggregate.include_pair(1, 2.0)

    def test_sum_type_error(self):
        with pytest.raises(CypherTypeError):
            self.feed("sum", ["a"])

    def test_unknown_aggregate(self):
        with pytest.raises(CypherSemanticError):
            make_aggregate("frob")

    def test_entity_functions_need_graph(self):
        graph, ids = GraphBuilder().node("a", "L").build()
        registry = default_registry()
        context = FunctionContext(graph)
        assert registry.call("labels", context, [ids["a"]]) == ["L"]
