"""Unit tests for sargable extraction and composite/reachability matching.

:mod:`repro.planner.access` sits under the tier-1 coverage floor: it
decides every index-vs-scan access path, so each rejection branch
(unsafe probes, unwitnessed composite columns, capped reachability
probes) is pinned directly rather than via whole-plan assertions.
"""

import pytest

from repro import parse_query
from repro.ast import patterns as pt
from repro.planner import access
from repro.planner.access import (
    CompositeCandidate,
    ReachabilityCandidate,
    Sargable,
    collect_sargable,
    collect_witnesses,
    match_composite,
    reachability_candidate,
)


def where(text):
    query = "MATCH (n:L) WHERE %s RETURN n" % text
    return parse_query(query).clauses[0].where


def sargables(text, variable="n"):
    return collect_sargable(where(text)).get(variable, [])


class TestSargableDescriptions:
    def test_describe_each_kind(self):
        assert Sargable("n", "k", "eq", value=1).describe() == "n.k = …"
        assert Sargable("n", "k", "in", value=[1]).describe() == "n.k IN …"
        assert Sargable("n", "k", "prefix", value="a").describe() == (
            "n.k STARTS WITH …"
        )

    def test_describe_range_shapes(self):
        low = Sargable("n", "k", "range", low=1, low_inclusive=False)
        assert low.describe() == "… < n.k"
        high = Sargable("n", "k", "range", high=9)
        assert high.describe() == "n.k <= …"
        both = Sargable("n", "k", "range", low=1, high=9,
                        high_inclusive=False)
        assert both.describe() == "… <= n.k AND n.k < …"
        empty = Sargable("n", "k", "range")
        assert empty.describe() == "n.k range"

    def test_probe_expressions(self):
        both = Sargable("n", "k", "range", low=1, high=9)
        assert both.probe_expressions() == (1, 9)
        assert Sargable("n", "k", "eq", value=5).probe_expressions() == (5,)


class TestExtraction:
    def test_flipped_comparisons(self):
        (lower,) = sargables("2 < n.b")
        assert lower.kind == "range"
        assert lower.low is not None and not lower.low_inclusive
        (upper,) = sargables("2 >= n.b")
        assert upper.kind == "range"
        assert upper.high is not None and upper.high_inclusive

    def test_chained_comparison_is_not_sargable(self):
        assert sargables("1 < n.a < 5") == []

    def test_property_free_conjuncts_are_ignored(self):
        assert sargables("1 = 2") == []
        assert sargables("1 IN [1, 2]") == []
        assert sargables("'a' STARTS WITH 'b'") == []

    def test_in_with_parameter_container_has_no_size_hint(self):
        # ``IN $param`` fails the infallible gate at the WHERE level …
        assert collect_sargable(where("n.a IN $values")) == {}
        # … but the shape itself extracts, with an unknown plan-time size.
        extracted = access._extract_one(where("n.a IN $values"))
        assert extracted.kind == "in"
        assert extracted.size_hint is None

    def test_in_list_literal_has_size_hint(self):
        (sargable,) = sargables("n.a IN [1, 2, 3]")
        assert sargable.size_hint == 3

    def test_range_merging_in_both_orders(self):
        for text in ("n.a < 5 AND n.a > 1", "n.a > 1 AND n.a < 5"):
            (merged,) = sargables(text)
            assert merged.kind == "range"
            assert merged.low is not None and merged.high is not None

    def test_extra_bound_stays_residual(self):
        (merged,) = sargables("n.a > 1 AND n.a < 5 AND n.a < 9")
        assert merged.low is not None and merged.high is not None

    def test_mixed_kinds_pass_through_merging(self):
        found = sargables("n.a = 1 AND n.b > 2")
        assert [s.kind for s in found] == ["eq", "range"]


class TestWitnesses:
    def test_sargable_shapes_and_is_not_null_witness(self):
        witnesses = collect_witnesses(
            where("n.a = 1 AND n.b IS NOT NULL AND n.c < 3 AND n:M")
        )
        assert witnesses == {"n": {"a", "b", "c"}}

    def test_gates(self):
        assert collect_witnesses(None) == {}
        # Arithmetic can raise per row: the whole WHERE is rejected.
        assert collect_witnesses(where("n.a = 1 / 0")) == {}
        # ``IS NOT NULL`` over a non-property operand witnesses nothing.
        assert collect_witnesses(where("$p IS NOT NULL")) == {}


def _eq(key, value=1):
    return Sargable("n", key, "eq", value=value)


def _range(key):
    return Sargable("n", key, "range", low=1)


def _prefix(key):
    return Sargable("n", key, "prefix", value="x")


class TestMatchComposite:
    def test_full_equality_probe(self):
        candidate = match_composite(("a", "b"), [_eq("a"), _eq("b")], set())
        assert candidate.consumed == 2
        assert candidate.bound is None
        assert candidate.probe_expressions() == (1, 1)
        assert candidate.describe() == "n.a = … AND n.b = …"

    def test_equality_then_bound(self):
        candidate = match_composite(("a", "b"), [_eq("a"), _range("b")], set())
        assert candidate.consumed == 2
        assert candidate.bound is not None
        assert candidate.describe() == "n.a = … AND … <= n.b"
        assert len(candidate.probe_expressions()) == 2

    def test_leading_prefix_bound_with_witness(self):
        candidate = match_composite(("a", "b"), [_prefix("a")], {"b"})
        assert candidate.equalities == ()
        assert candidate.bound is not None
        assert candidate.consumed == 1

    def test_in_is_not_a_composite_probe(self):
        in_sargable = Sargable("n", "a", "in", value=[1], size_hint=1)
        assert match_composite(("a", "b"), [in_sargable], {"a", "b"}) is None

    def test_unwitnessed_deeper_column_rejects(self):
        assert match_composite(("a", "b"), [_eq("a")], set()) is None

    def test_witnessed_deeper_column_accepts_prefix_probe(self):
        candidate = match_composite(("a", "b"), [_eq("a")], {"b"})
        assert candidate.consumed == 1
        assert candidate.keys == ("a", "b")


class _ReachStats:
    def __init__(self, indexes):
        self.reachability_indexes = indexes

    def reachability_index_types(self):
        return self.reachability_indexes.keys()


class _RelPattern:
    def __init__(self, direction, types=frozenset(("R",))):
        self.direction = direction
        self.resolved_types = types


class TestReachabilityCandidate:
    def test_describe(self):
        assert ReachabilityCandidate(None, True).describe() == (
            "reach(<any>, forward)"
        )
        assert ReachabilityCandidate(("R", "S"), False).describe() == (
            "reach(:R|S, reverse)"
        )

    def test_gates_reject_unusable_patterns(self):
        stats = _ReachStats({("R",): {"condensation_diameter": 3}})
        pattern = _RelPattern(pt.LEFT_TO_RIGHT)
        assert reachability_candidate(stats, pattern, False, None) is None
        undirected = _RelPattern(pt.UNDIRECTED)
        assert reachability_candidate(stats, undirected, True, None) is None
        assert reachability_candidate(
            _ReachStats({}), pattern, True, None
        ) is None
        mismatched = _RelPattern(pt.LEFT_TO_RIGHT, types=frozenset(("T",)))
        assert reachability_candidate(stats, mismatched, True, None) is None

    def test_bounded_patterns_defer_to_the_cap_at_the_diameter(self):
        stats = _ReachStats({("R",): {"condensation_diameter": 3}})
        pattern = _RelPattern(pt.LEFT_TO_RIGHT)
        assert reachability_candidate(stats, pattern, True, 3) is None
        above = reachability_candidate(stats, pattern, True, 4)
        assert above is not None and above.forward
        unbounded = reachability_candidate(stats, pattern, True, None)
        assert unbounded is not None

    def test_unknown_diameter_keeps_the_plain_walk(self):
        stats = _ReachStats({("R",): {}})
        pattern = _RelPattern(pt.RIGHT_TO_LEFT)
        assert reachability_candidate(stats, pattern, True, 5) is None
        candidate = reachability_candidate(stats, pattern, True, None)
        assert candidate is not None and not candidate.forward


class TestInlineSargables:
    def test_probe_safe_entries_extract(self):
        query = parse_query("MATCH (n:L {a: 1, b: $p, c: 1 + 2}) RETURN n")
        node_pattern = query.clauses[0].pattern[0].elements[0]
        found = access.inline_sargables(node_pattern, "n")
        assert [s.key for s in found] == ["a", "b"]
        assert all(s.kind == "eq" for s in found)
