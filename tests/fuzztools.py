"""Reusable fuzz machinery: fixture graph, query strategies, store snapshots.

Extracted from ``test_fuzz_queries.py`` so every differential harness —
planner vs interpreter (``test_fuzz_queries``), row vs batch vs
interpreter (``test_batched_differential``) — drives the *same* corpus:
a new execution mode earns trust against the full generator set, not a
hand-picked subset.

The module exposes:

* :func:`fixture_graph` / :data:`GRAPH` — the structurally rich fixed
  graph (three labels, two relationship types, a cycle, a self-loop,
  parallel paths) every read strategy runs against;
* read-query strategies (``match_queries``, ``two_hop_queries``,
  ``pipeline_queries``, ``two_clause_queries``, ``named_path_queries``,
  ``comprehension_queries``) and update strategies
  (``create_update_queries``, ``set_remove_queries``, ``delete_queries``,
  ``merge_queries``) — update queries pin their driving-row order so
  mutation sequences are observable and final stores must be
  byte-identical;
* :func:`graph_state` — the canonical, id-inclusive store snapshot used
  to compare final graphs across execution paths;
* :data:`READ_STRATEGIES` / :data:`UPDATE_STRATEGIES` — name → strategy
  registries, so a harness can enumerate the whole corpus;
* the index-accelerated access paths (PR 5): ``sargable_queries``
  generates equality/range/``IN``/prefix predicates over indexed *and*
  unindexed properties, :data:`INDEXED_GRAPH` is the fixture graph with
  property indexes declared, and :func:`assert_indexes_consistent`
  checks an incrementally-maintained index against a from-scratch
  rebuild — the differential harness runs the same corpus with and
  without indexes present, so pushdown can never change results.
* the reachability corpus (PR 8): :func:`shaped_graph_specs` generates
  forest / DAG / cyclic graph specs, :func:`build_shaped_graph`
  materialises one with or without reachability indexes,
  :data:`REACHABILITY_GRAPH` is the fixture graph with overlapping
  reachability indexes declared, and
  :func:`assert_reachability_consistent` pins incremental condensation
  maintenance against a from-scratch rebuild;
* the transactional-session corpus (PR 6): ``transaction_scripts``
  generates begin → mixed updates → commit/rollback step lists over the
  shared update strategies, :func:`apply_script` replays one through a
  session, and :func:`committed_statements` flattens it to the
  auto-commit baseline its final store must equal.
"""

from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.semantics.morphism import (
    EDGE_ISOMORPHISM,
    HOMOMORPHISM,
    NODE_ISOMORPHISM,
)
from repro.values.ordering import canonical_key

MORPHISMS = {
    "edge": EDGE_ISOMORPHISM,
    "node": NODE_ISOMORPHISM,
    "homomorphism": HOMOMORPHISM,
}


def fixture_graph():
    """The fixed fuzz graph: 9 nodes over 3 labels, 12 mixed-type edges."""
    builder = GraphBuilder()
    labels = ["A", "B", "C"]
    for index in range(9):
        builder.node(
            "n%d" % index,
            labels[index % 3],
            v=index % 4,
            name="node-%d" % index,
        )
    edges = [
        (0, 1, "R"), (1, 2, "R"), (2, 3, "R"), (3, 4, "S"), (4, 5, "S"),
        (5, 0, "R"), (0, 2, "S"), (2, 4, "R"), (6, 7, "R"), (7, 6, "S"),
        (8, 8, "R"),  # self-loop
        (1, 4, "S"),
    ]
    for position, (source, target, rel_type) in enumerate(edges):
        builder.rel("n%d" % source, rel_type, "n%d" % target, w=position % 3)
    graph, _ = builder.build()
    return graph


GRAPH = fixture_graph()


def indexed_fixture_graph():
    """The fixture graph with property indexes on the fuzzed keys.

    Declared *before* reads fuzz over it, so the planner's cost model
    picks index entries wherever they win; the graph contents are
    byte-identical to :func:`fixture_graph`'s, which is what makes the
    with/without-index differential meaningful.
    """
    graph = fixture_graph()
    graph.create_index("A", "v")
    graph.create_index("B", "v")
    graph.create_index("C", "v")
    graph.create_index("A", "name")
    graph.create_index("B", "name")
    return graph


INDEXED_GRAPH = indexed_fixture_graph()


def composite_indexed_fixture_graph():
    """The fixture graph with composite indexes on the fuzzed keys.

    ``(v, name)`` on two labels and the reversed ``(name, v)`` on the
    third, plus one single-key index, so the planner's
    longest-usable-prefix matching, order-provided rewrites and
    single-vs-composite cost tie-breaks all fire against the same
    corpus.  Contents stay byte-identical to :func:`fixture_graph`'s.
    """
    graph = fixture_graph()
    graph.create_index("A", "v", "name")
    graph.create_index("B", "v", "name")
    graph.create_index("C", "name", "v")
    graph.create_index("A", "name")
    return graph


COMPOSITE_INDEXED_GRAPH = composite_indexed_fixture_graph()


def assert_indexes_consistent(graph):
    """Every maintained index must equal a from-scratch rebuild.

    The rebuild comes from ``graph.copy()``, whose indexes are
    reconstructed from the copied data; any divergence means an
    incremental maintenance hook missed a mutation.
    """
    rebuilt = graph.copy()
    for label, key in graph.indexes():
        assert graph.index_snapshot(label, key) == rebuilt.index_snapshot(
            label, key
        ), "index :%s(%s) diverged from a rebuild" % (label, key)

def reachability_fixture_graph():
    """The fixture graph with reachability indexes declared (PR 8).

    Three overlapping type sets — the all-types index, the exact ``:R``
    index and the ``:R|S`` superset — so the planner's covering-set
    preference (exact > smallest superset > all-types) is exercised by
    the same corpus.  The graph contents stay byte-identical to
    :func:`fixture_graph`'s, which is what makes the with/without-index
    differential meaningful.
    """
    graph = fixture_graph()
    graph.create_reachability_index()
    graph.create_reachability_index(["R"])
    graph.create_reachability_index(["R", "S"])
    return graph


REACHABILITY_GRAPH = reachability_fixture_graph()


def assert_reachability_consistent(graph):
    """Every maintained reachability index must equal a rebuild.

    ``graph.copy()`` re-declares its reachability indexes from the
    copied relationships (a from-scratch Tarjan + recount), so any
    divergence in the canonical snapshots means an incremental
    condensation update missed or miscounted a mutation.
    """
    rebuilt = graph.copy()
    for types in graph.reachability_indexes():
        assert graph.reachability_snapshot(types) == (
            rebuilt.reachability_snapshot(types)
        ), "reachability index %r diverged from a rebuild" % (types,)


@st.composite
def shaped_graph_specs(draw):
    """Random graph specs in three shapes: forest, DAG, cyclic.

    Returns ``(shape, node_count, edges)`` with ``edges`` a list of
    ``(source, target, rel_type)`` triples over node indices.  Forests
    parent each node to a strictly earlier one (so components are
    trees), DAGs only add forward edges, and cyclic graphs draw
    unrestricted pairs including self-loops — the shapes the interval
    labels, the SCC condensation and its fallbacks each specialise for.
    """
    shape = draw(st.sampled_from(["forest", "dag", "cyclic"]))
    count = draw(st.integers(min_value=2, max_value=9))
    rel_type = st.sampled_from(["R", "S"])
    edges = []
    if shape == "forest":
        for node in range(1, count):
            if draw(st.booleans()):
                parent = draw(st.integers(min_value=0, max_value=node - 1))
                edges.append((parent, node, draw(rel_type)))
    elif shape == "dag":
        for _ in range(draw(st.integers(min_value=0, max_value=2 * count))):
            source = draw(st.integers(min_value=0, max_value=count - 2))
            target = draw(st.integers(min_value=source + 1,
                                      max_value=count - 1))
            edges.append((source, target, draw(rel_type)))
    else:
        for _ in range(draw(st.integers(min_value=1, max_value=2 * count))):
            source = draw(st.integers(min_value=0, max_value=count - 1))
            target = draw(st.integers(min_value=0, max_value=count - 1))
            edges.append((source, target, draw(rel_type)))
    return shape, count, edges


def build_shaped_graph(count, edges, reachability=False):
    """Materialise a :func:`shaped_graph_specs` spec as a store.

    With ``reachability=True`` the all-types and ``:R`` indexes are
    declared after the build, leaving the data byte-identical to the
    plain variant.
    """
    builder = GraphBuilder()
    for node in range(count):
        builder.node("n%d" % node, "N", v=node % 3, name="node-%d" % node)
    for source, target, rel_type in edges:
        builder.rel("n%d" % source, rel_type, "n%d" % target)
    graph, _ = builder.build()
    if reachability:
        graph.create_reachability_index()
        graph.create_reachability_index(["R"])
    return graph


#: Var-length templates over two endpoint names: probe-eligible shapes
#: (directed, no upper bound, typed/untyped, both directions, lower
#: bounds, named paths) and deliberate decliners (undirected, bounded)
#: in one pool, so the differential pins the gate from both sides.
REACHABILITY_QUERY_TEMPLATES = [
    "MATCH (a {name: %(a)r}), (b {name: %(b)r}) "
    "MATCH (a)-[r:R*]->(b) RETURN count(*) AS c",
    "MATCH (a {name: %(a)r}), (b {name: %(b)r}) "
    "MATCH (a)-[r*]->(b) RETURN size(r) AS n ORDER BY n",
    "MATCH (a {name: %(a)r}), (b {name: %(b)r}) "
    "MATCH (a)<-[r:R|S*]-(b) RETURN count(*) AS c",
    "MATCH (a {name: %(a)r}), (b {name: %(b)r}) "
    "MATCH (a)-[r:R*2..]->(b) RETURN size(r) AS n ORDER BY n",
    "MATCH (a {name: %(a)r}), (b {name: %(b)r}) "
    "MATCH p = (a)-[:R|S*]->(b) RETURN length(p) AS len ORDER BY len",
    "MATCH (a {name: %(a)r}), (b {name: %(b)r}) "
    "MATCH (a)-[r:S*]->(b) RETURN count(*) AS c",
    "MATCH (a {name: %(a)r}), (b {name: %(b)r}) "
    "MATCH (a)-[r:R*]-(b) RETURN count(*) AS c",
    "MATCH (a {name: %(a)r}), (b {name: %(b)r}) "
    "MATCH (a)-[r:R*1..3]->(b) RETURN size(r) AS n ORDER BY n",
    "MATCH (a {name: %(a)r}) MATCH (a)-[r:R*]->(b {name: %(b)r}) "
    "RETURN count(*) AS c",
    # Correlated pattern comprehensions: the native enumerator must
    # preserve the matcher's emission order (the lists are compared
    # element-wise), with and without the index pruning its walks.
    "MATCH (a {name: %(a)r}), (b {name: %(b)r}) "
    "RETURN size([(a)-[:R*]->(b) | 1]) AS n",
    "MATCH (a {name: %(a)r}), (b {name: %(b)r}) "
    "RETURN [p = (a)-[*]->(b) | length(p)] AS lens",
    "MATCH (a {name: %(a)r}), (b {name: %(b)r}) "
    "RETURN [(a)<-[r:R|S*]-(b) | size(r)] AS sizes",
]


@st.composite
def reachability_cases(draw):
    """A shaped graph spec plus one var-length query over it."""
    shape, count, edges = draw(shaped_graph_specs())
    template = draw(st.sampled_from(REACHABILITY_QUERY_TEMPLATES))
    source = draw(st.integers(min_value=0, max_value=count - 1))
    target = draw(st.integers(min_value=0, max_value=count - 1))
    query = template % {
        "a": "node-%d" % source,
        "b": "node-%d" % target,
    }
    return shape, count, edges, query


label_part = st.sampled_from(["", ":A", ":B", ":C"])
type_part = st.sampled_from(["", ":R", ":S", ":R|S"])
direction = st.sampled_from([("-", "->"), ("<-", "-"), ("-", "-")])
length_part = st.sampled_from(["", "*1..2", "*0..1", "*2"])


@st.composite
def match_queries(draw):
    left, right = draw(direction)
    rel_type = draw(type_part)
    length = draw(length_part)
    rel_body = rel_type + length
    if rel_body:
        rel = "%s[%s]%s" % (left, rel_body, right)
    else:
        rel = {("-", "->"): "-->", ("<-", "-"): "<--", ("-", "-"): "--"}[
            (left, right)
        ]
    pattern = "(a%s)%s(b%s)" % (draw(label_part), rel, draw(label_part))

    where = draw(
        st.sampled_from(
            [
                "",
                " WHERE a.v > 1",
                " WHERE a.v = b.v",
                " WHERE a.v < 2 OR b.v >= 2",
                " WHERE NOT a.v = 0",
                " WHERE a.name CONTAINS '1'",
                " WHERE a.v IN [0, 2]",
                " WHERE a.v >= 1 AND a.v < 3",
                " WHERE a.name STARTS WITH 'node-'",
                " WHERE a.v = 2 AND b.v IN [1, 2, 3]",
            ]
        )
    )
    projection = draw(
        st.sampled_from(
            [
                "RETURN a, b",
                "RETURN a.v AS av, b.v AS bv",
                "RETURN DISTINCT a.v AS av",
                "RETURN count(*) AS n",
                "RETURN a.v AS g, count(b) AS c",
                "RETURN a.v + b.v AS s ORDER BY s",
                "RETURN a.v AS av ORDER BY av DESC LIMIT 3",
                # collect() is omitted without ORDER BY: its list order is
                # implementation-defined and the two paths may enumerate
                # chains from opposite ends
                "RETURN count(b) AS c, sum(b.v) AS s",
            ]
        )
    )
    return "MATCH %s%s %s" % (pattern, where, projection)


@st.composite
def two_hop_queries(draw):
    """Three-node chains, optionally cyclic, with inline property maps."""
    first_rel = draw(st.sampled_from(["-[:R]->", "<-[:R]-", "-[:S]-", "-->"]))
    second_rel = draw(st.sampled_from(["-[:R]->", "<-[:S]-", "-[:R|S]-"]))
    middle = draw(st.sampled_from(["()", "(b)", "(b:B)", "(b {v: 1})"]))
    tail = draw(st.sampled_from(["(c)", "(c:A)", "(a)"]))  # (a) closes a cycle
    where = draw(st.sampled_from(["", " WHERE a.v >= 1", " WHERE a.v <> 2"]))
    projection = draw(
        st.sampled_from(
            [
                "RETURN count(*) AS n",
                "RETURN a.v AS av ORDER BY av LIMIT 5",
                "RETURN DISTINCT a.v AS av ORDER BY av",
                "RETURN a.v AS g, count(*) AS c",
            ]
        )
    )
    return "MATCH (a)%s%s%s%s%s %s" % (
        first_rel, middle, second_rel, tail, where, projection
    )


@st.composite
def pipeline_queries(draw):
    """MATCH → WITH (aggregate or restriction) → RETURN compositions."""
    pattern = "(a%s)-[%s]->(b)" % (
        draw(label_part), draw(st.sampled_from([":R", ":S", ":R|S", ""]))
    )
    stage = draw(
        st.sampled_from(
            [
                "WITH a.v AS g, count(b) AS c WHERE c > 0 "
                "RETURN g, c ORDER BY g",
                "WITH a, b WHERE a.v >= b.v RETURN a.v AS x, b.v AS y "
                "ORDER BY x, y SKIP 1",
                "WITH a.v + b.v AS s RETURN DISTINCT s ORDER BY s",
                "WITH collect(b.v) AS vs RETURN size(vs) AS n",
                "WITH a, max(b.v) AS m RETURN a.name AS name, m "
                "ORDER BY name LIMIT 4",
            ]
        )
    )
    # An UNWIND prefix doubles row multiplicities, which both paths must
    # agree on through the aggregation (u itself dies at the WITH).
    unwind = draw(st.sampled_from(["", "UNWIND [1, 2] AS u "]))
    return "%sMATCH %s %s" % (unwind, pattern, stage)


@st.composite
def two_clause_queries(draw):
    first = draw(match_queries())
    # chain a second hop through OPTIONAL MATCH on the first variable
    head, _, projection = first.partition(" RETURN ")
    second_rel = draw(st.sampled_from(["-[:R]->", "<-[:S]-", "-[:R|S]-"]))
    return (
        head
        + " OPTIONAL MATCH (a)%s(c) RETURN a, c" % second_rel
    )


@st.composite
def named_path_queries(draw):
    """Named paths over rigid and variable-length chains."""
    left, right = draw(direction)
    rel_type = draw(type_part)
    length = draw(st.sampled_from(["", "*1..2", "*0..1", "*2", "*1..3"]))
    rel_body = rel_type + length
    if rel_body:
        rel = "%s[%s]%s" % (left, rel_body, right)
    else:
        rel = {("-", "->"): "-->", ("<-", "-"): "<--", ("-", "-"): "--"}[
            (left, right)
        ]
    pattern = "p = (a%s)%s(b%s)" % (draw(label_part), rel, draw(label_part))
    where = draw(
        st.sampled_from(
            [
                "",
                " WHERE length(p) >= 1",
                " WHERE a.v > 1",
                " WHERE all(x IN nodes(p) WHERE x.v >= 0)",
            ]
        )
    )
    projection = draw(
        st.sampled_from(
            [
                "RETURN p",
                "RETURN length(p) AS len",
                "RETURN [x IN nodes(p) | x.v] AS vs",
                "RETURN size(relationships(p)) AS m, a.v AS av",
                "RETURN length(p) AS len, count(*) AS c",
                "RETURN DISTINCT length(p) AS len ORDER BY len",
            ]
        )
    )
    return "MATCH %s%s %s" % (pattern, where, projection)


@st.composite
def comprehension_queries(draw):
    """Quantifiers, list/pattern comprehensions and reduce()."""
    pattern = "(a%s)-[:R|S]->(b%s)" % (draw(label_part), draw(label_part))
    where = draw(
        st.sampled_from(
            [
                "",
                " WHERE all(x IN [a.v, b.v] WHERE x >= 0)",
                " WHERE any(x IN [a.v, b.v] WHERE x > 2)",
                " WHERE none(x IN [a.v] WHERE x > 3)",
                " WHERE single(x IN [a.v, b.v] WHERE x = 1)",
                " WHERE size([(a)-->(c) | c]) > 0",
                " WHERE exists((a)-[:S]->(c) WHERE c.v > b.v)",
            ]
        )
    )
    projection = draw(
        st.sampled_from(
            [
                "RETURN [x IN [1, 2, 3] WHERE x > a.v | x + b.v] AS xs",
                "RETURN reduce(s = 0, x IN [a.v, b.v, 1] | s + x) AS total",
                "RETURN [(b)-[r]->(c) | c.v] AS fanout, a.v AS av",
                "RETURN size([x IN [a.v, b.v] WHERE x > 1]) AS n, count(*) AS c",
                "RETURN reduce(s = a.v, x IN [1, 2] | s * x) AS product "
                "ORDER BY product",
            ]
        )
    )
    return "MATCH %s%s %s" % (pattern, where, projection)


@st.composite
def sargable_queries(draw):
    """Index-shaped predicates: equality, range, ``IN``, prefix.

    Everything here is sargable *in form*; whether an index actually
    serves it depends on the graph the harness runs it against
    (:data:`GRAPH` has none, :data:`INDEXED_GRAPH` indexes v and name),
    and on the cost model — which is exactly the degree of freedom the
    with/without-index differential pins down.  Probes over missing
    properties (``a.ghost``), cross-variable probes (index nested-loop
    joins), and predicates mixing sargable with residual conjuncts are
    all in the pool.
    """
    label = draw(st.sampled_from(["A", "B", "C"]))
    shape = draw(st.sampled_from(["single", "join", "expand"]))
    predicate = draw(
        st.sampled_from(
            [
                "a.v = 1",
                "a.v = 99",
                "a.v = null",
                "a.ghost = 1",
                "a.v > 1",
                "a.v >= 1 AND a.v < 3",
                "a.v > 0 AND a.v <= 2 AND a.v <> 1",
                "a.v < 'x'",
                "a.name >= 'node-3'",
                "a.v IN [0, 3]",
                "a.v IN [2, 2, null]",
                "a.v IN []",
                "a.name STARTS WITH 'node'",
                "a.name STARTS WITH 'node-1'",
                "a.v = 1 OR a.v = 3",
                "a.v = 2 AND a.name ENDS WITH '5'",
                "NOT a.v = 1 AND a.v <= 2",
            ]
        )
    )
    projection = draw(
        st.sampled_from(
            [
                "RETURN count(*) AS c",
                "RETURN a.v AS v ORDER BY v",
                "RETURN a.name AS n ORDER BY n LIMIT 4",
                "RETURN DISTINCT a.v AS v ORDER BY v",
            ]
        )
    )
    if shape == "single":
        return "MATCH (a:%s) WHERE %s %s" % (label, predicate, projection)
    if shape == "join":
        # The second MATCH probes with the first one's binding in scope:
        # eligible for an index nested-loop join on b.
        other = draw(st.sampled_from(["A", "B"]))
        comparison = draw(
            st.sampled_from(["b.v = a.v", "b.v > a.v", "b.name = a.name"])
        )
        return (
            "MATCH (a:%s) WHERE %s MATCH (b:%s) WHERE %s %s"
            % (label, predicate, other, comparison, projection)
        )
    rel = draw(st.sampled_from(["-[:R]->", "<-[:S]-", "-[:R|S]-"]))
    return "MATCH (a:%s)%s(b) WHERE %s %s" % (label, rel, predicate, projection)


@st.composite
def indexed_update_queries(draw):
    """Updates whose maintenance the indexed differential must survive.

    Drawn from the shared update strategies plus a few index-hostile
    extras (value overwrites to an equal value, type-changing SETs,
    label flips on indexed labels).
    """
    extra = st.sampled_from(
        [
            "MATCH (a:A) WITH a ORDER BY a.name SET a.v = a.v",
            "MATCH (a:A) WITH a ORDER BY a.name SET a.v = 'now-a-string'",
            "MATCH (a:B) WITH a ORDER BY a.name SET a.v = [a.v]",
            "MATCH (a:C) WITH a ORDER BY a.name SET a:A",
            "MATCH (a:A) WHERE a.v = 1 REMOVE a:A",
            "UNWIND [0, 1] AS v MERGE (n:A {v: v}) ON MATCH SET n.hit = 1",
            "MATCH (a:A) WHERE a.v IN [0, 1] DETACH DELETE a",
        ]
    )
    source = draw(
        st.sampled_from(
            ["create", "set_remove", "delete", "merge", "extra"]
        )
    )
    if source == "extra":
        return draw(extra)
    return draw(UPDATE_STRATEGIES[source]())


def graph_state(graph):
    """Canonical, id-inclusive snapshot used to compare final stores."""
    nodes = sorted(
        (
            node.value,
            tuple(sorted(graph.labels(node))),
            canonical_key(graph.properties(node)),
        )
        for node in graph.nodes()
    )
    rels = sorted(
        (
            rel.value,
            graph.src(rel).value,
            graph.tgt(rel).value,
            graph.rel_type(rel),
            canonical_key(graph.properties(rel)),
        )
        for rel in graph.relationships()
    )
    return nodes, rels


#: Driving prefixes with a pinned row order (ids must allocate alike).
ordered_node_driver = st.sampled_from(
    [
        "MATCH (a:A) WITH a ORDER BY a.name ",
        "MATCH (a:B) WITH a ORDER BY a.name ",
        "MATCH (a) WITH a ORDER BY a.name ",
        "MATCH (a:B)-[:R|S]->(x) WITH a ORDER BY a.name, x.name ",
    ]
)


@st.composite
def create_update_queries(draw):
    """CREATE driven by UNWIND or an ordered MATCH."""
    shape = draw(st.sampled_from(["unwind", "node", "pair"]))
    if shape == "unwind":
        driver = "UNWIND [0, 1, 2] AS i "
        body = draw(
            st.sampled_from(
                [
                    "CREATE (:N {v: i})",
                    "CREATE (x:N {v: i})-[:W {k: i}]->(y:M)",
                    "CREATE (x:N)-[:W]->(y:M {v: i * 2})",
                    "CREATE p = (x:N {v: i})-[:W]->(:M), (z:Lone)",
                    "CREATE (x:N {v: i}) CREATE (x)-[:W]->(:M)",
                ]
            )
        )
        suffix = draw(
            st.sampled_from(["", " RETURN count(*) AS c", " RETURN i"])
        )
    elif shape == "node":
        driver = draw(ordered_node_driver)
        body = draw(
            st.sampled_from(
                [
                    "CREATE (a)-[:W {src: a.v}]->(:New {v: a.v})",
                    "CREATE (:Twin {of: a.name})",
                    "CREATE (a)-[:W]->(m:Mid)-[:W2]->(n:End {v: a.v + 1})",
                    "CREATE q = (a)<-[:In {w: 0}]-(:Src)",
                ]
            )
        )
        suffix = draw(st.sampled_from(["", " RETURN count(*) AS c"]))
    else:
        driver = (
            "MATCH (a:A), (b:B) WITH a, b ORDER BY a.name, b.name "
        )
        body = draw(
            st.sampled_from(
                [
                    "CREATE (a)-[:Link]->(b)",
                    "CREATE (a)<-[:Link {m: a.v + b.v}]-(b)",
                    "CREATE (a)-[:Via]->(:Hop {h: 1})<-[:Via2]-(b)",
                ]
            )
        )
        suffix = draw(st.sampled_from(["", " RETURN count(*) AS c"]))
    return driver + body + suffix


@st.composite
def set_remove_queries(draw):
    """SET / REMOVE items over an ordered driving table."""
    target = draw(st.sampled_from(["node", "rel"]))
    if target == "rel":
        driver = (
            "MATCH (x)-[r:R]->(y) WITH x, r, y ORDER BY x.name, y.name "
        )
        body = draw(
            st.sampled_from(
                [
                    "SET r.w = r.w + 10",
                    "SET r.w = null",
                    "SET r += {stamp: x.v}",
                    "REMOVE r.w",
                    "SET r.w = x.v + y.v, r.seen = true",
                ]
            )
        )
    else:
        driver = draw(ordered_node_driver)
        body = draw(
            st.sampled_from(
                [
                    "SET a.w = a.v * 2",
                    "SET a.v = null",
                    "SET a += {z: 1, v: null}",
                    "SET a = {only: a.name}",
                    "SET a:Extra:More",
                    "SET a.u = 1, a.w = a.v, a:Tagged",
                    "REMOVE a.v",
                    "REMOVE a:A",
                    "REMOVE a.v, a:B",
                ]
            )
        )
    suffix = draw(
        st.sampled_from(["", " RETURN count(*) AS c"])
    )
    return driver + body + suffix


@st.composite
def delete_queries(draw):
    """DELETE / DETACH DELETE of nodes, rels, paths and lists."""
    return draw(
        st.sampled_from(
            [
                "MATCH (a:C) DETACH DELETE a",
                "MATCH ()-[r:S]->() DELETE r",
                "MATCH (a)-[r:R]->() DELETE r RETURN count(*) AS c",
                "MATCH (a:B) OPTIONAL MATCH (a)-[r:S]->() "
                "DETACH DELETE a, r",
                "MATCH p = (a:A)-[:R]->(b) DETACH DELETE p",
                "MATCH (a:A) OPTIONAL MATCH (a)-[r]-() DELETE r, a",
                "MATCH (a:C) DETACH DELETE a WITH count(*) AS c "
                "MATCH (n) RETURN c, count(n) AS left",
            ]
        )
    )


@st.composite
def merge_queries(draw):
    """MERGE upserts, with and without ON CREATE / ON MATCH."""
    shape = draw(st.sampled_from(["node", "rel", "free"]))
    if shape == "node":
        driver = "UNWIND [0, 1, 2, 3, 4] AS v "
        pattern = draw(
            st.sampled_from(
                ["MERGE (n:A {v: v})", "MERGE (n:New {v: v})"]
            )
        )
        actions = draw(
            st.sampled_from(
                [
                    "",
                    " ON CREATE SET n.created = 1",
                    " ON MATCH SET n.matched = v",
                    " ON CREATE SET n.created = v ON MATCH SET n.seen = true",
                ]
            )
        )
        suffix = draw(
            st.sampled_from(["", " RETURN count(*) AS c"])
        )
        return driver + pattern + actions + suffix
    if shape == "rel":
        driver = (
            "MATCH (a:A), (b:B) WITH a, b ORDER BY a.name, b.name "
        )
        pattern = draw(
            st.sampled_from(
                [
                    "MERGE (a)-[r:R]->(b)",
                    "MERGE (a)-[r:S]-(b)",
                    "MERGE (a)-[r:Up {k: 1}]->(b)",
                ]
            )
        )
        actions = draw(
            st.sampled_from(["", " ON CREATE SET r.fresh = 1"])
        )
        return driver + pattern + actions + " RETURN count(*) AS c"
    pattern = draw(
        st.sampled_from(
            [
                "MERGE (x {v: 1})",
                "MERGE (x:C {v: 2})",
                "MERGE (x:Ghost {v: 9})",
            ]
        )
    )
    return pattern + " RETURN count(*) AS c"


@st.composite
def transaction_scripts(draw):
    """Multi-statement session scripts: begin → updates → commit/rollback.

    A script is a list of steps — ``("begin",)``, ``("run", statement)``,
    ``("commit",)``, ``("rollback",)`` — mixing explicit transactions
    (one to three statements each, committed or rolled back) with
    auto-committed statements between them.  Statements come from the
    shared update strategies, so the transactional corpus inherits every
    mutation shape the single-statement differential already covers.
    """
    update = st.one_of([factory() for factory in UPDATE_STRATEGIES.values()])
    steps = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        if draw(st.booleans()):
            steps.append(("begin",))
            for _ in range(draw(st.integers(min_value=1, max_value=3))):
                steps.append(("run", draw(update)))
            steps.append((draw(st.sampled_from(["commit", "rollback"])),))
        else:
            steps.append(("run", draw(update)))
    return steps


def committed_statements(script):
    """The statements a script durably applies, in order.

    Statements of a rolled-back transaction vanish; auto-committed and
    committed-transaction statements survive.  Replaying this list with
    plain auto-commit must produce the same final store as the script —
    the semantic baseline the session differential checks against.
    """
    durable = []
    block = None
    for step in script:
        if step[0] == "begin":
            block = []
        elif step[0] == "run":
            (durable if block is None else block).append(step[1])
        elif step[0] == "commit":
            durable.extend(block)
            block = None
        elif step[0] == "rollback":
            block = None
    return durable


def apply_script(engine, script, mode=None):
    """Replay a transaction script through one engine's session API.

    Statement errors don't abort the script: a failing statement keeps
    its partially applied changes (the engine's documented
    partial-failure semantics) and the transaction carries on to its
    commit or rollback — exactly what :func:`committed_statements`'s
    auto-commit baseline reproduces by also continuing past errors.
    """
    from repro.exceptions import CypherError

    with engine.session() as session:
        for step in script:
            if step[0] == "begin":
                session.begin()
            elif step[0] == "run":
                try:
                    session.run(step[1], mode=mode)
                except CypherError:
                    pass
            elif step[0] == "commit":
                session.commit()
            elif step[0] == "rollback":
                session.rollback()


#: name -> strategy factory, so harnesses can sweep the whole corpus.
READ_STRATEGIES = {
    "match": match_queries,
    "two_hop": two_hop_queries,
    "pipeline": pipeline_queries,
    "two_clause": two_clause_queries,
    "named_path": named_path_queries,
    "comprehension": comprehension_queries,
    "sargable": sargable_queries,
}

UPDATE_STRATEGIES = {
    "create": create_update_queries,
    "set_remove": set_remove_queries,
    "delete": delete_queries,
    "merge": merge_queries,
}
