"""Differential harness with reachability indexes enabled.

Same contract as the property-index harness: declaring a reachability
index may change *how* var-length rows are found (interval-labeled
probes with residual verification instead of blind DFS), never *which*
rows.  Every generated case runs six ways — interpreter / row / batch,
each over a plain graph and over an identically-populated twin with
reachability indexes declared — and all six must agree as bags.
Updating queries run on indexed clones through all three executors and
must leave byte-identical stores *and* condensations that match a
from-scratch rebuild (maintenance is only worth having if nobody can
tell it from recomputation).
"""

from hypothesis import given, settings

from repro import CypherEngine
from repro.planner import logical as lg
from repro.planner.batch import plan_supports_batch

from fuzztools import (
    GRAPH,
    REACHABILITY_GRAPH,
    assert_reachability_consistent,
    build_shaped_graph,
    graph_state,
    indexed_update_queries,
    match_queries,
    named_path_queries,
    reachability_cases,
    reachability_fixture_graph,
)


def _plan_operators(plan):
    stack = [plan]
    while stack:
        op = stack.pop()
        yield op
        stack.extend(op._children())


def _assert_read_agreement(query, graph):
    engine = CypherEngine(graph)
    interpreted = engine.run(query, mode="interpreter")
    row = engine.run(query, mode="row")
    batch = engine.run(query, mode="batch")
    assert row.executed_by == "planner", query
    assert row.execution_mode == "row", query
    assert batch.executed_by == "planner", query
    if plan_supports_batch(batch.plan):
        assert batch.execution_mode == "batch", query
    assert interpreted.table.same_bag(row.table), query
    assert interpreted.table.same_bag(batch.table), query
    return interpreted


class TestReachabilityReads:
    """Same bags with and without reachability indexes, all executors."""

    @settings(max_examples=100, deadline=None)
    @given(case=reachability_cases())
    def test_shaped_graphs_with_and_without_index(self, case):
        shape, count, edges, query = case
        plain = _assert_read_agreement(
            query, build_shaped_graph(count, edges)
        )
        indexed = _assert_read_agreement(
            query, build_shaped_graph(count, edges, reachability=True)
        )
        assert plain.table.same_bag(indexed.table), (
            "declaring a reachability index changed the results of %r "
            "on a %s graph" % (query, shape)
        )

    @settings(max_examples=50, deadline=None)
    @given(query=match_queries())
    def test_general_match_corpus_on_reachability_graph(self, query):
        plain = _assert_read_agreement(query, GRAPH)
        indexed = _assert_read_agreement(query, REACHABILITY_GRAPH)
        assert plain.table.same_bag(indexed.table), query

    @settings(max_examples=40, deadline=None)
    @given(query=named_path_queries())
    def test_named_path_corpus_on_reachability_graph(self, query):
        plain = _assert_read_agreement(query, GRAPH)
        indexed = _assert_read_agreement(query, REACHABILITY_GRAPH)
        assert plain.table.same_bag(indexed.table), query


class TestReachabilityUpdates:
    """Maintenance must be indistinguishable from a rebuild."""

    @settings(max_examples=80, deadline=None)
    @given(query=indexed_update_queries())
    def test_update_differential_with_reachability_indexes(self, query):
        clones = {mode: REACHABILITY_GRAPH.copy() for mode in
                  ("interpreter", "row", "batch")}
        results = {
            mode: CypherEngine(graph).run(query, mode=mode)
            for mode, graph in clones.items()
        }
        assert results["row"].executed_by == "planner", query
        assert results["batch"].executed_by == "planner", query
        reference = results["interpreter"].table
        reference_state = graph_state(clones["interpreter"])
        for mode in ("row", "batch"):
            assert reference.same_bag(results[mode].table), (query, mode)
            assert reference_state == graph_state(clones[mode]), (query, mode)
        # Incremental condensation maintenance must equal a rebuild,
        # byte-identically, and agree across executors.
        for graph in clones.values():
            assert_reachability_consistent(graph)
        for types in clones["interpreter"].reachability_indexes():
            reference_snapshot = clones[
                "interpreter"
            ].reachability_snapshot(types)
            for mode in ("row", "batch"):
                assert clones[mode].reachability_snapshot(types) == (
                    reference_snapshot
                ), (query, mode, types)


def _plan_kinds(graph, query):
    result = CypherEngine(graph).run(query)
    assert result.executed_by == "planner", (query, result.fallback_reason)
    return {type(op) for op in _plan_operators(result.plan)}, result


BOUND_PAIR = (
    "MATCH (a {name: 'node-0'}), (b {name: 'node-4'}) "
)


def test_harness_is_not_vacuous():
    """The obvious bound-pair traversal must actually take the probe."""
    graph = reachability_fixture_graph()
    kinds, result = _plan_kinds(
        graph, BOUND_PAIR + "MATCH (a)-[:R*]->(b) RETURN count(*) AS c"
    )
    assert lg.ReachabilityProbe in kinds, result.plan.describe()
    assert "ReachabilityProbe" in result.plan.describe()


def test_probe_applies_in_both_directions():
    graph = reachability_fixture_graph()
    for pattern in ["(a)-[:R*]->(b)", "(a)<-[:R*]-(b)"]:
        kinds, result = _plan_kinds(
            graph, BOUND_PAIR + "MATCH %s RETURN count(*) AS c" % pattern
        )
        assert lg.ReachabilityProbe in kinds, result.plan.describe()


def test_probe_prefers_exact_then_superset_index():
    graph = reachability_fixture_graph()
    description = _plan_kinds(
        graph, BOUND_PAIR + "MATCH (a)-[:R*]->(b) RETURN count(*) AS c"
    )[1].plan.describe()
    assert "reach(:R," in description, description
    description = _plan_kinds(
        graph, BOUND_PAIR + "MATCH (a)-[:S*]->(b) RETURN count(*) AS c"
    )[1].plan.describe()
    # No exact :S index is declared; the :R|S superset is the smallest
    # covering set, ahead of the all-types index.
    assert "reach(:R|S," in description, description


def test_planner_declines_without_a_covering_index():
    graph = fixture_graph_with_only_s_index()
    kinds, result = _plan_kinds(
        graph, BOUND_PAIR + "MATCH (a)-[:R*]->(b) RETURN count(*) AS c"
    )
    assert lg.ReachabilityProbe not in kinds, result.plan.describe()
    assert lg.VarLengthExpand in kinds


def fixture_graph_with_only_s_index():
    from fuzztools import fixture_graph

    graph = fixture_graph()
    graph.create_reachability_index(["S"])
    return graph


def test_planner_declines_undirected_tight_bound_and_unbound_endpoint():
    graph = reachability_fixture_graph()
    for query in [
        BOUND_PAIR + "MATCH (a)-[:R*]-(b) RETURN count(*) AS c",
        # The :R condensation diameter is 4; a bound at or below it
        # means the cap itself prunes, so the plain walk stays.
        BOUND_PAIR + "MATCH (a)-[:R*1..3]->(b) RETURN count(*) AS c",
        BOUND_PAIR + "MATCH (a)-[:R*1..4]->(b) RETURN count(*) AS c",
        "MATCH (a {name: 'node-0'}) "
        "MATCH (a)-[:R*]->(b) RETURN count(*) AS c",
    ]:
        kinds, result = _plan_kinds(graph, query)
        assert lg.ReachabilityProbe not in kinds, (
            query, result.plan.describe()
        )
        assert lg.VarLengthExpand in kinds, query


def test_probe_accepts_bounds_above_the_condensation_diameter():
    """*..N probes once N exceeds the covering index's diameter.

    The fixture's :R condensation diameter is 4 (asserted here so the
    boundary cases above and below stay meaningful if the fixture
    drifts); a bound of 5 clears it in either direction, and answers
    must match the index-less walk exactly.
    """
    graph = reachability_fixture_graph()
    facts = graph.reachability_statistics()[("R",)]
    assert facts["condensation_diameter"] == 4, facts
    for pattern in [
        "(a)-[:R*1..5]->(b)",
        "(a)<-[:R*1..5]-(b)",
        "(a)-[:R*..9]->(b)",
    ]:
        query = BOUND_PAIR + "MATCH %s RETURN count(*) AS c" % pattern
        kinds, result = _plan_kinds(graph, query)
        assert lg.ReachabilityProbe in kinds, (
            query, result.plan.describe()
        )
        plain = CypherEngine(fixture_graph_without_indexes())
        assert (
            CypherEngine(graph).run(query).values("c")
            == plain.run(query).values("c")
        ), query


def fixture_graph_without_indexes():
    from fuzztools import fixture_graph

    return fixture_graph()


def test_probe_accepts_lower_bounds_and_untyped_patterns():
    graph = reachability_fixture_graph()
    for query in [
        BOUND_PAIR + "MATCH (a)-[:R*2..]->(b) RETURN count(*) AS c",
        BOUND_PAIR + "MATCH (a)-[*]->(b) RETURN count(*) AS c",
    ]:
        kinds, result = _plan_kinds(graph, query)
        assert lg.ReachabilityProbe in kinds, (
            query, result.plan.describe()
        )


def test_probe_visible_in_profile_on_both_engines():
    graph = reachability_fixture_graph()
    engine = CypherEngine(graph)
    query = BOUND_PAIR + "MATCH (a)-[:R*]->(b) RETURN count(*) AS c"
    for mode in ("row", "batch"):
        result = engine.run(query, mode=mode, profile=True)
        entries = [
            record for record in result.access_paths
            if record["operator"] == "ReachabilityProbe"
        ]
        assert entries, (mode, result.access_paths)
        assert "reachability probe :R (forward)" in {
            record["entry"] for record in entries
        }, (mode, entries)


def test_pattern_comprehensions_agree_with_and_without_index():
    """The native comprehension enumerator prunes without changing lists."""
    for query in [
        BOUND_PAIR + "RETURN size([(a)-[:R*]->(b) | 1]) AS n",
        BOUND_PAIR + "RETURN [p = (a)-[:R*]->(b) | length(p)] AS lens",
        BOUND_PAIR + "RETURN [(a)<-[:R|S*]-(b) | 1] AS hits",
        "MATCH (a) RETURN a.name AS name, "
        "size([(a)-[:R*]->(c {name: 'node-4'}) | c]) AS n ORDER BY name",
    ]:
        plain = _assert_read_agreement(query, GRAPH)
        indexed = _assert_read_agreement(query, REACHABILITY_GRAPH)
        assert plain.table.same_bag(indexed.table), query


class TestShortestPathBoundPruning:
    """Bounded shortestPath gates its oracle on the condensation diameter.

    Same decline rule as the planner's var-length probes: a hop cap at
    or below the covering index's condensation diameter means the cap
    itself is the effective pruner, so ``_reachability_prune`` must
    decline (return None) and the capped BFS runs bare; above the
    diameter the oracle is consulted.  Either way the answers must be
    indistinguishable from an index-less search.
    """

    DIAMETER = 4  # the fixture's :R condensation diameter, asserted below

    @staticmethod
    def _named(graph):
        return {
            graph.node_property(node, "name"): node
            for node in graph.nodes()
        }

    def test_fixture_diameter_is_what_the_boundaries_assume(self):
        graph = reachability_fixture_graph()
        facts = graph.reachability_statistics()[("R",)]
        assert facts["condensation_diameter"] == self.DIAMETER, facts

    def test_prune_declines_at_or_below_diameter(self):
        from repro.algorithms.paths import _reachability_prune

        graph = reachability_fixture_graph()
        target = self._named(graph)["node-4"]
        for cap in (1, self.DIAMETER - 1, self.DIAMETER):
            assert _reachability_prune(
                graph, target, ["R"], True, max_length=cap
            ) is None, cap

    def test_prune_fires_above_diameter_and_when_uncapped(self):
        from repro.algorithms.paths import _reachability_prune

        graph = reachability_fixture_graph()
        ids = self._named(graph)
        for cap in (self.DIAMETER + 1, self.DIAMETER + 5, None):
            oracle = _reachability_prune(
                graph, ids["node-4"], ["R"], True, max_length=cap
            )
            assert oracle is not None, cap
            # The oracle it returns is the real one: node-0 reaches
            # node-4 through :R edges (0->1->2->4), node-3 does not
            # (its only outgoing edge is :S).
            assert oracle(ids["node-0"]) is True
            assert oracle(ids["node-3"]) is False

    def test_capped_search_agrees_with_and_without_index(self):
        from repro.algorithms.paths import shortest_path

        plain = fixture_graph_without_indexes()
        indexed = reachability_fixture_graph()
        nodes = sorted(plain.nodes())
        caps = (0, 1, self.DIAMETER, self.DIAMETER + 1, 9, None)
        for rel_types in (None, ["R"]):
            for cap in caps:
                for source in nodes:
                    for target in nodes:
                        without = shortest_path(
                            plain, source, target, rel_types,
                            max_length=cap,
                        )
                        with_index = shortest_path(
                            indexed, source, target, rel_types,
                            max_length=cap,
                        )
                        key = (source, target, rel_types, cap)
                        assert (without is None) == (
                            with_index is None
                        ), key
                        if without is not None:
                            assert len(without) == len(with_index), key
                            if cap is not None:
                                assert len(without) <= cap, key

    def test_cap_semantics_match_filtering_the_uncapped_answer(self):
        from repro.algorithms.paths import (
            shortest_path_length,
        )

        graph = fixture_graph_without_indexes()
        nodes = sorted(graph.nodes())
        for source in nodes:
            for target in nodes:
                uncapped = shortest_path_length(graph, source, target)
                for cap in range(0, 7):
                    capped = shortest_path_length(
                        graph, source, target, max_length=cap
                    )
                    expected = (
                        uncapped
                        if uncapped is not None and uncapped <= cap
                        else None
                    )
                    assert capped == expected, (source, target, cap)

    def test_cap_composes_with_undirected_and_negative_bounds(self):
        from repro.algorithms.paths import shortest_path

        graph = reachability_fixture_graph()
        ids = self._named(graph)
        # Undirected searches never consult the oracle; the cap still
        # applies.  node-4 -> node-0 needs undirected steps.
        path = shortest_path(
            graph, ids["node-4"], ids["node-0"], directed=False,
            max_length=2,
        )
        assert path is not None and len(path) <= 2
        assert shortest_path(
            graph, ids["node-4"], ids["node-0"], max_length=-1
        ) is None
        # A zero cap finds only the trivial self-path.
        assert len(shortest_path(
            graph, ids["node-2"], ids["node-2"], max_length=0
        )) == 0
        assert shortest_path(
            graph, ids["node-0"], ids["node-1"], max_length=0
        ) is None

    def test_cap_rejects_cost_weighted_search(self):
        import pytest

        from repro.algorithms.paths import shortest_path

        graph = reachability_fixture_graph()
        ids = self._named(graph)
        with pytest.raises(ValueError):
            shortest_path(
                graph, ids["node-0"], ids["node-4"],
                cost_property="w", max_length=3,
            )


def test_dropping_the_index_restores_the_plain_plan():
    graph = reachability_fixture_graph()
    query = BOUND_PAIR + "MATCH (a)-[:R*]->(b) RETURN count(*) AS c"
    engine = CypherEngine(graph)
    with_index = engine.run(query)
    assert lg.ReachabilityProbe in {
        type(op) for op in _plan_operators(with_index.plan)
    }
    for types in list(graph.reachability_indexes()):
        graph.drop_reachability_index(types)
    without = engine.run(query)
    kinds = {type(op) for op in _plan_operators(without.plan)}
    assert lg.ReachabilityProbe not in kinds, without.plan.describe()
    assert with_index.table.same_bag(without.table)
