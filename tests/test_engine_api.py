"""Integration: the public CypherEngine / QueryResult API."""

import pytest

from repro import CypherEngine, Table
from repro.exceptions import CypherRuntimeError, CypherSyntaxError
from repro.graph.builder import GraphBuilder
from repro.graph.store import MemoryGraph


@pytest.fixture
def engine():
    graph, _ = (
        GraphBuilder()
        .node("a", "Person", name="Ann", age=30)
        .node("b", "Person", name="Bob", age=40)
        .rel("a", "KNOWS", "b")
        .build()
    )
    return CypherEngine(graph)


class TestEngine:
    def test_default_graph_created(self):
        engine = CypherEngine()
        assert engine.graph.node_count() == 0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            CypherEngine(MemoryGraph(), mode="turbo")

    def test_syntax_errors_surface(self, engine):
        with pytest.raises(CypherSyntaxError):
            engine.run("MATCH MATCH")

    def test_explain_returns_plan_text(self, engine):
        text = engine.explain("MATCH (p:Person) RETURN p.name AS name")
        assert "NodeByLabelScan" in text
        assert "Init" in text

    def test_per_call_mode_override(self, engine):
        interpreted = engine.run("MATCH (p:Person) RETURN p.name AS n",
                                 mode="interpreter")
        planned = engine.run("MATCH (p:Person) RETURN p.name AS n",
                             mode="planner")
        assert interpreted.table.same_bag(planned.table)

    def test_parameters_flow_through(self, engine):
        result = engine.run(
            "MATCH (p:Person) WHERE p.age > $min RETURN p.name AS name",
            parameters={"min": 35},
        )
        assert result.values("name") == ["Bob"]


class TestQueryResult:
    def test_columns_in_projection_order(self, engine):
        result = engine.run("MATCH (p:Person) RETURN p.age AS age, p.name AS name")
        assert result.columns == ["age", "name"]

    def test_records_and_iteration(self, engine):
        result = engine.run("MATCH (p:Person) RETURN p.name AS name")
        assert sorted(r["name"] for r in result) == ["Ann", "Bob"]
        assert len(result) == 2

    def test_values_helpers(self, engine):
        result = engine.run(
            "MATCH (p:Person) RETURN p.name AS name ORDER BY name"
        )
        assert result.values() == ["Ann", "Bob"]
        assert result.values("name") == ["Ann", "Bob"]
        with pytest.raises(CypherRuntimeError):
            result.values("nope")

    def test_single_and_value(self, engine):
        result = engine.run("MATCH (p:Person {name: 'Ann'}) RETURN p.age AS age")
        assert result.single() == {"age": 30}
        assert result.value() == 30
        everyone = engine.run("MATCH (p:Person) RETURN p.age AS age")
        with pytest.raises(CypherRuntimeError):
            everyone.single()

    def test_value_needs_single_column(self, engine):
        result = engine.run(
            "MATCH (p:Person {name: 'Ann'}) RETURN p.age AS a, p.name AS n"
        )
        with pytest.raises(CypherRuntimeError):
            result.value()
        assert result.value("n") == "Ann"

    def test_graph_accessor_errors_when_empty(self, engine):
        result = engine.run("MATCH (p:Person) RETURN p")
        with pytest.raises(CypherRuntimeError):
            result.graph()

    def test_pretty_output(self, engine):
        result = engine.run(
            "MATCH (p:Person) RETURN p.name AS name ORDER BY name"
        )
        rendered = result.pretty()
        assert "name" in rendered and "Ann" in rendered

    def test_underlying_table_is_a_bag(self, engine):
        result = engine.run("MATCH (p:Person) RETURN 1 AS one")
        assert isinstance(result.table, Table)
        assert result.table.multiplicity({"one": 1}) == 2
