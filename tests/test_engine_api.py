"""Integration: the public CypherEngine / QueryResult API."""

import pytest

from repro import CypherEngine, Table
from repro.exceptions import CypherRuntimeError, CypherSyntaxError
from repro.graph.builder import GraphBuilder
from repro.graph.store import MemoryGraph


@pytest.fixture
def engine():
    graph, _ = (
        GraphBuilder()
        .node("a", "Person", name="Ann", age=30)
        .node("b", "Person", name="Bob", age=40)
        .rel("a", "KNOWS", "b")
        .build()
    )
    return CypherEngine(graph)


class TestEngine:
    def test_default_graph_created(self):
        engine = CypherEngine()
        assert engine.graph.node_count() == 0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            CypherEngine(MemoryGraph(), mode="turbo")

    def test_syntax_errors_surface(self, engine):
        with pytest.raises(CypherSyntaxError):
            engine.run("MATCH MATCH")

    def test_explain_returns_plan_text(self, engine):
        text = engine.explain("MATCH (p:Person) RETURN p.name AS name")
        assert "NodeByLabelScan" in text
        assert "Init" in text

    def test_per_call_mode_override(self, engine):
        interpreted = engine.run("MATCH (p:Person) RETURN p.name AS n",
                                 mode="interpreter")
        planned = engine.run("MATCH (p:Person) RETURN p.name AS n",
                             mode="planner")
        assert interpreted.table.same_bag(planned.table)

    def test_parameters_flow_through(self, engine):
        result = engine.run(
            "MATCH (p:Person) WHERE p.age > $min RETURN p.name AS name",
            parameters={"min": 35},
        )
        assert result.values("name") == ["Bob"]


class TestExecutionModeReporting:
    """executed_by / execution_mode across interpreter, row and batch."""

    def test_interpreter_mode_has_no_execution_mode(self, engine):
        result = engine.run(
            "MATCH (p:Person) RETURN p.name AS n", mode="interpreter"
        )
        assert result.executed_by == "interpreter"
        assert result.execution_mode is None

    def test_row_mode_pins_row_execution(self, engine):
        result = engine.run("MATCH (p:Person) RETURN p.name AS n", mode="row")
        assert result.executed_by == "planner"
        assert result.execution_mode == "row"

    def test_auto_mode_batches_claimed_read_plans(self, engine):
        for mode in ("auto", "planner", "batch"):
            result = engine.run(
                "MATCH (p:Person) RETURN p.name AS n", mode=mode
            )
            assert result.executed_by == "planner", mode
            assert result.execution_mode == "batch", mode

    def test_unclaimed_read_plans_report_row(self, engine):
        # OPTIONAL MATCH plans an OptionalApply, which stays row-wise
        # (var-length joined the batch claim with the frontier-BFS
        # implementation, so it no longer serves as the fallback case).
        result = engine.run(
            "MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b) "
            "RETURN a.name AS n, b.name AS m",
            mode="batch",
        )
        assert result.executed_by == "planner"
        assert result.execution_mode == "row"

    def test_updates_run_row_wise_in_every_planner_mode(self, engine):
        for mode in ("auto", "planner", "row", "batch"):
            result = engine.run(
                "MATCH (p:Person) SET p.seen = true", mode=mode
            )
            assert result.executed_by == "planner", mode
            assert result.execution_mode == "row", mode

    def test_three_modes_agree_on_results(self, engine):
        query = "MATCH (p:Person) RETURN p.name AS name ORDER BY name"
        tables = [
            engine.run(query, mode=mode).table
            for mode in ("interpreter", "row", "batch")
        ]
        assert tables[0].same_bag(tables[1])
        assert tables[0].same_bag(tables[2])

    def test_batch_results_identical_across_morsel_sizes(self):
        graph, _ = (
            GraphBuilder()
            .node("a", "Person", name="Ann", age=30)
            .node("b", "Person", name="Bob", age=40)
            .rel("a", "KNOWS", "b")
            .build()
        )
        query = "MATCH (p:Person) RETURN p.name AS name ORDER BY name"
        reference = CypherEngine(graph).run(query, mode="interpreter")
        for morsel_size in (1, 2, 3, 1024):
            tiny = CypherEngine(graph, morsel_size=morsel_size)
            result = tiny.run(query, mode="batch")
            assert result.execution_mode == "batch"
            assert result.records == reference.records, morsel_size


class TestExplainInfo:
    """The 5-tuple: path, reason, plan, cache counters, execution mode."""

    def test_batchable_read_reports_batch_mode(self, engine):
        executed_by, reason, plan_text, cache_info, mode = (
            engine.explain_info("MATCH (p:Person) RETURN p.age AS age")
        )
        assert executed_by == "planner"
        assert reason is None
        assert "NodeByLabelScan" in plan_text
        assert mode == "batch"

    def test_row_only_read_reports_row_mode(self, engine):
        *_rest, mode = engine.explain_info(
            "MATCH (a:Person) OPTIONAL MATCH (a)-[:KNOWS]->(b) "
            "RETURN a.name AS n, b.name AS m"
        )
        assert mode == "row"

    def test_update_reports_row_mode(self, engine):
        executed_by, _reason, plan_text, _cache, mode = engine.explain_info(
            "MATCH (p:Person) SET p.x = 1"
        )
        assert executed_by == "planner"
        assert "Eager" in plan_text
        assert mode == "row"

    def test_explain_info_respects_pinned_engine_mode(self, engine):
        """A :mode row session must see the strategy its runs will use."""
        query = "MATCH (p:Person) RETURN p.age AS age"
        engine.mode = "row"
        assert engine.explain_info(query)[4] == "row"
        assert engine.run(query).execution_mode == "row"
        engine.mode = "batch"
        assert engine.explain_info(query)[4] == "batch"
        assert engine.run(query).execution_mode == "batch"

    def test_cache_counters_accumulate_across_modes(self, engine):
        query = "MATCH (p:Person) RETURN p.name AS n"
        engine.run(query, mode="row")          # miss: first plan
        engine.run(query, mode="batch")        # hit: same plan, other mode
        engine.run(query, mode="interpreter")  # interpreter skips the cache
        cache_info = engine.explain_info(query)[3]
        assert cache_info["hits"] == 1
        assert cache_info["misses"] == 1
        assert cache_info["hit_rate"] == 0.5
        assert cache_info["entries"] == 1

    def test_restamp_after_update_in_batch_mode_session(self):
        """A batched session's update statement still re-stamps its plan.

        The update itself runs row-wise, but the engine session is in
        batch mode: the self-inflicted version bump must pardon the
        cached update plan exactly as in row mode, and the *read* plan
        cached before the update must survive if it is
        statistics-insensitive.
        """
        graph, _ = (
            GraphBuilder()
            .node("a", "Person", name="Ann", age=30)
            .build()
        )
        engine = CypherEngine(graph, mode="batch")
        update = "MATCH (p) SET p.seen = true"
        read = "MATCH (p) RETURN count(*) AS c"
        engine.run(read)    # miss; AllNodesScan: stats-insensitive
        engine.run(update)  # miss; bumps the version, then re-stamps
        hits_before = engine.plan_cache_hits
        second = engine.run(update)  # hit despite the self-bump
        assert engine.plan_cache_hits == hits_before + 1
        assert second.execution_mode == "row"
        third = engine.run(read)     # hit: survived the store mutation
        assert engine.plan_cache_hits == hits_before + 2
        assert third.execution_mode == "batch"


class TestQueryResult:
    def test_columns_in_projection_order(self, engine):
        result = engine.run("MATCH (p:Person) RETURN p.age AS age, p.name AS name")
        assert result.columns == ["age", "name"]

    def test_records_and_iteration(self, engine):
        result = engine.run("MATCH (p:Person) RETURN p.name AS name")
        assert sorted(r["name"] for r in result) == ["Ann", "Bob"]
        assert len(result) == 2

    def test_values_helpers(self, engine):
        result = engine.run(
            "MATCH (p:Person) RETURN p.name AS name ORDER BY name"
        )
        assert result.values() == ["Ann", "Bob"]
        assert result.values("name") == ["Ann", "Bob"]
        with pytest.raises(CypherRuntimeError):
            result.values("nope")

    def test_single_and_value(self, engine):
        result = engine.run("MATCH (p:Person {name: 'Ann'}) RETURN p.age AS age")
        assert result.single() == {"age": 30}
        assert result.value() == 30
        everyone = engine.run("MATCH (p:Person) RETURN p.age AS age")
        with pytest.raises(CypherRuntimeError):
            everyone.single()

    def test_value_needs_single_column(self, engine):
        result = engine.run(
            "MATCH (p:Person {name: 'Ann'}) RETURN p.age AS a, p.name AS n"
        )
        with pytest.raises(CypherRuntimeError):
            result.value()
        assert result.value("n") == "Ann"

    def test_graph_accessor_errors_when_empty(self, engine):
        result = engine.run("MATCH (p:Person) RETURN p")
        with pytest.raises(CypherRuntimeError):
            result.graph()

    def test_pretty_output(self, engine):
        result = engine.run(
            "MATCH (p:Person) RETURN p.name AS name ORDER BY name"
        )
        rendered = result.pretty()
        assert "name" in rendered and "Ann" in rendered

    def test_underlying_table_is_a_bag(self, engine):
        result = engine.run("MATCH (p:Person) RETURN 1 AS one")
        assert isinstance(result.table, Table)
        assert result.table.multiplicity({"one": 1}) == 2
