"""Transactional sessions: atomicity, rollback exactness, snapshots.

The session contract under test (PR 6):

* ``engine.session()`` groups statements into one store transaction —
  explicit ``begin()``/``commit()``/``rollback()``, auto-rollback when
  the ``with`` block exits exceptionally *or* without a commit;
* rollback restores the store **exactly** — contents, version (no
  bump), id counters, scan caches and every property index equal to a
  from-scratch rebuild;
* commit makes the whole transaction visible with a single version
  bump;
* ``session.snapshot()`` gives snapshot isolation: a reader pinned at
  ``begin()`` keeps seeing that version while others commit — on the
  row engine *and* the batch engine (the acceptance criterion);
* the admission gate bounds in-flight sessions and refuses with
  :class:`EngineOverloadedError` instead of queueing unboundedly.
"""

import pytest

from repro.exceptions import (
    CypherSyntaxError,
    EngineOverloadedError,
    TransactionError,
    UnsupportedFeature,
)
from repro.runtime.engine import CypherEngine

from fuzztools import fixture_graph, graph_state, assert_indexes_consistent


def indexed_engine():
    graph = fixture_graph()
    graph.create_index("A", "v")
    graph.create_index("B", "name")
    return CypherEngine(graph)


def count_nodes(runner, label=""):
    result = runner.run("MATCH (n%s) RETURN count(*) AS c" % label)
    return list(result.table)[0]["c"]


class TestCommit:
    def test_changes_invisible_before_commit_to_later_sessions(self):
        engine = CypherEngine(fixture_graph())
        with engine.session() as session:
            session.begin()
            session.run("CREATE (:Fresh {v: 1})")
            # the writer's own reads see the uncommitted write
            assert count_nodes(session, ":Fresh") == 1
            session.commit()
        assert count_nodes(engine, ":Fresh") == 1

    def test_single_version_bump_for_whole_transaction(self):
        engine = CypherEngine(fixture_graph())
        before = engine.graph.version
        with engine.session() as session:
            session.begin()
            session.run("CREATE (:X)")
            session.run("MATCH (x:X) SET x.v = 1")
            session.run("CREATE (:Y)")
            assert engine.graph.version == before
            session.commit()
        assert engine.graph.version == before + 1

    def test_statements_accumulate_across_commit(self):
        engine = indexed_engine()
        with engine.session() as session:
            session.begin()
            session.run("UNWIND range(10, 14) AS i CREATE (:A {v: i})")
            session.run("MATCH (a:A) WHERE a.v >= 10 SET a.touched = true")
            session.commit()
        probed = engine.run(
            "MATCH (a:A) WHERE a.v >= 10 RETURN count(*) AS c"
        )
        assert list(probed.table) == [{"c": 5}]
        assert_indexes_consistent(engine.graph)

    def test_commit_without_begin_raises(self):
        engine = CypherEngine(fixture_graph())
        with engine.session() as session:
            with pytest.raises(TransactionError):
                session.commit()

    def test_double_begin_raises(self):
        engine = CypherEngine(fixture_graph())
        with engine.session() as session:
            session.begin()
            with pytest.raises(TransactionError):
                session.begin()
            session.rollback()


class TestRollback:
    def test_rollback_restores_contents_exactly(self):
        engine = indexed_engine()
        pristine = graph_state(engine.graph)
        with engine.session() as session:
            session.begin()
            session.run("UNWIND range(20, 24) AS i CREATE (:A {v: i})")
            session.run("MATCH (a:B) SET a.v = 99, a:Extra")
            session.run("MATCH (a:C) DETACH DELETE a")
            session.rollback()
        assert graph_state(engine.graph) == pristine

    def test_rollback_keeps_version_and_statistics(self):
        engine = indexed_engine()
        before = engine.graph.version
        with engine.session() as session:
            session.begin()
            session.run("MATCH (a:A) SET a.v = a.v + 50")
            session.rollback()
        # the pre-transaction version still describes the restored
        # contents, so no bump — statistics snapshots stay correct
        assert engine.graph.version == before

    def test_rollback_restores_indexes_to_rebuild_identical(self):
        engine = indexed_engine()
        snapshots = {
            pair: engine.graph.index_snapshot(*pair)
            for pair in engine.graph.indexes()
        }
        with engine.session() as session:
            session.begin()
            session.run("UNWIND range(30, 34) AS i CREATE (:A {v: i})")
            session.run("MATCH (a:A) WHERE a.v = 1 SET a.v = 777")
            session.run("MATCH (a:B) REMOVE a.name")
            session.rollback()
        for pair, snapshot in snapshots.items():
            assert engine.graph.index_snapshot(*pair) == snapshot
        assert_indexes_consistent(engine.graph)

    def test_rollback_restores_id_counters(self):
        engine = CypherEngine(fixture_graph())
        with engine.session() as session:
            session.begin()
            session.run("CREATE (:X)")
            session.rollback()
        made = engine.run("CREATE (n:Y) RETURN n AS made")
        # the rolled-back node's id is reused, not burned
        clone = fixture_graph()
        expected = CypherEngine(clone).run("CREATE (n:Y) RETURN n AS made")
        assert list(made.table) == list(expected.table)

    def test_exception_inside_with_block_rolls_back(self):
        engine = CypherEngine(fixture_graph())
        pristine = graph_state(engine.graph)
        with pytest.raises(RuntimeError):
            with engine.session() as session:
                session.begin()
                session.run("CREATE (:Doomed)")
                raise RuntimeError("application error")
        assert graph_state(engine.graph) == pristine

    def test_exiting_without_commit_rolls_back(self):
        engine = CypherEngine(fixture_graph())
        pristine = graph_state(engine.graph)
        with engine.session() as session:
            session.begin()
            session.run("CREATE (:Forgotten)")
        assert graph_state(engine.graph) == pristine

    def test_statement_error_does_not_poison_the_transaction(self):
        engine = CypherEngine(fixture_graph())
        with engine.session() as session:
            session.begin()
            session.run("CREATE (:Kept {v: 1})")
            with pytest.raises(CypherSyntaxError):
                session.run("CREATE (")
            session.commit()
        assert count_nodes(engine, ":Kept") == 1


class TestSingleWriter:
    def test_outside_write_refused_while_transaction_open(self):
        engine = CypherEngine(fixture_graph())
        with engine.session() as session:
            session.begin()
            session.run("CREATE (:Mine)")
            with pytest.raises(TransactionError):
                engine.run("CREATE (:Interloper)")
            session.rollback()
        # released on rollback: plain writes work again
        engine.run("CREATE (:Interloper)")
        assert count_nodes(engine, ":Interloper") == 1

    def test_second_session_cannot_write_concurrently(self):
        engine = CypherEngine(fixture_graph())
        with engine.session() as first, engine.session() as second:
            first.begin()
            second.begin()
            first.run("CREATE (:First)")
            with pytest.raises(TransactionError):
                second.run("CREATE (:Second)")
            first.commit()
            second.rollback()

    def test_snapshot_refused_while_uncommitted_changes_exist(self):
        # a pin taken now would capture another session's dirty state;
        # snapshots must be taken before a transaction's first write
        engine = CypherEngine(fixture_graph())
        with engine.session() as first, engine.session() as second:
            first.begin()
            first.run("CREATE (:Dirty)")
            with pytest.raises(TransactionError):
                second.snapshot()
            first.rollback()

    def test_restore_from_refused_during_transaction(self):
        engine = CypherEngine(fixture_graph())
        donor = fixture_graph()
        with engine.session() as session:
            session.begin()
            session.run("CREATE (:X)")
            with pytest.raises(TransactionError):
                engine.graph.restore_from(donor)
            session.rollback()

    def test_schema_engines_refuse_explicit_transactions(self):
        from repro.schema import Schema

        engine = CypherEngine(fixture_graph(), schema=Schema())
        with engine.session() as session:
            with pytest.raises(UnsupportedFeature):
                session.begin()


class TestSnapshotIsolation:
    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_reader_pinned_before_commit_sees_old_version(self, mode):
        engine = CypherEngine(fixture_graph())
        with engine.session() as reader:
            snapshot = reader.snapshot()
            with engine.session() as writer:
                writer.begin()
                writer.run("UNWIND range(50, 59) AS i CREATE (:A {v: i})")
                writer.commit()
            live = engine.run(
                "MATCH (a:A) RETURN count(*) AS c", mode=mode
            )
            pinned = snapshot.run(
                "MATCH (a:A) RETURN count(*) AS c", mode=mode
            )
            assert list(live.table) == [{"c": 13}]
            assert list(pinned.table) == [{"c": 3}]

    @pytest.mark.parametrize("mode", ["row", "batch"])
    def test_snapshot_never_sees_own_uncommitted_writes(self, mode):
        engine = CypherEngine(fixture_graph())
        with engine.session() as session:
            session.begin()
            snapshot = session.snapshot()
            session.run("CREATE (:A {v: 100})")
            pinned = snapshot.run(
                "MATCH (a:A) RETURN count(*) AS c", mode=mode
            )
            assert list(pinned.table) == [{"c": 3}]
            session.rollback()

    def test_snapshot_survives_deletes_and_property_changes(self):
        engine = CypherEngine(fixture_graph())
        with engine.session() as reader:
            snapshot = reader.snapshot()
            with engine.session() as writer:
                writer.begin()
                writer.run("MATCH (a:C) DETACH DELETE a")
                writer.run("MATCH (a:A) SET a.v = a.v + 1000")
                writer.commit()
            pinned = snapshot.run(
                "MATCH (a:A)-->(b) RETURN a.v AS av, b.v AS bv "
                "ORDER BY av, bv"
            )
            reference = CypherEngine(fixture_graph()).run(
                "MATCH (a:A)-->(b) RETURN a.v AS av, b.v AS bv "
                "ORDER BY av, bv"
            )
            assert list(pinned.table) == list(reference.table)

    def test_snapshot_agrees_with_frozen_clone_across_corpus(self):
        from repro.selftest import READ_CORPUS

        engine = CypherEngine(fixture_graph())
        frozen = CypherEngine(fixture_graph())
        with engine.session() as reader:
            snapshot = reader.snapshot()
            with engine.session() as writer:
                writer.begin()
                writer.run("MATCH (a:B) DETACH DELETE a")
                writer.run("UNWIND range(60, 64) AS i "
                           "CREATE (:B {v: i, name: 'post-' + toString(i)})")
                writer.commit()
            for query in READ_CORPUS:
                pinned = snapshot.run(query)
                reference = frozen.run(query)
                assert reference.table.same_bag(pinned.table), query

    def test_snapshot_is_read_only(self):
        engine = CypherEngine(fixture_graph())
        with engine.session() as session:
            snapshot = session.snapshot()
            with pytest.raises(TransactionError):
                snapshot.run("CREATE (:Nope)")

    def test_clean_snapshot_runs_on_live_graph(self):
        engine = CypherEngine(fixture_graph())
        with engine.session() as session:
            snapshot = session.snapshot()
            # nothing has mutated: no overlay, no copies
            assert snapshot.graph is engine.graph

    def test_snapshot_released_with_session(self):
        engine = CypherEngine(fixture_graph())
        with engine.session() as session:
            session.snapshot()
            assert engine.graph._pins
        assert not engine.graph._pins


class TestAdmission:
    def test_overload_refused_with_dedicated_error(self):
        engine = CypherEngine(fixture_graph(), max_sessions=2)
        with engine.session() as _one, engine.session() as _two:
            with pytest.raises(EngineOverloadedError):
                with engine.session() as third:
                    third.run("RETURN 1 AS x")

    def test_slot_released_on_close(self):
        engine = CypherEngine(fixture_graph(), max_sessions=1)
        with engine.session() as session:
            session.run("RETURN 1 AS x")
        with engine.session() as session:
            assert list(session.run("RETURN 2 AS x").table) == [{"x": 2}]

    def test_closed_session_refuses_statements(self):
        engine = CypherEngine(fixture_graph())
        with engine.session() as session:
            pass
        with pytest.raises(TransactionError):
            session.run("RETURN 1 AS x")


class TestSessionWithoutTransaction:
    def test_statements_autocommit(self):
        engine = CypherEngine(fixture_graph())
        before = engine.graph.version
        with engine.session() as session:
            session.run("CREATE (:Solo)")
        assert count_nodes(engine, ":Solo") == 1
        assert engine.graph.version == before + 1
