"""Integration: reference interpreter ≡ planner on a wide query corpus.

The paper argues a formal semantics "paves a way to a reference
implementation against which others will be compared" — this module is
that comparison, run over every read-query construct both paths support,
on the paper's graphs and on seeded random graphs.
"""

import random

import pytest

from repro.datasets.citations import citation_network
from repro.datasets.paper import figure1_graph, figure4_graph
from repro.datasets.social import social_graph
from repro.graph.store import MemoryGraph
from tests.conftest import run_both

QUERY_CORPUS = [
    "MATCH (n) RETURN n",
    "MATCH (n:Researcher) RETURN n.name",
    "MATCH (a)-[r]->(b) RETURN a, r, b",
    "MATCH (a)-[:AUTHORS]->(p) RETURN a.name, p.acmid",
    "MATCH (a)<-[:CITES]-(b) RETURN a, b",
    "MATCH (a)-[:CITES]-(b) RETURN a, b",
    "MATCH (a)-[:CITES*]->(b) RETURN a, b",
    "MATCH (a)-[:CITES*1..2]->(b) RETURN a, b",
    "MATCH (a)-[rs:CITES*0..2]->(b) RETURN a, size(rs) AS hops, b",
    "MATCH (a)-[:AUTHORS]->(p)<-[:CITES]-(q) RETURN a, p, q",
    "MATCH (a:Researcher), (s:Student) RETURN a.name, s.name",
    "MATCH (a)-[:SUPERVISES]->(s) WHERE s.name CONTAINS 'n' RETURN s.name",
    "MATCH (n) WHERE n:Researcher OR n:Student RETURN n.name",
    "MATCH (n) WHERE exists((n)-[:AUTHORS]->()) RETURN n.name",
    "MATCH (n) WHERE (n)-[:SUPERVISES]->(:Student) RETURN n.name",
    "MATCH (r:Researcher) OPTIONAL MATCH (r)-[:SUPERVISES]->(s) RETURN r, s",
    "MATCH (r:Researcher) OPTIONAL MATCH (r)-[:AUTHORS]->(p) "
    "WHERE p.acmid > 230 RETURN r.name, p.acmid",
    "MATCH (n) RETURN labels(n) AS l, count(*) AS c",
    "MATCH (n:Publication) RETURN count(n.acmid) AS c, sum(n.acmid) AS s, "
    "min(n.acmid) AS lo, max(n.acmid) AS hi, avg(n.acmid) AS mean",
    "MATCH (r:Researcher)-[:AUTHORS]->(p) "
    "RETURN r.name, collect(p.acmid) AS ids",
    "MATCH (r:Researcher) OPTIONAL MATCH (r)-[:SUPERVISES]->(s) "
    "WITH r, count(s) AS c WHERE c > 0 RETURN r.name, c",
    "MATCH (n) RETURN DISTINCT labels(n) AS l",
    "MATCH (n:Publication) RETURN n.acmid AS id ORDER BY id DESC LIMIT 3",
    "MATCH (n:Publication) RETURN n.acmid AS id ORDER BY id SKIP 2",
    "MATCH (n) WITH n.acmid AS id WHERE id IS NOT NULL "
    "RETURN id ORDER BY id",
    "UNWIND [3, 1, 2] AS x RETURN x ORDER BY x",
    "UNWIND [1, 2] AS x UNWIND [10, 20] AS y RETURN x + y AS s",
    "MATCH (n:Researcher) RETURN n.name AS name UNION "
    "MATCH (s:Student) RETURN s.name AS name",
    "MATCH (n:Researcher) RETURN 1 AS one UNION ALL "
    "MATCH (s:Student) RETURN 1 AS one",
    "MATCH (a)-[:SUPERVISES|AUTHORS]->(x) RETURN a, x",
    "MATCH (p:Publication) RETURN CASE WHEN p.acmid > 230 THEN 'new' "
    "ELSE 'old' END AS era, count(*) AS c",
    "MATCH (r:Researcher) RETURN [x IN [1, 2, 3] WHERE x > 1 | x * 2] AS listed",
    "MATCH (a)-->(b)-->(c) RETURN count(*) AS chains",
    "MATCH (a)-->(b), (b)-->(c) RETURN count(*) AS chains",
    "MATCH (x)-[*2]-(y) RETURN count(*) AS n",
    "RETURN 1 + 1 AS two",
]


@pytest.mark.parametrize("query", QUERY_CORPUS)
def test_corpus_on_figure1(figure1, query):
    graph, _ = figure1
    run_both(graph, query)


@pytest.mark.parametrize("query", QUERY_CORPUS)
def test_corpus_on_figure4(query):
    graph, _ = figure4_graph()
    run_both(graph, query)


def random_graph(seed, nodes=12, edges=20):
    rng = random.Random(seed)
    graph = MemoryGraph()
    labels = ("Researcher", "Student", "Publication")
    ids = [
        graph.create_node(
            (rng.choice(labels),),
            {"name": "n%d" % index, "acmid": rng.randint(100, 300)},
        )
        for index in range(nodes)
    ]
    types = ("AUTHORS", "CITES", "SUPERVISES")
    for _ in range(edges):
        graph.create_relationship(
            rng.choice(ids), rng.choice(ids), rng.choice(types)
        )
    return graph


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize(
    "query",
    [
        "MATCH (a)-[r]->(b) RETURN a, r, b",
        "MATCH (a)-[:CITES*1..2]->(b) RETURN a, b",
        "MATCH (a)-[rs:CITES*0..2]-(b) RETURN a, size(rs) AS n, b",
        "MATCH (a:Researcher) OPTIONAL MATCH (a)-[:AUTHORS]->(p) RETURN a, p",
        "MATCH (n) RETURN labels(n) AS l, count(*) AS c",
        "MATCH (a)-->(b)-->(c) RETURN count(*) AS n",
        "MATCH (a)-->(a) RETURN count(*) AS loops",
    ],
)
def test_corpus_on_random_graphs(seed, query):
    run_both(random_graph(seed), query)


def test_corpus_on_generators():
    graph, _ = citation_network(publications=15, researchers=4, students=5, seed=2)
    run_both(graph, "MATCH (p:Publication)<-[:CITES*]-(q) RETURN p, count(DISTINCT q) AS c")
    social, _ = social_graph(people=12, avg_friends=3, seed=2)
    run_both(
        social,
        "MATCH (a)-[f1:FRIEND]-()-[f2:FRIEND]-(b) "
        "WHERE f1.since < f2.since RETURN count(*) AS n",
    )
