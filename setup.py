"""Legacy setup shim: the environment has no `wheel`, so editable installs
go through `pip install -e . --no-use-pep517`, which needs setup.py."""

from setuptools import setup

setup()
